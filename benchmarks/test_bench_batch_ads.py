"""Serial fusion speedup: the batched ADS pipeline vs the scalar oracle.

PR 9 vectorized the *physics* of a batch (RK4, collision sweep, safety
envelope) but still ran each lane's ADS pipeline as scalar pure Python,
so serial ``batch_sim`` fusion bought only ~1.4x.  This PR batches the
pipeline itself (:class:`repro.ads.batch.BatchADSState`): sensing
geometry, the localizer EKF, the IDM planner, and the PID/slew
controller advance every fused lane per numpy kernel call, with per-lane
work reduced to packed RNG draws, camera/radar fusion, and the ragged
tracker.

This bench isolates that single-core win: serial ``batch_sim=16``
against the serial scalar oracle on the same checkpoint-forked job
population — no process pool, so the ratio is pure fusion, comparable
across hosts.  Record agreement is asserted unconditionally; the
speedup gate (≥1.8x, locally ~2.1x) holds on 1-core CI because neither
path pools.
"""

import time
from dataclasses import replace

import pytest

from repro.analysis import ascii_table
from repro.core import Campaign, CampaignConfig
from repro.core.fault_models import minmax_fault_grid
from repro.core.parallel import run_experiments

from conftest import bench_scenarios

BATCH = 16


@pytest.fixture(scope="module")
def ads_campaign():
    """Golden-warmed campaign over the dense-traffic scenario subset.

    Multi-NPC scenes (adjacent_traffic .. occluded_pedestrian) are where
    fused sensing/tracking/planning amortizes best; sparse one-lead
    scenes leave the per-lane residue (ragged tracker, RNG packing)
    dominant and fuse closer to ~1.7x, which sits too near the gate.
    """
    campaign = Campaign(bench_scenarios()[6:10], CampaignConfig())
    campaign.golden_runs()   # warm golden traces + checkpoint ladders
    return campaign


def validation_jobs(campaign):
    """A strided brake/throttle grid: long same-scenario runs, so the
    driver cuts them into full ``batch_sim`` chunks plus remainders."""
    jobs = []
    for scenario in campaign.scenarios:
        ticks = campaign.injection_ticks(scenario)
        grid = minmax_fault_grid(
            ticks[::len(ticks) // 8 or 1], ["brake", "throttle"],
            duration_ticks=campaign.config.fault_duration_ticks)
        jobs.extend((scenario.name, fault) for fault in grid)
    return jobs


def test_bench_batch_ads(benchmark, ads_campaign):
    campaign = ads_campaign
    jobs = validation_jobs(campaign)
    assert len(jobs) >= 40
    scalar_config = campaign.config
    batched_config = replace(scalar_config, batch_sim=BATCH)

    def validate_scalar():
        return run_experiments(campaign.scenarios, scalar_config, jobs,
                               checkpoints=campaign.checkpoints)

    def validate_batched():
        return run_experiments(campaign.scenarios, batched_config, jobs,
                               checkpoints=campaign.checkpoints)

    # Warm process-wide caches both paths share (RK4 stop kernels, numpy
    # dispatch, golden traces), then time manually — best-of-two per
    # path keeps the gate robust against scheduler noise, and the
    # manual numbers also work under --benchmark-disable smoke runs.
    validate_batched()

    batched_records = benchmark(validate_batched)

    def best_of_two(run):
        result, seconds = None, float("inf")
        for _ in range(2):
            start = time.perf_counter()
            result = run()
            seconds = min(seconds, time.perf_counter() - start)
        return result, seconds

    scalar_records, scalar_seconds = best_of_two(validate_scalar)
    _, batched_seconds = best_of_two(validate_batched)

    speedup = scalar_seconds / batched_seconds

    print("\nSerial fusion: batched ADS pipeline vs scalar oracle")
    print(ascii_table(
        ["metric", "scalar serial", f"batched serial (x{BATCH})"], [
            ["experiments", len(scalar_records), len(batched_records)],
            ["wall seconds", f"{scalar_seconds:.3f}",
             f"{batched_seconds:.3f}"],
            ["experiments / s", f"{len(jobs) / scalar_seconds:,.1f}",
             f"{len(jobs) / batched_seconds:,.1f}"],
            ["speedup", "1x", f"{speedup:,.2f}x"],
        ]))
    benchmark.extra_info["scalar_serial_seconds"] = scalar_seconds
    benchmark.extra_info["batched_serial_seconds"] = batched_seconds
    benchmark.extra_info["serial_fusion_speedup"] = speedup
    benchmark.extra_info["experiments"] = len(jobs)
    benchmark.extra_info["batch_sim"] = BATCH

    # The batched path must agree with the scalar oracle record for
    # record (wall clock aside) — asserted unconditionally...
    def strip(records):
        return [(r.scenario, r.injection_tick, r.variable, r.value,
                 r.duration_ticks, r.seed, r.hazard, r.landed,
                 r.pre_delta_long, r.pre_delta_lat, r.min_delta_long,
                 r.min_delta_lat, r.sim_seconds) for r in records]

    assert strip(batched_records) == strip(scalar_records)
    # ...and serial fusion must pay for itself on any host: both paths
    # are single-process, so the gate needs no spare cores.
    if benchmark.disabled:
        return
    assert speedup >= 1.8, (
        f"batched ADS pipeline only {speedup:.2f}x faster than the "
        f"serial scalar oracle with batch_sim={BATCH}")
