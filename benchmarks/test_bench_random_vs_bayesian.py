"""E6 — random output-corruption baseline vs Bayesian selection.

Paper: weeks of random experiments found no hazards; Bayesian FI's mined
faults manifested as hazards at an 82% rate.  Shape targets: the random
campaign's hazard rate is near zero and far below the Bayesian
precision on the same scene population and fault model.
"""

from repro.analysis import ascii_table

N_RANDOM = 200


def test_bench_random_vs_bayesian(benchmark, campaign, bayesian_result):
    def random_slice():
        return campaign.random_campaign(10, seed=123)

    benchmark(random_slice)

    random_summary = campaign.random_campaign(N_RANDOM, seed=7)

    print("\nE6: random vs Bayesian fault selection")
    print(ascii_table(
        ["campaign", "experiments", "hazards", "hazard rate", "paper"],
        [["random (uniform value/variable/time)", random_summary.total,
          random_summary.hazards, f"{random_summary.hazard_rate:.1%}",
          "0 in 5000"],
         ["Bayesian (mined F_crit)", bayesian_result.summary.total,
          bayesian_result.summary.hazards,
          f"{bayesian_result.precision:.1%}", "460/561 = 82%"]]))

    benchmark.extra_info["random_rate"] = random_summary.hazard_rate
    benchmark.extra_info["bayesian_rate"] = bayesian_result.precision

    assert bayesian_result.summary.hazards > 0
    assert random_summary.hazard_rate < 0.10
    # The enrichment factor is the point of the paper.
    assert bayesian_result.precision > 4 * max(random_summary.hazard_rate,
                                               1.0 / N_RANDOM)
