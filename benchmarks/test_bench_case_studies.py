"""E5 — the two case studies of paper Fig. 4.

Example 1: a cut-in collapses the safety potential; a max-throttle fault
at that instant tips it negative.  Example 2 (Tesla crash shape): a
world-model fault during the post-reveal braking turns a clean stop into
a hazard.  Shape targets: both golden runs are safe, both faulted runs
are hazardous, and the faulted delta series dips below zero.
"""

import numpy as np

from repro.analysis import ascii_table
from repro.core import FaultSpec, Hazard, run_scenario
from repro.sim import lead_vehicle_cutin, two_lead_reveal

CUTIN_FAULT = FaultSpec("throttle", 1.0, start_tick=104, duration_ticks=4)
REVEAL_FAULT = FaultSpec("tracked_gap", 250.0, start_tick=120,
                         duration_ticks=14)


def test_bench_case_studies(benchmark):
    scenario = lead_vehicle_cutin()
    benchmark(lambda: run_scenario(scenario, seed=0, duration=8.0,
                                   record_trace=False))

    cutin_golden = run_scenario(lead_vehicle_cutin(), seed=0, duration=14.0)
    cutin_faulted = run_scenario(lead_vehicle_cutin(), seed=0,
                                 faults=[CUTIN_FAULT],
                                 horizon_after_fault=8.0)
    reveal_golden = run_scenario(two_lead_reveal(), seed=0)
    reveal_faulted = run_scenario(two_lead_reveal(), seed=0,
                                  faults=[REVEAL_FAULT],
                                  horizon_after_fault=12.0)

    print("\nE5: case studies (paper Fig. 4)")
    print(ascii_table(
        ["case", "run", "outcome", "min delta_long (m)"],
        [["Example 1 (cut-in)", "golden", cutin_golden.hazard.value,
          cutin_golden.min_delta_long],
         ["Example 1 (cut-in)", "max throttle at cut-in",
          cutin_faulted.hazard.value, cutin_faulted.min_delta_long],
         ["Example 2 (reveal)", "golden", reveal_golden.hazard.value,
          reveal_golden.min_delta_long],
         ["Example 2 (reveal)", "gap fault mid-braking",
          reveal_faulted.hazard.value, reveal_faulted.min_delta_long]]))

    faulted_series = cutin_faulted.trace.as_arrays()["delta_long"]
    print("Example 1 delta_long series (faulted):",
          np.array2string(faulted_series[-12:], precision=1))

    benchmark.extra_info["cutin_min_delta"] = cutin_faulted.min_delta_long
    benchmark.extra_info["reveal_min_delta"] = reveal_faulted.min_delta_long

    assert cutin_golden.hazard is Hazard.NONE
    assert reveal_golden.hazard is Hazard.NONE
    assert cutin_faulted.hazard is not Hazard.NONE
    assert reveal_faulted.hazard is not Hazard.NONE
    assert cutin_faulted.min_delta_long <= 0.0
    assert reveal_faulted.min_delta_long <= 0.0
