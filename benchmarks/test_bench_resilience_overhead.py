"""Supervision overhead: supervised pool vs a bare process pool.

The resilience layer (PR 6) runs every pooled experiment under
:class:`repro.core.resilience.SupervisedExecutor` — per-job wall-clock
timeouts, crash respawn, bounded retries — instead of a bare
``ProcessPoolExecutor``.  Supervision must be effectively free on the
fault-free path: the whole point is to leave it on by default, so a
healthy campaign may not pay for the insurance.  This bench runs the
same job set through both engines with ``workers=4`` and pins
record-for-record agreement plus the overhead bound (supervised within
5% of unsupervised wall-clock).

The overhead gate needs real cores (with oversubscribed CPUs the noise
floor swamps a 5% bound), so it only applies when the runner exposes at
least ``WORKERS`` usable CPUs — equivalence is asserted unconditionally.
"""

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import replace

from repro.analysis import ascii_table
from repro.core import Campaign, CampaignConfig, FaultSpec
from repro.core.parallel import (_grouped_order, _init_worker,
                                 _pool_context, _run_job, run_experiments)
from repro.sim import (braking_lead, highway_cruise, lead_vehicle_cutin,
                       queued_traffic, stalled_vehicle, two_lead_reveal)

WORKERS = 4


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:   # platforms without affinity
        return os.cpu_count() or 1


def bench_population():
    return [replace(lead_vehicle_cutin(), duration=14.0),
            replace(two_lead_reveal(), duration=14.0),
            replace(stalled_vehicle(), duration=16.0),
            replace(queued_traffic(), duration=16.0),
            replace(braking_lead(), duration=18.0),
            replace(highway_cruise(), duration=18.0)]


def bench_jobs(scenarios):
    """A deterministic mixed grid: every scenario, three ticks, three
    variables — enough work that per-job supervision cost would show."""
    jobs = []
    for scenario in scenarios:
        for tick in (20, 60, 100):
            for variable, value in (("brake", 0.0), ("throttle", 1.0),
                                    ("steering", 0.35)):
                jobs.append((scenario.name,
                             FaultSpec(variable, value, tick, 4)))
    return jobs


def run_unsupervised(scenarios, config, jobs):
    """The pre-resilience engine: a bare pool, no timeouts, no retries,
    no crash recovery — the overhead baseline supervision is held to."""
    order = _grouped_order(jobs)
    records = [None] * len(jobs)
    with ProcessPoolExecutor(max_workers=WORKERS,
                             mp_context=_pool_context(None),
                             initializer=_init_worker,
                             initargs=(scenarios, config, None)) as pool:
        futures = {pool.submit(_run_job, jobs[slot]): slot
                   for slot in order}
        for future in as_completed(futures):
            records[futures[future]] = future.result()
    return records


def test_bench_resilience_overhead(benchmark):
    scenarios = bench_population()
    config = CampaignConfig()
    jobs = bench_jobs(scenarios)

    # Warm the process-wide caches both engines share so timing order
    # doesn't favour the second run.
    warm = Campaign(scenarios[:2], CampaignConfig())
    warm.exhaustive_campaign(tick_stride=64, variable_names=["brake"],
                             workers=WORKERS)

    base_start = time.perf_counter()
    baseline = run_unsupervised(scenarios, config, jobs)
    baseline_seconds = time.perf_counter() - base_start

    def timed_supervised():
        start = time.perf_counter()
        records = run_experiments(scenarios, config, jobs,
                                  workers=WORKERS)
        return records, time.perf_counter() - start

    supervised, supervised_seconds = benchmark.pedantic(
        timed_supervised, rounds=1, iterations=1)

    overhead = supervised_seconds / baseline_seconds

    print("\nSupervised pool vs bare ProcessPoolExecutor (no faults)")
    print(ascii_table(["metric", "bare pool", "supervised"], [
        ["experiments", len(baseline), len(supervised)],
        ["wall seconds", f"{baseline_seconds:.2f}",
         f"{supervised_seconds:.2f}"],
        ["overhead", "1x", f"{overhead:,.3f}x"],
    ]))
    benchmark.extra_info["baseline_seconds"] = baseline_seconds
    benchmark.extra_info["supervised_seconds"] = supervised_seconds
    benchmark.extra_info["overhead"] = overhead
    benchmark.extra_info["experiments"] = len(jobs)
    benchmark.extra_info["workers"] = WORKERS
    benchmark.extra_info["usable_cpus"] = usable_cpus()

    # Supervision must not change one record on the healthy path...
    def strip(records):
        return [(r.scenario, r.injection_tick, r.variable, r.value,
                 r.duration_ticks, r.seed, r.hazard, r.landed,
                 r.pre_delta_long, r.pre_delta_lat, r.min_delta_long,
                 r.min_delta_lat, r.sim_seconds) for r in records]

    assert strip(supervised) == strip(baseline)
    assert all(r.error is None for r in supervised)
    # ...and must cost at most 5% wall-clock when there are real cores
    # to time it on.  --benchmark-disable smoke lanes only check
    # equivalence.
    if benchmark.disabled:
        return
    if usable_cpus() < WORKERS:
        print(f"only {usable_cpus()} usable CPU(s) for {WORKERS} "
              f"workers: overhead gate skipped")
        return
    assert overhead <= 1.05, (
        f"supervised execution cost {overhead:.3f}x the bare pool on a "
        f"fault-free run (budget: 1.05x)")
