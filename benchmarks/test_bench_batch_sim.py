"""Validation throughput: fused batched lanes vs the scalar oracle.

PR 2 made validation fork from golden-prefix checkpoints; what still
cost one Python interpreter pass per experiment was the simulation
itself — every world stepped its own RK4, collision sweep, and safety
envelope through scalar numpy calls.  The batch engine
(:mod:`repro.sim.batch`) steps up to ``batch_sim`` same-scenario
experiments per fused kernel call, and the campaign drivers chunk jobs
into those batches transparently.

This bench times the *shipped* batched configuration — fused lanes on
a process pool (``batch_sim=16, workers=4``) — against the serial
scalar oracle on the same checkpoint-forked job population, and pins
exact record agreement between the two.  Since the ADS pipeline itself
batches too (:mod:`repro.ads.batch`, PR 10), serial fusion alone is
~2x (the ``serial_batched_speedup`` extra_info;
``test_bench_batch_ads`` gates it), and the ≥3x gate applies to the
batched+pooled path, which needs real cores; with fewer usable CPUs
than workers the gate is skipped and only equivalence is asserted.
"""

import os
import time
from dataclasses import replace

import pytest

from repro.analysis import ascii_table
from repro.core import Campaign, CampaignConfig
from repro.core.fault_models import minmax_fault_grid
from repro.core.parallel import run_experiments

from conftest import bench_scenarios

WORKERS = 4
BATCH = 16


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:   # platforms without affinity
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def batch_campaign():
    """Golden-warmed campaign over a mixed-traffic scenario subset."""
    campaign = Campaign(bench_scenarios()[1:5], CampaignConfig())
    campaign.golden_runs()   # warm golden traces + checkpoint ladders
    return campaign


def validation_jobs(campaign):
    """A strided brake/throttle grid: long same-scenario runs, so the
    drivers cut them into full ``batch_sim`` chunks plus remainders."""
    jobs = []
    for scenario in campaign.scenarios:
        ticks = campaign.injection_ticks(scenario)
        grid = minmax_fault_grid(
            ticks[::len(ticks) // 8 or 1], ["brake", "throttle"],
            duration_ticks=campaign.config.fault_duration_ticks)
        jobs.extend((scenario.name, fault) for fault in grid)
    return jobs


def test_bench_batch_sim(benchmark, batch_campaign):
    campaign = batch_campaign
    jobs = validation_jobs(campaign)
    assert len(jobs) >= 40
    scalar_config = campaign.config
    batched_config = replace(scalar_config, batch_sim=BATCH)

    def validate_scalar_serial():
        return run_experiments(campaign.scenarios, scalar_config, jobs,
                               checkpoints=campaign.checkpoints)

    def validate_batched_serial():
        return run_experiments(campaign.scenarios, batched_config, jobs,
                               checkpoints=campaign.checkpoints)

    def validate_batched_pooled():
        return run_experiments(campaign.scenarios, batched_config, jobs,
                               workers=WORKERS,
                               checkpoints=campaign.checkpoints)

    # Warm process-wide caches all paths share (RK4 stop kernels, numpy
    # dispatch, golden traces) so timing order doesn't bias the
    # comparison, then time manually — best-of-two per path keeps the
    # gate robust against scheduler noise, and the manual numbers also
    # work under --benchmark-disable smoke runs.
    validate_batched_serial()

    pooled_records = benchmark(validate_batched_pooled)

    def best_of_two(run):
        result, seconds = None, float("inf")
        for _ in range(2):
            start = time.perf_counter()
            result = run()
            seconds = min(seconds, time.perf_counter() - start)
        return result, seconds

    scalar_records, scalar_seconds = best_of_two(validate_scalar_serial)
    serial_batch_records, serial_batch_seconds = \
        best_of_two(validate_batched_serial)
    _, pooled_seconds = best_of_two(validate_batched_pooled)

    speedup = scalar_seconds / pooled_seconds
    serial_speedup = scalar_seconds / serial_batch_seconds

    print("\nValidation throughput: fused batched lanes vs scalar oracle")
    print(ascii_table(
        ["metric", "scalar serial", f"batched serial",
         f"batched x{WORKERS} workers"], [
            ["experiments", len(scalar_records),
             len(serial_batch_records), len(pooled_records)],
            ["wall seconds", f"{scalar_seconds:.3f}",
             f"{serial_batch_seconds:.3f}", f"{pooled_seconds:.3f}"],
            ["experiments / s", f"{len(jobs) / scalar_seconds:,.1f}",
             f"{len(jobs) / serial_batch_seconds:,.1f}",
             f"{len(jobs) / pooled_seconds:,.1f}"],
            ["speedup", "1x", f"{serial_speedup:,.2f}x",
             f"{speedup:,.2f}x"],
        ]))
    benchmark.extra_info["scalar_serial_seconds"] = scalar_seconds
    benchmark.extra_info["batched_serial_seconds"] = serial_batch_seconds
    benchmark.extra_info["batched_pooled_seconds"] = pooled_seconds
    benchmark.extra_info["serial_batched_speedup"] = serial_speedup
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["experiments"] = len(jobs)
    benchmark.extra_info["batch_sim"] = BATCH
    benchmark.extra_info["workers"] = WORKERS
    benchmark.extra_info["usable_cpus"] = usable_cpus()

    # The batched paths must agree with the scalar oracle record for
    # record (wall clock aside) — asserted unconditionally...
    def strip(records):
        return [(r.scenario, r.injection_tick, r.variable, r.value,
                 r.duration_ticks, r.seed, r.hazard, r.landed,
                 r.pre_delta_long, r.pre_delta_lat, r.min_delta_long,
                 r.min_delta_lat, r.sim_seconds) for r in records]

    oracle = strip(scalar_records)
    assert strip(serial_batch_records) == oracle
    assert strip(pooled_records) == oracle
    # ...and the shipped configuration must pay for itself when there
    # are cores to pool over.  The per-lane ADS pipeline serializes on
    # a single CPU (Amdahl), so with fewer usable CPUs than workers the
    # ≥3x gate is unreachable and skipped; --benchmark-disable smoke
    # lanes only check equivalence.
    if benchmark.disabled:
        return
    if usable_cpus() < WORKERS:
        print(f"only {usable_cpus()} usable CPU(s) for {WORKERS} "
              f"workers: speedup gate skipped")
        return
    assert speedup >= 3.0, (
        f"batched validation only {speedup:.2f}x faster than the "
        f"scalar serial oracle with batch_sim={BATCH}, "
        f"workers={WORKERS}")
