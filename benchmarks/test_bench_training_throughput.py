"""Training memory and throughput: out-of-core traces, streamed fits.

Two costs used to scale with the *whole* golden-trace population:

* **Memory** — every golden trace stayed resident (plus the batch
  window dataset stacked over all of them) for the lifetime of a
  Bayesian campaign.  With ``trace_store=True`` each trace spools to a
  memory-mapped columnar file the moment its scenario completes and the
  streaming trainer folds it into O(parameters) accumulators, so peak
  resident trace memory is O(largest single trace).  The memory probe
  runs the same campaign both ways in fresh subprocesses and asserts
  the out-of-core peak is at most half the in-RAM path's on a
  20-scenario population — traced allocations as the primary gate,
  peak-RSS growth as a looser secondary one (the store's resident set
  includes kernel-evictable mmap pages) — and record streams must
  agree experiment for experiment.
* **Wall-clock** — batch training is a barrier: every golden run must
  land before the fit starts.  Streaming training folds each trace as
  it completes, so on the pipeline driver the fit overlaps golden
  collection (and mining overlaps validation as before).  The
  throughput bench runs barrier vs overlapped at ``workers=4`` on a
  mixed-duration population and gates ≥1.15x on hosts with enough
  cores (CI runners).

Both halves export their numbers through the pytest-benchmark JSON
(tracked as ``BENCH_training.json``), peak RSS included.
"""

import json
import os
import subprocess
import sys
import time
from dataclasses import replace
from pathlib import Path

from repro.analysis import ascii_table
from repro.core import Campaign, CampaignConfig
from repro.sim import (braking_lead, highway_cruise, lead_vehicle_cutin,
                       overtake_cutin, queued_traffic, stalled_vehicle,
                       two_lead_reveal)

WORKERS = 4
MEMORY_SCENARIOS = 20        # the ≥20-scenario memory population
MEMORY_SCENARIOS_SMOKE = 6   # --benchmark-disable lanes


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:   # platforms without affinity
        return os.cpu_count() or 1


#: Runs one campaign variant in a *fresh* interpreter so allocator and
#: import state cannot leak between the in-RAM and out-of-core
#: measurements.  Prints one JSON line: peak tracemalloc bytes (numpy
#: data allocations included, mmapped pages naturally excluded — the
#: "resident trace memory" the gate is about), the process peak RSS,
#: and the full record stream for the equivalence check.
_MEMORY_PROBE = """
import json, resource, sys, tracemalloc
from dataclasses import replace
from repro.core import Campaign, CampaignConfig
from repro.sim import (adjacent_traffic, braking_lead, empty_road,
                       highway_cruise, lead_vehicle_cutin,
                       occluded_pedestrian, overtake_cutin,
                       queued_traffic, stalled_vehicle, two_lead_reveal)

mode, count = sys.argv[1], int(sys.argv[2])
bases = [highway_cruise, lead_vehicle_cutin, two_lead_reveal,
         braking_lead, stalled_vehicle, adjacent_traffic, overtake_cutin,
         queued_traffic, occluded_pedestrian]
scenarios = []
for i in range(count):
    base = bases[i % len(bases)]()
    scenarios.append(replace(base, name=f"{base.name}_v{i}",
                             duration=30.0 + 4.0 * (i % 5)))
config = CampaignConfig(use_checkpoints=False)
rss_before_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
tracemalloc.start()
campaign = Campaign(scenarios, config,
                    trace_store=True if mode == "store" else None)
# A two-variable mining subset keeps the probe's scoring scratch (and
# the process-wide RK4 stop-kernel caches) small relative to the
# trace population the gate is actually about.
result = campaign.bayesian_campaign(
    variables=("brake", "tracked_gap"), top_k=8,
    streaming_training=mode == "store")
_, peak = tracemalloc.get_traced_memory()
rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(json.dumps({
    "peak_traced_bytes": peak,
    "rss_before_kb": rss_before_kb,
    "peak_rss_kb": rss_kb,
    "candidates": [(c.scenario, c.injection_tick, c.variable, c.value)
                   for c in result.candidates],
    "records": [(r.scenario, r.injection_tick, r.variable, r.value,
                 r.duration_ticks, r.hazard.value, r.landed,
                 r.min_delta_long, r.min_delta_lat)
                for r in result.summary.records],
}))
"""


def run_memory_probe(mode: str, count: int) -> dict:
    src = Path(__file__).resolve().parent.parent / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{src}{os.pathsep}" \
        + env.get("PYTHONPATH", "")
    output = subprocess.run(
        [sys.executable, "-c", _MEMORY_PROBE, mode, str(count)],
        check=True, capture_output=True, text=True, env=env)
    return json.loads(output.stdout.strip().splitlines()[-1])


def test_bench_training_memory(benchmark):
    count = MEMORY_SCENARIOS_SMOKE if benchmark.disabled \
        else MEMORY_SCENARIOS
    in_ram = run_memory_probe("inram", count)

    def timed_store():
        return run_memory_probe("store", count)

    stored = benchmark.pedantic(timed_store, rounds=1, iterations=1)

    ratio = stored["peak_traced_bytes"] / in_ram["peak_traced_bytes"]

    def rss_growth(probe):
        """Peak-RSS growth over the campaign (baseline subtracted —
        interpreter+numpy import residency would otherwise swamp the
        trace signal on small hosts)."""
        return probe["peak_rss_kb"] - probe["rss_before_kb"]

    rss_ratio = rss_growth(stored) / max(rss_growth(in_ram), 1)
    print(f"\nPeak resident trace memory over a {count}-scenario "
          f"bayesian campaign")
    print(ascii_table(["metric", "in-RAM", "trace store"], [
        ["peak traced MB",
         f"{in_ram['peak_traced_bytes'] / 1e6:.2f}",
         f"{stored['peak_traced_bytes'] / 1e6:.2f}"],
        ["RSS growth MB",
         f"{rss_growth(in_ram) / 1e3:.1f}",
         f"{rss_growth(stored) / 1e3:.1f}"],
        ["traced ratio", "1x", f"{ratio:.2f}x"],
        ["RSS-growth ratio", "1x", f"{rss_ratio:.2f}x"],
    ]))
    benchmark.extra_info["scenarios"] = count
    benchmark.extra_info["inram_peak_traced_bytes"] = \
        in_ram["peak_traced_bytes"]
    benchmark.extra_info["store_peak_traced_bytes"] = \
        stored["peak_traced_bytes"]
    benchmark.extra_info["inram_peak_rss_kb"] = in_ram["peak_rss_kb"]
    benchmark.extra_info["store_peak_rss_kb"] = stored["peak_rss_kb"]
    benchmark.extra_info["traced_ratio"] = ratio
    benchmark.extra_info["rss_growth_ratio"] = rss_ratio

    # Out-of-core must not change a single number.
    assert stored["candidates"] == in_ram["candidates"]
    assert stored["records"] == in_ram["records"]
    if benchmark.disabled:
        return
    # O(largest trace), not O(total traces).  Primary gate: traced
    # allocations (what the process actually *holds*) must be at most
    # half the in-RAM path's.  Secondary RSS gate: looser, because the
    # store's resident set legitimately includes file-backed mmap
    # pages the kernel can evict at will — counting evictable cache
    # against the bound would punish the design for working.
    assert ratio <= 0.5, (
        f"trace store peak is {ratio:.2f}x the in-RAM path; "
        f"expected <= 0.5x on {count} scenarios")
    assert rss_ratio <= 0.7, (
        f"trace store peak-RSS growth is {rss_ratio:.2f}x the in-RAM "
        f"path; expected <= 0.7x on {count} scenarios")


def overlap_population(smoke: bool):
    """Mixed durations, the long scenario last — the barrier worst case.

    Identical shape to the pipeline-throughput bench: a barrier driver
    idles every worker during the long golden run *and* during batch
    training; the streaming driver folds finished traces while the
    long scenario still simulates.
    """
    scale = 0.5 if smoke else 1.0
    return [replace(lead_vehicle_cutin(), duration=14.0 * scale),
            replace(two_lead_reveal(), duration=14.0 * scale),
            replace(stalled_vehicle(), duration=16.0 * scale),
            replace(queued_traffic(), duration=16.0 * scale),
            replace(overtake_cutin(), duration=18.0 * scale),
            replace(braking_lead(), duration=18.0 * scale),
            replace(highway_cruise(), duration=48.0 * scale)]


def run_overlap_campaign(pipeline: bool, smoke: bool):
    campaign = Campaign(overlap_population(smoke),
                        CampaignConfig(checkpoint_stride=2))
    # No top_k: a cross-scenario cut would gate eager dispatch and
    # serialize mining against validation in both drivers.
    return campaign.bayesian_campaign(
        top_k=24 if smoke else None, workers=WORKERS, pipeline=pipeline,
        streaming_training=pipeline)


def test_bench_training_overlap_throughput(benchmark):
    smoke = benchmark.disabled

    barrier_start = time.perf_counter()
    barrier_result = run_overlap_campaign(pipeline=False, smoke=smoke)
    barrier_seconds = time.perf_counter() - barrier_start

    def timed_pipeline():
        start = time.perf_counter()
        result = run_overlap_campaign(pipeline=True, smoke=smoke)
        return result, time.perf_counter() - start

    pipeline_result, pipeline_seconds = benchmark.pedantic(
        timed_pipeline, rounds=1, iterations=1)
    speedup = barrier_seconds / pipeline_seconds

    print("\nBayesian campaign: barrier (batch training) vs streaming "
          "pipeline (overlapped training)")
    print(ascii_table(["metric", "barrier", "overlapped"], [
        ["experiments", barrier_result.summary.total,
         pipeline_result.summary.total],
        ["train seconds", f"{barrier_result.train_seconds:.2f}",
         f"{pipeline_result.train_seconds:.2f}"],
        ["wall seconds", f"{barrier_seconds:.2f}",
         f"{pipeline_seconds:.2f}"],
        ["speedup", "1x", f"{speedup:,.2f}x"],
    ]))
    benchmark.extra_info["barrier_seconds"] = barrier_seconds
    benchmark.extra_info["pipeline_seconds"] = pipeline_seconds
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["experiments"] = barrier_result.summary.total
    benchmark.extra_info["workers"] = WORKERS
    benchmark.extra_info["usable_cpus"] = usable_cpus()

    # Overlapped training must agree with the batch-trained barrier
    # oracle record for record (wall clock aside)...
    def strip(records):
        return [(r.scenario, r.injection_tick, r.variable, r.value,
                 r.duration_ticks, r.seed, r.hazard, r.landed,
                 r.pre_delta_long, r.pre_delta_lat, r.min_delta_long,
                 r.min_delta_lat, r.sim_seconds) for r in records]

    assert strip(pipeline_result.summary.records) == \
        strip(barrier_result.summary.records)
    assert pipeline_result.summary.same_aggregates(barrier_result.summary)
    # ...and erasing the train barrier must show up as wall-clock when
    # there are cores to reclaim it on.
    if smoke:
        return
    if usable_cpus() < WORKERS:
        print(f"only {usable_cpus()} usable CPU(s) for {WORKERS} "
              f"workers: speedup gate skipped")
        return
    assert speedup >= 1.15, (
        f"overlapped training only {speedup:.2f}x faster than the "
        f"barrier driver with workers={WORKERS}")
