"""E2 — exhaustive grid vs Bayesian FI (the paper's headline result).

Paper: the fault model (b) grid held 98,400 faults (615 days of
experiments); Bayesian FI found 561 maximally-critical faults in under
4 hours — a 3690x acceleration — and 460 of the 561 (82%) manifested as
real hazards.  Shape targets: the acceleration factor is large (orders
of magnitude) and mined-fault precision far exceeds the grid's base
hazard rate.
"""

from repro.analysis import acceleration_report, ascii_table


def test_bench_bayesian_acceleration(benchmark, campaign, bayesian_result):
    # Strided sample of the exhaustive grid to measure per-experiment cost
    # and the base hazard rate.
    sample = campaign.exhaustive_campaign(tick_stride=40)
    grid = campaign.grid_size()

    # The benchmarked unit: one full mining pass over all scenes (the
    # cheap step that replaces grid execution), on the batched
    # production path.
    scenes = list(campaign.scene_rows())
    injector = bayesian_result.injector

    def mine():
        return injector.mine_critical_faults_batched(scenes)

    benchmark(mine)

    report = acceleration_report(grid, sample, bayesian_result)
    print("\nE2: exhaustive vs Bayesian")
    print(ascii_table(["metric", "this repro", "paper"], [
        ["grid size", report.grid_experiments, "98,400"],
        ["extrapolated grid cost (s)",
         f"{report.exhaustive_seconds:,.0f}", "615 days"],
        ["Bayesian cost (s)", f"{report.bayesian_seconds:,.1f}",
         "< 4 hours"],
        ["acceleration", f"{report.acceleration_factor:,.0f}x", "3690x"],
        ["critical faults mined", report.critical_found, "561"],
        ["validated hazards", report.hazards_confirmed, "460"],
        ["precision", f"{report.precision:.0%}", "82%"],
        ["grid-sample hazard rate", f"{sample.hazard_rate:.1%}",
         "~0.6% of grid"],
    ]))
    benchmark.extra_info["acceleration_factor"] = report.acceleration_factor
    benchmark.extra_info["precision"] = report.precision
    benchmark.extra_info["critical_found"] = report.critical_found

    # Shape assertions.
    assert report.critical_found > 0
    assert report.hazards_confirmed > 0
    assert report.acceleration_factor > 10.0, (
        "Bayesian mining must be orders of magnitude cheaper than the grid")
    assert report.precision > max(sample.hazard_rate, 0.02), (
        "mined faults must be enriched in hazards vs the raw grid")
