"""Shared fixtures for the benchmark suite.

Each bench regenerates one table or figure of the paper (see DESIGN.md's
experiment index) on a scaled-down but structurally identical workload,
prints the regenerated artifact, and attaches headline numbers to the
pytest-benchmark record via ``extra_info``.
"""

from dataclasses import replace

import pytest

from repro.core import Campaign, CampaignConfig
from repro.sim import (adjacent_traffic, braking_lead, empty_road,
                       highway_cruise, lead_vehicle_cutin,
                       occluded_pedestrian, overtake_cutin, queued_traffic,
                       stalled_vehicle, two_lead_reveal)


def bench_scenarios():
    """The scenario population used by campaign benches.

    Includes the scripted scenegen templates (overtake cut-in,
    stop-and-go queue, occluded pedestrian crossing) so benches exercise
    multi-vehicle and small-object workloads, not just the paper's core
    situations.
    """
    return [replace(empty_road(), duration=15.0),
            replace(highway_cruise(), duration=20.0),
            replace(lead_vehicle_cutin(), duration=15.0),
            replace(two_lead_reveal(), duration=20.0),
            replace(braking_lead(), duration=20.0),
            replace(stalled_vehicle(), duration=20.0),
            replace(adjacent_traffic(), duration=15.0),
            replace(overtake_cutin(), duration=20.0),
            replace(queued_traffic(), duration=20.0),
            replace(occluded_pedestrian(), duration=20.0)]


@pytest.fixture(scope="session")
def campaign():
    """One shared campaign (golden runs are cached inside)."""
    return Campaign(bench_scenarios(), CampaignConfig())


@pytest.fixture(scope="session")
def bayesian_result(campaign):
    """One shared Bayesian campaign (mining + validation), reused by
    the acceleration, comparison, and fidelity benches."""
    return campaign.bayesian_campaign()
