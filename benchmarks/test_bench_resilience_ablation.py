"""E8 — ablating the ADS's natural resilience mechanisms (paper Sec. II-C).

The paper credits three mechanisms for masking random faults: (1) the
high recompute rate of the stack, (2) Kalman filtering in tracking and
fusion, and (3) PID smoothing of actuation.  Each mechanism masks the
fault class that flows *through* it, so each ablation is measured on its
own fault class:

* longer corruption window      -> every fault class
* tracking filter off           -> perception-stage faults (detection_x)
* PID smoothing off             -> planner-stage faults (raw_* commands)
* slow replanning (2.5 Hz)      -> belief faults latched by the planner

A disabled mechanism may make the stack *more conservative elsewhere*
(e.g. raw-belief mode reacts to a cut-in with no confirmation latency),
so blanket "more hazards overall" claims would be wrong — and that, too,
reproduces the paper's observation that resilience is architectural, not
accidental.
"""

from dataclasses import replace

from repro.analysis import ascii_table
from repro.core import Campaign, CampaignConfig
from repro.core.fault_models import minmax_fault_grid
from repro.sim import lead_vehicle_cutin, stalled_vehicle, two_lead_reveal

ALL_VARIABLES = ["throttle", "brake", "steering", "tracked_gap",
                 "tracked_speed", "imu_speed", "detection_x"]
PERCEPTION_FAULTS = ["detection_x", "detection_y"]
#: The smoothing claim is magnitude attenuation, which holds for pedals.
#: For steering the slew *extends* the corruption (it keeps ramping
#: toward the bad angle and unwinds slowly), so steering is excluded
#: here and the inversion is reported in the table instead.
PLANNER_PEDAL_FAULTS = ["raw_throttle", "raw_brake"]
PLANNER_STEER_FAULTS = ["raw_steering"]
BELIEF_FAULTS = ["tracked_gap", "tracked_speed", "imu_speed"]


def scenario_set():
    return [replace(lead_vehicle_cutin(), duration=15.0),
            replace(two_lead_reveal(), duration=20.0),
            replace(stalled_vehicle(), duration=20.0)]


def hazard_count(campaign, variables, duration_ticks):
    hazards = 0
    total = 0
    for scenario in campaign.scenarios:
        ticks = campaign.injection_ticks(scenario, stride=25)
        for fault in minmax_fault_grid(ticks, variables,
                                       duration_ticks=duration_ticks):
            record = campaign.run_fault(scenario.name, fault)
            total += 1
            hazards += record.hazardous
    return hazards, total


def test_bench_resilience_ablation(benchmark):
    base = CampaignConfig()
    baseline = Campaign(scenario_set(), base)

    benchmark(lambda: baseline.run_fault(
        "lead_vehicle_cutin",
        minmax_fault_grid([104], ["throttle"], 4)[1]))

    rows = []
    checks = []

    # (0) intact stack, every class, default window.
    base_hazards, base_total = hazard_count(baseline, ALL_VARIABLES, 4)
    rows.append(["intact stack / all faults", base_hazards, base_total])

    # (1) longer corruption window: all classes.
    long_hazards, long_total = hazard_count(baseline, ALL_VARIABLES, 10)
    rows.append(["0.5 s corruption / all faults", long_hazards, long_total])
    checks.append(("longer window", long_hazards, base_hazards))

    # (2) tracking filter off: perception-stage faults.
    raw_belief = Campaign(
        scenario_set(),
        replace(base, ads=base.ads.with_resilience(tracking=False)))
    on_h, on_t = hazard_count(baseline, PERCEPTION_FAULTS, 4)
    off_h, off_t = hazard_count(raw_belief, PERCEPTION_FAULTS, 4)
    rows.append(["tracker on / perception faults", on_h, on_t])
    rows.append(["tracker off / perception faults", off_h, off_t])
    checks.append(("tracker off", off_h, on_h))

    # (3) PID smoothing off: planner-stage pedal faults (attenuation
    # claim); steering reported separately (the slew extends those).
    no_smooth = Campaign(
        scenario_set(),
        replace(base, ads=base.ads.with_resilience(smoothing=False)))
    smooth_h, smooth_t = hazard_count(baseline, PLANNER_PEDAL_FAULTS, 4)
    rough_h, rough_t = hazard_count(no_smooth, PLANNER_PEDAL_FAULTS, 4)
    rows.append(["smoothing on / planner pedal faults", smooth_h, smooth_t])
    rows.append(["smoothing off / planner pedal faults", rough_h, rough_t])
    checks.append(("smoothing off", rough_h, smooth_h))
    steer_on, _ = hazard_count(baseline, PLANNER_STEER_FAULTS, 4)
    steer_off, _ = hazard_count(no_smooth, PLANNER_STEER_FAULTS, 4)
    rows.append(["smoothing on / planner steering faults", steer_on, "-"])
    rows.append(["smoothing off / planner steering faults", steer_off,
                 "(slew extends steering corruption)"])

    # (4) slow replanning: belief faults latch for four times longer.
    slow = Campaign(
        scenario_set(),
        replace(base, ads=base.ads.with_resilience(planner_divisor=8)))
    slow_golden_ok = all(r.hazard.value == "none"
                         for r in slow.golden_runs().values())
    fast_h, fast_t = hazard_count(baseline, BELIEF_FAULTS, 4)
    rows.append(["10 Hz replanning / belief faults", fast_h, fast_t])
    if slow_golden_ok:
        slow_h, slow_t = hazard_count(slow, BELIEF_FAULTS, 8)
        rows.append(["2.5 Hz replanning / belief faults", slow_h, slow_t])
        checks.append(("slow replanning", slow_h, fast_h))
    else:
        rows.append(["2.5 Hz replanning", "golden unsafe - skipped", ""])

    print("\nE8: resilience-mechanism ablation")
    print(ascii_table(["configuration / fault class", "hazards",
                       "experiments"], rows))

    benchmark.extra_info["baseline_hazards"] = base_hazards

    assert base_total > 0
    failed = [name for name, weakened, intact in checks
              if weakened < intact]
    assert not failed, (f"mechanisms whose removal reduced hazards on "
                        f"their own fault class: {failed}")
    # At least one mechanism must matter visibly.
    assert any(weakened > intact for _, weakened, intact in checks)
