"""E4 — distribution of the safety potential over scenes.

Paper: 68 of 7200 scenes (~1%) were safety-critical; hazards concentrate
in the small-delta tail.  We evaluate the full 7200-scene population
(scene evaluation is cheap) and check the tail fraction.
"""

import numpy as np

from repro.analysis import (ascii_table, critical_scene_count,
                            delta_distribution)
from repro.core import world_safety_potential
from repro.sim import SceneGenerator

N_SCENES = 7200
CRITICAL_THRESHOLD = 5.0   # m: scenes a transient fault could tip


def scene_deltas(n_scenes):
    generator = SceneGenerator(seed=42)
    deltas = []
    for scene in generator.generate(n_scenes):
        world = scene.to_world(road=generator.road)
        deltas.append(world_safety_potential(world).longitudinal)
    return np.array(deltas)


def test_bench_scene_safety_distribution(benchmark):
    benchmark(lambda: scene_deltas(200))

    deltas = scene_deltas(N_SCENES)
    rows = delta_distribution(deltas)
    critical = critical_scene_count(deltas, CRITICAL_THRESHOLD)
    already_unsafe = int(np.sum(deltas <= 0.0))

    print(f"\nE4: safety potential over {N_SCENES} scenes")
    print(ascii_table(["delta_long bin (m)", "scenes"], rows))
    print(f"critical tail (delta <= {CRITICAL_THRESHOLD} m): "
          f"{critical} / {N_SCENES} = {critical / N_SCENES:.2%} "
          f"(paper: 68/7200 = 0.94% hazard-associated scenes)")

    benchmark.extra_info["critical_scenes"] = critical
    benchmark.extra_info["critical_fraction"] = critical / N_SCENES

    # Shape: a small but non-empty critical tail; the bulk is safe.
    tail_fraction = critical / N_SCENES
    assert 0.0005 < tail_fraction < 0.2
    safe_fraction = float(np.mean(deltas > CRITICAL_THRESHOLD))
    assert safe_fraction > 0.8
    # Plausible driving never starts inside the stopping envelope, so the
    # tail is tippable rather than doomed.
    assert already_unsafe == 0
