"""E1 — random architectural FI outcomes (paper Sec. IV baseline table).

Paper: 5000 random register flips over weeks; 1.93% SDCs that reached
actuation, 7.35% kernel panics/hangs, the rest masked — and **zero**
safety hazards.  Shape targets: masked dominates, crashes/hangs are a
visible minority, SDCs a small minority, and no injected experiment ends
in a hazard.
"""

import numpy as np

from repro.analysis import ascii_table
from repro.arch import (default_kernels, outcome_rates, run_campaign,
                        run_instruction_campaign)

N_ARCH_INJECTIONS = 600
N_DRIVEN = 150


def test_bench_random_arch_fi(benchmark, campaign):
    kernels = default_kernels()

    def one_batch():
        return run_campaign(kernels, n_injections=50, seed=1)

    benchmark(one_batch)

    # Full kernel-level campaigns for the outcome table: register-state
    # flips plus instruction-memory flips (the SASSIFI-style modes).
    results = run_campaign(kernels, n_injections=N_ARCH_INJECTIONS, seed=0)
    rates = outcome_rates(results)
    instr_rates = outcome_rates(run_instruction_campaign(
        kernels, N_ARCH_INJECTIONS // 2, seed=0))

    # Drive the silent corruptions through the closed-loop stack.
    summary, outcomes = campaign.architectural_campaign(N_DRIVEN, seed=0)

    print("\nE1: random architectural fault injection")
    print(ascii_table(
        ["outcome", "register flips", "instruction flips", "paper"],
        [["masked", f"{rates['masked']:.1%}",
          f"{instr_rates['masked']:.1%}", "~90%"],
         ["sdc", f"{rates['sdc']:.1%}", f"{instr_rates['sdc']:.1%}",
          "1.93% actuation-affecting"],
         ["crash", f"{rates['crash']:.1%}", f"{instr_rates['crash']:.1%}",
          "7.35% (with hangs)"],
         ["hang", f"{rates['hang']:.1%}", f"{instr_rates['hang']:.1%}",
          "(included above)"]]))
    print(ascii_table(
        ["driven experiments", "hazards", "paper"],
        [[summary.total, summary.hazards, "0 hazards in 5000 runs"]]))

    benchmark.extra_info["masked_rate"] = rates["masked"]
    benchmark.extra_info["sdc_rate"] = rates["sdc"]
    benchmark.extra_info["hazards"] = summary.hazards

    # Shape assertions (paper's qualitative result).
    assert rates["masked"] > 0.5
    assert 0.0 < rates["sdc"] < 0.45
    assert rates["crash"] + rates["hang"] > 0.0
    assert summary.hazards == 0, (
        "random architectural FI found a hazard; the paper found none")
