"""End-to-end pipeline throughput: streaming driver vs barrier phases.

PR 3 parallelized each campaign phase internally, but the phases still
synchronize globally: every golden run must finish before the first
experiment validates, so one long scenario idles every worker (the
motivating failure mode — campaign wall-clock is gated by barriers, not
by per-experiment cost).  This bench runs the same exhaustive campaign
over a mixed-duration population — one long scenario queued last, the
realistic worst case for a barrier — through both drivers with
``workers=4`` and pins record-for-record agreement plus the speedup
the per-scenario streaming buys.

The speedup gate needs real cores: with fewer usable CPUs than workers
there is no idle capacity for streaming to reclaim, so the ≥1.3x
assertion only applies when the runner exposes at least ``WORKERS``
usable CPUs (CI runners do).  Equivalence is asserted unconditionally.
"""

import os
import time
from dataclasses import replace

from repro.analysis import ascii_table
from repro.core import Campaign, CampaignConfig
from repro.sim import (braking_lead, highway_cruise, lead_vehicle_cutin,
                       overtake_cutin, queued_traffic, stalled_vehicle,
                       two_lead_reveal)

WORKERS = 4
TICK_STRIDE = 16
VARIABLES = ["brake", "throttle", "steering"]


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:   # platforms without affinity
        return os.cpu_count() or 1


def bench_population():
    """Mixed-duration population, the long scenario submitted last.

    Real campaigns mix short scripted situations with long soak
    scenarios; a barrier driver pays the worst one twice (idle workers
    during its golden run, then again waiting to start validation).
    """
    return [replace(lead_vehicle_cutin(), duration=14.0),
            replace(two_lead_reveal(), duration=14.0),
            replace(stalled_vehicle(), duration=16.0),
            replace(queued_traffic(), duration=16.0),
            replace(overtake_cutin(), duration=18.0),
            replace(braking_lead(), duration=18.0),
            replace(highway_cruise(), duration=48.0)]


def fresh_campaign() -> Campaign:
    """A cold campaign: no golden traces, no checkpoints, no caches."""
    return Campaign(bench_population(),
                    CampaignConfig(checkpoint_stride=2))


def run_campaign(pipeline: bool):
    campaign = fresh_campaign()
    summary = campaign.exhaustive_campaign(
        tick_stride=TICK_STRIDE, variable_names=VARIABLES,
        workers=WORKERS, pipeline=pipeline)
    return summary


def test_bench_pipeline_throughput(benchmark):
    # Warm process-wide caches both paths share (RK4 stop kernels,
    # numpy dispatch) so timing order doesn't favour the second run.
    warm = Campaign(bench_population()[:2],
                    CampaignConfig(checkpoint_stride=2))
    warm.exhaustive_campaign(tick_stride=64, variable_names=["brake"],
                             workers=WORKERS)

    barrier_start = time.perf_counter()
    barrier_summary = run_campaign(pipeline=False)
    barrier_seconds = time.perf_counter() - barrier_start

    def timed_pipeline():
        start = time.perf_counter()
        summary = run_campaign(pipeline=True)
        return summary, time.perf_counter() - start

    (pipeline_summary, pipeline_seconds) = benchmark.pedantic(
        timed_pipeline, rounds=1, iterations=1)

    speedup = barrier_seconds / pipeline_seconds

    print("\nEnd-to-end campaign throughput: barrier vs streaming "
          "pipeline")
    print(ascii_table(["metric", "barrier", "pipeline"], [
        ["experiments", barrier_summary.total, pipeline_summary.total],
        ["wall seconds", f"{barrier_seconds:.2f}",
         f"{pipeline_seconds:.2f}"],
        ["speedup", "1x", f"{speedup:,.2f}x"],
    ]))
    benchmark.extra_info["barrier_seconds"] = barrier_seconds
    benchmark.extra_info["pipeline_seconds"] = pipeline_seconds
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["experiments"] = barrier_summary.total
    benchmark.extra_info["workers"] = WORKERS
    benchmark.extra_info["usable_cpus"] = usable_cpus()

    # The streaming pipeline must agree with the barrier oracle record
    # for record (wall clock aside)...
    def strip(records):
        return [(r.scenario, r.injection_tick, r.variable, r.value,
                 r.duration_ticks, r.seed, r.hazard, r.landed,
                 r.pre_delta_long, r.pre_delta_lat, r.min_delta_long,
                 r.min_delta_lat, r.sim_seconds) for r in records]

    assert strip(pipeline_summary.records) == \
        strip(barrier_summary.records)
    assert pipeline_summary.same_aggregates(barrier_summary)
    # ...and the reclaimed barrier idle time must show up as wall-clock
    # when there are cores to reclaim it on.  --benchmark-disable smoke
    # lanes only check equivalence.
    if benchmark.disabled:
        return
    if usable_cpus() < WORKERS:
        print(f"only {usable_cpus()} usable CPU(s) for {WORKERS} "
              f"workers: speedup gate skipped")
        return
    assert speedup >= 1.3, (
        f"streaming pipeline only {speedup:.2f}x faster than the "
        f"barrier driver with workers={WORKERS}")


def test_bench_sharded_pipeline_merge(tmp_path):
    """Two shards cover the campaign and merge back to the whole."""
    from repro.core.persistence import JsonlRecordSink, merge_record_shards

    reference = Campaign(bench_population(),
                         CampaignConfig(checkpoint_stride=2)) \
        .exhaustive_campaign(tick_stride=64, variable_names=["brake"])
    paths = []
    for shard in range(2):
        config = CampaignConfig(checkpoint_stride=2, shard_index=shard,
                                shard_count=2)
        path = tmp_path / f"shard-{shard}.jsonl.gz"
        with JsonlRecordSink(path) as sink:
            Campaign(bench_population(), config).exhaustive_campaign(
                tick_stride=64, variable_names=["brake"],
                workers=2, record_sink=sink)
        paths.append(path)
    merged = merge_record_shards(paths)
    assert merged.same_aggregates(reference)
