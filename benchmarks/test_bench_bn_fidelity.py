"""E7 — fidelity of the 3-TBN's next-state prediction.

The paper's engine is useful exactly because the MLE of the next
kinematic state under the learned model is accurate enough to rank
faults.  Shape targets: one-step-ahead prediction of the ego speed and
gap beats a persistence baseline, and the neutral counterfactual
(do(observed value)) stays close to the observed next state.
"""

import numpy as np

from repro.analysis import ascii_table
from repro.core import scene_rows_from_trace


def test_bench_bn_fidelity(benchmark, campaign, bayesian_result):
    injector = bayesian_result.injector
    golden = campaign.golden_runs()

    # Held-out style evaluation: predict t+1 values from each scene row
    # under the neutral intervention and compare with the recorded trace.
    errors_v, errors_gap = [], []
    persistence_v, persistence_gap = [], []
    sample_scene = None
    for name, run in golden.items():
        arrays = run.trace.as_arrays()
        rows = list(scene_rows_from_trace(name, run.trace))
        for i in range(10, len(rows) - 1, 7):
            scene = rows[i]
            if sample_scene is None:
                sample_scene = scene
            estimate = injector.predict_after_fault(
                scene, "throttle", scene.values["throttle"])
            # Slice 2 corresponds to the trace row i+2.
            truth_v = float(arrays["v"][i + 2])
            truth_gap = float(arrays["gap"][i + 2])
            errors_v.append(abs(estimate["v"] - truth_v))
            errors_gap.append(abs(estimate["gap"] - truth_gap))
            persistence_v.append(abs(scene.values["v"] - truth_v))
            persistence_gap.append(abs(scene.values["gap"] - truth_gap))

    benchmark(lambda: injector.predict_after_fault(
        sample_scene, "throttle", 1.0))

    mae_v = float(np.mean(errors_v))
    mae_gap = float(np.mean(errors_gap))
    base_v = float(np.mean(persistence_v))
    base_gap = float(np.mean(persistence_gap))
    print("\nE7: 3-TBN next-state fidelity (mean absolute error)")
    print(ascii_table(["signal", "3-TBN MLE", "persistence baseline"],
                      [["ego speed (m/s)", mae_v, base_v],
                       ["gap (m)", mae_gap, base_gap]]))
    print(f"samples: {len(errors_v)}; "
          f"Bayesian campaign precision: {bayesian_result.precision:.0%}")

    benchmark.extra_info["mae_v"] = mae_v
    benchmark.extra_info["mae_gap"] = mae_gap

    assert mae_v < 1.0, "speed prediction should be sub-m/s on average"
    assert mae_v <= base_v * 1.1
    assert mae_gap <= base_gap * 1.1
