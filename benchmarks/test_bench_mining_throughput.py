"""Mining throughput: the batched affine engine vs the scalar oracle.

The batched engine precomputes one affine posterior-mean map per
mutilated graph and scores all scenes x corruption values of a node in
a single matmul (plus a vectorized kinematic rollout); the scalar path
runs one full Gaussian conditioning per candidate.  The fused production
path goes one step further and stacks every node's scene-gain block so
all mined variables ride a single matmul.  This bench reports
candidates-scored-per-second for all three and pins the speedup the
paper's "minutes instead of weeks" claim rides on.
"""

import time

from repro.analysis import ascii_table


def test_bench_mining_throughput(benchmark, campaign, bayesian_result):
    scenes = list(campaign.scene_rows())
    injector = bayesian_result.injector

    # Warm every cache all paths share (affine maps, stacked gain
    # blocks, conditioning plans, RK4 kernels) so the comparison
    # isolates per-candidate cost.
    injector.mine_critical_faults_batched(scenes)
    injector.mine_critical_faults_batched(scenes, fuse_nodes=False)
    scalar_candidates, scalar_report = injector.mine_critical_faults(scenes)

    def mine_batched():
        return injector.mine_critical_faults_batched(scenes)

    batched_candidates, batched_report = benchmark(mine_batched)

    # Timed manually (not via benchmark.stats) so the comparison also
    # works under --benchmark-disable smoke runs.
    scalar_start = time.perf_counter()
    injector.mine_critical_faults(scenes)
    scalar_seconds = time.perf_counter() - scalar_start
    per_node_start = time.perf_counter()
    per_node_candidates, per_node_report = \
        injector.mine_critical_faults_batched(scenes, fuse_nodes=False)
    per_node_seconds = time.perf_counter() - per_node_start
    batched_start = time.perf_counter()
    injector.mine_critical_faults_batched(scenes)
    batched_seconds = time.perf_counter() - batched_start

    scalar_cps = scalar_report.n_scored / scalar_seconds
    per_node_cps = per_node_report.n_scored / per_node_seconds
    batched_cps = batched_report.n_scored / batched_seconds
    speedup = batched_cps / scalar_cps

    print("\nMining throughput: fused vs per-node matmuls vs scalar")
    print(ascii_table(["metric", "scalar", "per-node", "fused"], [
        ["candidates scored", scalar_report.n_scored,
         per_node_report.n_scored, batched_report.n_scored],
        ["wall seconds", f"{scalar_seconds:.3f}",
         f"{per_node_seconds:.3f}", f"{batched_seconds:.3f}"],
        ["candidates / s", f"{scalar_cps:,.0f}", f"{per_node_cps:,.0f}",
         f"{batched_cps:,.0f}"],
        ["speedup", "1x", f"{per_node_cps / scalar_cps:,.1f}x",
         f"{speedup:,.1f}x"],
    ]))
    benchmark.extra_info["scalar_candidates_per_sec"] = scalar_cps
    benchmark.extra_info["per_node_candidates_per_sec"] = per_node_cps
    benchmark.extra_info["batched_candidates_per_sec"] = batched_cps
    benchmark.extra_info["speedup"] = speedup

    # All paths must agree on F_crit...
    assert len(batched_candidates) == len(scalar_candidates)
    assert len(per_node_candidates) == len(scalar_candidates)
    for a, b, c in zip(scalar_candidates, batched_candidates,
                       per_node_candidates):
        assert (a.scenario, a.injection_tick, a.variable, a.value) == \
            (b.scenario, b.injection_tick, b.variable, b.value)
        assert (a.scenario, a.injection_tick, a.variable, a.value) == \
            (c.scenario, c.injection_tick, c.variable, c.value)
        assert abs(a.predicted_delta_long - b.predicted_delta_long) <= 1e-9
        assert abs(a.predicted_delta_lat - b.predicted_delta_lat) <= 1e-9
        assert abs(a.predicted_delta_long - c.predicted_delta_long) <= 1e-9
        assert abs(a.predicted_delta_lat - c.predicted_delta_lat) <= 1e-9
    # ...and batching must pay for itself by a wide margin.  The
    # timing gate only applies when benchmarks are actually timed —
    # --benchmark-disable smoke lanes take single noisy samples.
    if not benchmark.disabled:
        assert speedup >= 10.0, (
            f"batched mining only {speedup:.1f}x faster than the "
            f"scalar oracle")
