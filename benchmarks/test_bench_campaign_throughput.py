"""End-to-end campaign throughput: serial vs sharded + streamed.

PR 1 batched mining and PR 2 checkpoint-resumed validation; what was
left serial was golden-trace collection, and every campaign still
accumulated its records in memory.  This bench times the *whole*
Bayesian campaign pipeline — golden collection (with checkpoint-ladder
capture), training, mining, and validation — serial versus sharded over
``workers=4`` with records streamed to a JSONL sink, and pins exact
record agreement between the two.

The speedup gate needs real cores: process-level sharding cannot beat
serial on a single-CPU host, and with fewer cores than workers 2x is at
the theoretical ceiling, so the ≥2x assertion only applies when the
runner exposes at least ``WORKERS`` usable CPUs (CI runners do).
Record equivalence is asserted unconditionally.
"""

import os
import time

import pytest

from repro.analysis import ascii_table
from repro.core import Campaign, CampaignConfig, ListSink
from repro.core.persistence import JsonlRecordSink, load_summary_jsonl

from conftest import bench_scenarios

WORKERS = 4
TOP_K = 24


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:   # platforms without affinity
        return os.cpu_count() or 1


def fresh_campaign() -> Campaign:
    """A cold campaign: no golden traces, no checkpoints, no caches.

    Each timed run gets its own instance so both paths pay the full
    golden + train + mine + validate pipeline from scratch.
    """
    return Campaign(bench_scenarios(),
                    CampaignConfig(checkpoint_stride=2))


def test_bench_campaign_throughput(benchmark, tmp_path):
    # Warm process-wide caches both paths share (RK4 stop kernels,
    # conditioning plans, numpy dispatch) on a scaled-down campaign so
    # the serial-first timing order doesn't hand the sharded run warmer
    # caches through fork inheritance.
    warmup = Campaign(bench_scenarios()[:2],
                      CampaignConfig(checkpoint_stride=2))
    warmup.bayesian_campaign(top_k=4)

    def run_serial():
        campaign = fresh_campaign()
        result = campaign.bayesian_campaign(top_k=TOP_K)
        return campaign, result

    def run_sharded():
        campaign = fresh_campaign()
        sink = ListSink()
        result = campaign.bayesian_campaign(top_k=TOP_K, workers=WORKERS,
                                            record_sink=sink)
        return campaign, result, sink

    serial_start = time.perf_counter()
    serial_campaign, serial_result = run_serial()
    serial_seconds = time.perf_counter() - serial_start

    def timed_sharded():
        start = time.perf_counter()
        out = run_sharded()
        return out, time.perf_counter() - start

    (sharded_out, sharded_seconds) = benchmark.pedantic(
        timed_sharded, rounds=1, iterations=1)
    sharded_campaign, sharded_result, sink = sharded_out

    speedup = serial_seconds / sharded_seconds
    experiments = serial_result.summary.total

    print("\nEnd-to-end campaign throughput: serial vs sharded+streamed")
    print(ascii_table(["metric", "serial", f"workers={WORKERS}"], [
        ["scenarios", len(serial_campaign.scenarios),
         len(sharded_campaign.scenarios)],
        ["experiments", experiments, sharded_result.summary.total],
        ["wall seconds", f"{serial_seconds:.2f}",
         f"{sharded_seconds:.2f}"],
        ["speedup", "1x", f"{speedup:,.2f}x"],
    ]))
    benchmark.extra_info["serial_seconds"] = serial_seconds
    benchmark.extra_info["sharded_seconds"] = sharded_seconds
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["experiments"] = experiments
    benchmark.extra_info["workers"] = WORKERS
    benchmark.extra_info["usable_cpus"] = usable_cpus()

    # The sharded, streamed campaign must agree with the serial oracle
    # candidate-for-candidate and record-for-record (wall clock aside)...
    assert [(c.scenario, c.injection_tick, c.variable, c.value)
            for c in sharded_result.candidates] == \
           [(c.scenario, c.injection_tick, c.variable, c.value)
            for c in serial_result.candidates]

    def strip(records):
        return [(r.scenario, r.injection_tick, r.variable, r.value,
                 r.duration_ticks, r.seed, r.hazard, r.landed,
                 r.pre_delta_long, r.pre_delta_lat, r.min_delta_long,
                 r.min_delta_lat, r.sim_seconds) for r in records]

    assert strip(sink.records) == strip(serial_result.summary.records)
    # ...streaming must keep the summary record-free while agreeing on
    # every aggregate...
    assert sharded_result.summary.records == []
    assert sharded_result.summary.same_aggregates(serial_result.summary)
    # ...and sharding must pay for itself when there are cores to shard
    # over.  With fewer usable CPUs than workers a 2x gain is at or
    # above the theoretical ceiling (Amdahl plus pool overhead), so the
    # gate requires the full worker count; --benchmark-disable smoke
    # lanes only check equivalence.
    if benchmark.disabled:
        return
    if usable_cpus() < WORKERS:
        print(f"only {usable_cpus()} usable CPU(s) for {WORKERS} "
              f"workers: speedup gate skipped")
        return
    assert speedup >= 2.0, (
        f"sharded campaign only {speedup:.2f}x faster than serial "
        f"with workers={WORKERS}")


def test_bench_streamed_records_roundtrip(tmp_path):
    """A streamed campaign's JSONL reloads into an equivalent summary."""
    campaign = fresh_campaign()
    path = tmp_path / "campaign-records.jsonl"
    with JsonlRecordSink(path) as sink:
        summary = campaign.random_campaign(40, seed=9, record_sink=sink)
    assert summary.records == []           # bounded: nothing retained
    assert sink.count == 40
    loaded = load_summary_jsonl(path, keep_records=False)
    assert loaded.same_aggregates(summary)
