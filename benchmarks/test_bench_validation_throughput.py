"""Validation throughput: checkpoint resume vs full replay.

PR 1 made mining 40-60x faster, leaving campaign wall time dominated by
validation: every experiment used to re-simulate the fault-free prefix
from tick 0 even though it is bit-identical to the scenario's golden
run.  The checkpoint engine forks each experiment from the golden-prefix
snapshot at its injection tick, simulating only the fault window plus
the post-fault horizon.  Against 40 s scenarios with injections in the
later half of the window that cuts simulated ticks per experiment by
3-6x; this bench pins the wall-clock speedup and — more importantly —
exact record agreement between the two paths.
"""

import time

import pytest

from repro.analysis import ascii_table
from repro.core import Campaign, CampaignConfig
from repro.core.fault_models import minmax_fault_grid
from repro.core.parallel import run_experiments
from repro.sim import highway_cruise, stop_and_go


@pytest.fixture(scope="module")
def validation_campaign():
    """Full-length (40 s) scenarios so prefixes dominate full replay."""
    campaign = Campaign([highway_cruise(), stop_and_go()],
                        CampaignConfig())
    campaign.golden_runs()   # warm golden traces + checkpoint ladders
    return campaign


def late_window_jobs(campaign):
    """Brake/throttle grid over injections in the later injection window.

    Late ticks are where checkpoint resume pays most (long prefix,
    short remainder); they are also the common case for mined faults,
    which cluster around scripted scenario events.
    """
    jobs = []
    for scenario in campaign.scenarios:
        ticks = campaign.injection_ticks(scenario)
        late = [t for t in ticks
                if t * campaign.config.ads.control_period
                >= 0.55 * scenario.duration]
        grid = minmax_fault_grid(
            late[::18], ["brake", "throttle"],
            duration_ticks=campaign.config.fault_duration_ticks)
        jobs.extend((scenario.name, fault) for fault in grid)
    return jobs


def test_bench_validation_throughput(benchmark, validation_campaign):
    campaign = validation_campaign
    jobs = late_window_jobs(campaign)
    assert len(jobs) >= 20

    def validate_checkpointed():
        return run_experiments(campaign.scenarios, campaign.config, jobs,
                               checkpoints=campaign.checkpoints)

    def validate_full_replay():
        return run_experiments(campaign.scenarios, campaign.config, jobs,
                               checkpoints=None)

    # Warm shared caches (RK4 stop kernels) so the comparison isolates
    # per-tick simulation cost, then time both paths manually — the
    # manual numbers also work under --benchmark-disable smoke runs.
    # Best-of-two timing per path keeps the speedup gate robust against
    # scheduler noise on shared CI runners.
    resumed_records = benchmark(validate_checkpointed)

    def best_of_two(run):
        result, seconds = None, float("inf")
        for _ in range(2):
            start = time.perf_counter()
            result = run()
            seconds = min(seconds, time.perf_counter() - start)
        return result, seconds

    full_records, full_seconds = best_of_two(validate_full_replay)
    _, resumed_seconds = best_of_two(validate_checkpointed)

    speedup = full_seconds / resumed_seconds

    print("\nValidation throughput: checkpoint resume vs full replay")
    print(ascii_table(["metric", "full replay", "checkpointed"], [
        ["experiments", len(full_records), len(resumed_records)],
        ["wall seconds", f"{full_seconds:.3f}", f"{resumed_seconds:.3f}"],
        ["experiments / s", f"{len(jobs) / full_seconds:,.1f}",
         f"{len(jobs) / resumed_seconds:,.1f}"],
        ["speedup", "1x", f"{speedup:,.1f}x"],
    ]))
    benchmark.extra_info["full_replay_seconds"] = full_seconds
    benchmark.extra_info["checkpointed_seconds"] = resumed_seconds
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["experiments"] = len(jobs)

    # The two paths must agree record-for-record (wall clock aside)...
    def strip(records):
        return [(r.scenario, r.injection_tick, r.variable, r.value,
                 r.duration_ticks, r.seed, r.hazard, r.landed,
                 r.pre_delta_long, r.pre_delta_lat, r.min_delta_long,
                 r.min_delta_lat, r.sim_seconds) for r in records]

    assert strip(resumed_records) == strip(full_records)
    # ...and forking from the golden prefix must pay for itself.  The
    # timing gate only applies when benchmarks are actually timed —
    # --benchmark-disable smoke lanes take single noisy samples.
    # The gate was 3.0x when the scalar ADS tick dominated; the
    # closed-form kernel rewrite roughly halved per-tick cost, so the
    # fixed fork/restore overhead is now a larger fraction of each
    # checkpointed experiment and the structural advantage lands ~2x.
    if not benchmark.disabled:
        assert speedup >= 1.5, (
            f"checkpoint resume only {speedup:.1f}x faster than full "
            f"replay")
