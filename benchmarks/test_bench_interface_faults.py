"""Degradation-watch overhead: graceful degradation on vs off.

The interface-fault extension (PR 8) routes every stage payload through
the :class:`~repro.ads.channels.ChannelBus` and, when graceful
degradation is enabled (the default), checks per-channel staleness
against the TTL every control tick.  That watch must be effectively
free on the fault-free path — degradation ships on by default, so every
healthy campaign pays for it on every tick of every experiment.

This bench runs one deterministic value-fault grid twice through the
serial engine — degradation enabled vs ``DegradationConfig(enabled=
False)`` — and pins record-for-record agreement plus the overhead bound
(enabled within 5% of disabled wall-clock).  The timing gate needs a
quiet core, so it only applies with at least two usable CPUs;
equivalence is asserted unconditionally.
"""

import os
import time
from dataclasses import asdict, replace

from repro.analysis import ascii_table
from repro.core import (Campaign, CampaignConfig, DegradationConfig,
                        FaultSpec, ListSink)
from repro.ads.runtime import ADSConfig
from repro.sim import (braking_lead, highway_cruise, lead_vehicle_cutin,
                       two_lead_reveal)


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:   # platforms without affinity
        return os.cpu_count() or 1


def bench_population():
    return [replace(lead_vehicle_cutin(), duration=14.0),
            replace(two_lead_reveal(), duration=14.0),
            replace(braking_lead(), duration=16.0),
            replace(highway_cruise(), duration=16.0)]


def bench_jobs(scenarios):
    """Value faults only: the interface machinery stays on the no-op
    path, which is exactly the overhead being measured."""
    jobs = []
    for scenario in scenarios:
        for tick in (20, 60, 100):
            for variable, value in (("brake", 0.0), ("throttle", 1.0),
                                    ("steering", 0.35)):
                jobs.append((scenario.name,
                             FaultSpec(variable, value, tick, 4)))
    return jobs


def run_grid(scenarios, config, jobs):
    campaign = Campaign(scenarios, config)
    sink = ListSink()
    start = time.perf_counter()
    for scenario_name, fault in jobs:
        sink.add(campaign.run_fault(scenario_name, fault))
    return sink.records, time.perf_counter() - start


def strip(records):
    rows = []
    for record in records:
        row = asdict(record)
        row.pop("wall_seconds")
        rows.append(row)
    return rows


def test_bench_interface_degradation_overhead(benchmark):
    scenarios = bench_population()
    jobs = bench_jobs(scenarios)
    enabled_config = CampaignConfig()
    disabled_config = CampaignConfig(
        ads=ADSConfig(degradation=DegradationConfig(enabled=False)))

    # Warm the golden-run caches on both configs so neither timed run
    # pays the first-touch cost.
    Campaign(scenarios, enabled_config).golden_runs()
    Campaign(scenarios, disabled_config).golden_runs()

    baseline, baseline_seconds = run_grid(scenarios, disabled_config, jobs)

    def timed_enabled():
        return run_grid(scenarios, enabled_config, jobs)

    degraded, degraded_seconds = benchmark.pedantic(
        timed_enabled, rounds=1, iterations=1)

    overhead = degraded_seconds / baseline_seconds

    print("\nGraceful degradation on vs off (fault-free value grid)")
    print(ascii_table(["metric", "degradation off", "degradation on"], [
        ["experiments", len(baseline), len(degraded)],
        ["wall seconds", f"{baseline_seconds:.2f}",
         f"{degraded_seconds:.2f}"],
        ["overhead", "1x", f"{overhead:,.3f}x"],
    ]))
    benchmark.extra_info["baseline_seconds"] = baseline_seconds
    benchmark.extra_info["degraded_seconds"] = degraded_seconds
    benchmark.extra_info["overhead"] = overhead
    benchmark.extra_info["experiments"] = len(jobs)
    benchmark.extra_info["usable_cpus"] = usable_cpus()

    # The degradation watch must not change one record on a fault-free
    # grid (no interface fault ever lands, so nothing may engage)...
    assert strip(degraded) == strip(baseline)
    assert not any(r.degraded for r in degraded)
    # ...and must cost at most 5% wall-clock when there is a quiet core
    # to time it on.  --benchmark-disable smoke lanes only check
    # equivalence.
    if benchmark.disabled:
        return
    if usable_cpus() < 2:
        print(f"only {usable_cpus()} usable CPU(s): overhead gate skipped")
        return
    assert overhead <= 1.05, (
        f"degradation watch cost {overhead:.3f}x the disabled path on a "
        f"fault-free grid (budget: 1.05x)")
