"""Campaign-service overhead: ``repro serve`` vs the direct CLI path.

The always-on service (PR 7) wraps every campaign in a durable job
lifecycle: HTTP submission, the job journal, a runner subprocess, and
NDJSON event streaming back to the caller.  That machinery must be
cheap enough to leave on — an operator pointing campaigns at a service
host instead of invoking the pipeline in-process may not pay
meaningfully for the supervision.  This bench runs the same random
campaign both ways with ``workers=4`` and pins record-for-record
agreement, submission→first-record latency, and the wall-clock
overhead bound (service within 10% of the direct run).

Like the resilience bench, the overhead gate needs real cores — on an
oversubscribed runner the noise floor swamps a 10% bound — so it only
applies with at least ``WORKERS`` usable CPUs; equivalence and the
latency gate are asserted unconditionally.
"""

import json
import time
from dataclasses import asdict, replace

from repro.analysis import ascii_table
from repro.core import Campaign, CampaignConfig
from repro.core.persistence import JsonlRecordSink, iter_records_jsonl
from repro.service import ServiceConfig, ServiceThread
from repro.service.client import ServiceClient
from repro.sim import (braking_lead, highway_cruise, lead_vehicle_cutin,
                       queued_traffic, stalled_vehicle, two_lead_reveal)

WORKERS = 4
N_EXPERIMENTS = 40
SEED = 5

BENCH_SCENARIOS = (("lead_vehicle_cutin", 14.0), ("two_lead_reveal", 14.0),
                   ("stalled_vehicle", 16.0), ("queued_traffic", 16.0),
                   ("braking_lead", 18.0), ("highway_cruise", 18.0))


def usable_cpus() -> int:
    import os
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:   # platforms without affinity
        return os.cpu_count() or 1


def bench_population():
    builders = {"lead_vehicle_cutin": lead_vehicle_cutin,
                "two_lead_reveal": two_lead_reveal,
                "stalled_vehicle": stalled_vehicle,
                "queued_traffic": queued_traffic,
                "braking_lead": braking_lead,
                "highway_cruise": highway_cruise}
    return [replace(builders[name](), duration=duration)
            for name, duration in BENCH_SCENARIOS]


def bench_spec():
    return {"style": "random",
            "params": {"n": N_EXPERIMENTS, "seed": SEED},
            "workers": WORKERS,
            "scenarios": [{"name": name, "duration": duration}
                          for name, duration in BENCH_SCENARIOS]}


def strip_wall(records):
    rows = []
    for record in records:
        row = asdict(record)
        row.pop("wall_seconds")
        rows.append(row)
    return rows


def run_direct(cache_dir, record_path) -> float:
    """The baseline: the same campaign the runner drives, in-process."""
    campaign = Campaign(bench_population(), CampaignConfig(),
                        cache_dir=cache_dir)
    start = time.perf_counter()
    with JsonlRecordSink(record_path, style="random") as sink:
        campaign.random_campaign(N_EXPERIMENTS, seed=SEED,
                                 workers=WORKERS, record_sink=sink)
    return time.perf_counter() - start


def test_bench_service_overhead(benchmark, tmp_path):
    # Separate cache roots: neither side may reuse the other's golden
    # traces or journal, or the comparison times different work.
    direct_cache = tmp_path / "direct-cache"
    service_cache = tmp_path / "service-cache"

    # Warm process-wide caches so timing order doesn't favour side two.
    warm = Campaign(bench_population()[:2], CampaignConfig())
    warm.exhaustive_campaign(tick_stride=64, variable_names=["brake"],
                             workers=WORKERS)

    baseline_seconds = run_direct(direct_cache,
                                  tmp_path / "direct-records.jsonl")

    def timed_service():
        config = ServiceConfig(cache_dir=service_cache,
                               default_workers=WORKERS)
        with ServiceThread(config) as thread:
            client = ServiceClient(port=thread.port)
            start = time.perf_counter()
            job = client.submit(bench_spec())
            first_record = None
            for event in client.events(job["id"]):
                if (first_record is None
                        and event.get("type") == "progress"
                        and event.get("stage") == "validated"):
                    first_record = time.perf_counter() - start
            final = client.wait(job["id"], timeout=600)
            elapsed = time.perf_counter() - start
            assert final["state"] == "completed"
            raw = client.records(job["id"])
        return raw, elapsed, first_record

    raw, service_seconds, first_record_seconds = benchmark.pedantic(
        timed_service, rounds=1, iterations=1)

    overhead = service_seconds / baseline_seconds

    print("\nCampaign service vs direct in-process campaign")
    print(ascii_table(["metric", "direct", "service"], [
        ["experiments", N_EXPERIMENTS, N_EXPERIMENTS],
        ["wall seconds", f"{baseline_seconds:.2f}",
         f"{service_seconds:.2f}"],
        ["submit->first record (s)", "-",
         f"{first_record_seconds:.2f}"],
        ["overhead", "1x", f"{overhead:,.3f}x"],
    ]))
    benchmark.extra_info["baseline_seconds"] = baseline_seconds
    benchmark.extra_info["service_seconds"] = service_seconds
    benchmark.extra_info["first_record_seconds"] = first_record_seconds
    benchmark.extra_info["overhead"] = overhead
    benchmark.extra_info["experiments"] = N_EXPERIMENTS
    benchmark.extra_info["workers"] = WORKERS
    benchmark.extra_info["usable_cpus"] = usable_cpus()

    # The service must not change one record vs the direct pipeline...
    service_records = list(iter_records_jsonl(_spool(tmp_path, raw)))
    direct_records = list(iter_records_jsonl(
        tmp_path / "direct-records.jsonl"))
    assert strip_wall(service_records) == strip_wall(direct_records)

    # ...and the lifecycle machinery may not dominate when there are
    # real cores to time it on.  --benchmark-disable smoke lanes only
    # check equivalence.
    if benchmark.disabled:
        return
    if usable_cpus() < WORKERS:
        print(f"only {usable_cpus()} usable CPU(s) for {WORKERS} "
              f"workers: overhead gates skipped")
        return
    assert overhead <= 1.10, (
        f"service campaign cost {overhead:.3f}x the direct run "
        f"(budget: 1.10x)")
    # First validated record within half the direct campaign: the
    # stream is live, not a batch dump at completion.
    assert first_record_seconds <= max(10.0, baseline_seconds), (
        f"first record took {first_record_seconds:.1f}s "
        f"(direct campaign: {baseline_seconds:.1f}s)")


def _spool(tmp_path, raw: bytes):
    path = tmp_path / "service-records.jsonl"
    path.write_bytes(raw)
    return path
