"""E3 — hazards per injected variable and corruption value.

Paper: min/max output corruption hazards concentrate on the actuation
and world-model variables (throttle, brake, steering, perceived
obstacle state); sensing-stage variables are largely masked by the
Kalman/EKF layers.  Shape targets: actuation + world-model variables
account for the majority of hazards, and most variables are fully
masked.
"""

from repro.analysis import ascii_table, hazard_table
from repro.ads import variable_by_name

#: Stage groups used to aggregate the figure.
ACTUATION = {"throttle", "brake", "steering", "raw_throttle", "raw_brake",
             "raw_steering", "planned_speed"}


def test_bench_hazard_by_variable(benchmark, campaign):
    summary = campaign.exhaustive_campaign(tick_stride=20)

    def one_experiment():
        from repro.core import FaultSpec
        return campaign.run_fault(
            "lead_vehicle_cutin",
            FaultSpec("throttle", 1.0, start_tick=100, duration_ticks=4))

    benchmark(one_experiment)

    rows = [[variable, variable_by_name(variable).stage, count, hazards,
             f"{rate:.1%}"]
            for variable, count, hazards, rate in hazard_table(summary)]
    print("\nE3: hazards by injected variable (min/max grid sample)")
    print(ascii_table(["variable", "stage", "experiments", "hazards",
                       "rate"], rows))

    by_variable = summary.hazards_by_variable()
    total_hazards = sum(by_variable.values())
    ranked = sorted(by_variable.values(), reverse=True)
    top4_share = sum(ranked[:4]) / total_hazards if total_hazards else 0.0
    masked_variables = [v for v, _, h, _ in hazard_table(summary) if h == 0]

    benchmark.extra_info["total_hazards"] = total_hazards
    benchmark.extra_info["hazard_variables"] = len(by_variable)
    benchmark.extra_info["top4_share"] = top4_share

    assert total_hazards > 0, "the grid sample must contain hazards"
    # Paper shape 1: hazards concentrate in a handful of variables.
    assert top4_share > 0.6
    # Paper shape 2: most variables are fully masked by the stack.
    assert len(masked_variables) >= 8
    # Paper shape 3 (the Kalman-masking claim, stated precisely): raw
    # object *measurements* are absorbed by the tracker — a corrupted
    # detection is gated or averaged, never believed outright.  (GPS
    # position faults are the documented exception: a large fix error
    # shifts the localization estimate enough to break lead association,
    # a pathway the EKF attenuates but cannot remove.)
    assert by_variable.get("detection_x", 0) == 0
    assert by_variable.get("detection_y", 0) == 0
