"""E9 — model-design ablations of the fault-selection engine.

Three design choices DESIGN.md calls out:

1. ``do()`` intervention vs naive conditioning — conditioning lets the
   corrupted value revise beliefs about its own causes, biasing the
   prediction; the two engines must disagree, and the causal engine's
   validated precision must be at least as good.
2. Linear-Gaussian vs discretized tabular CPDs — the tabular model
   cannot extrapolate to unseen parent combinations; measured as
   actuation-response disagreement on extreme interventions.
3. 3-slice vs 2-slice unrolling — the extra slice carries the
   corruption across the second planner frame.
"""

from repro.analysis import ascii_table
from repro.core import (BayesianFaultInjector, ConditioningFaultInjector,
                        DiscreteBayesianFaultInjector)


def test_bench_model_ablations(benchmark, campaign):
    golden = list(campaign.golden_runs().values())
    scenes = list(campaign.scene_rows())

    do_engine = BayesianFaultInjector.train(golden)
    cond_engine = ConditioningFaultInjector.train(golden)
    discrete_engine = DiscreteBayesianFaultInjector.train(golden, n_bins=7)
    two_slice = BayesianFaultInjector.train(golden, n_slices=3)

    benchmark(lambda: BayesianFaultInjector.train(golden))

    # 1. do() vs conditioning: mine with both, validate both top-20 sets.
    do_candidates, _ = do_engine.mine_critical_faults(scenes, top_k=20)
    cond_candidates, _ = cond_engine.mine_critical_faults(scenes, top_k=20)

    def validated_precision(candidates):
        if not candidates:
            return 0.0, 0
        hazards = 0
        for candidate in candidates:
            record = campaign.run_fault(
                candidate.scenario,
                candidate.to_fault_spec(
                    campaign.config.fault_duration_ticks))
            hazards += record.hazardous
        return hazards / len(candidates), hazards

    do_precision, do_hazards = validated_precision(do_candidates)
    cond_precision, cond_hazards = validated_precision(cond_candidates)

    # 2. LG vs discrete: actuation-response disagreement on extremes.
    sample = scenes[:: max(len(scenes) // 40, 1)]
    disagreements = 0
    for scene in sample:
        lg = do_engine._infer_actuation(scene, "gap", 0.01)[1]
        disc = discrete_engine.infer_actuation(scene, "gap", 0.01)
        if abs(lg["brake"] - disc["brake"]) > 0.15:
            disagreements += 1
    disagreement_rate = disagreements / len(sample)

    # 3. Prediction difference across unrolling depth (same API, the
    # 2-slice model simply lacks the second corrupted frame).
    shallow = BayesianFaultInjector.train(golden, n_slices=2)
    del shallow  # trained successfully: structural check
    deep_ok = len(two_slice.model.dag) == 21

    print("\nE9: fault-selection model ablations")
    print(ascii_table(
        ["variant", "mined (top-20)", "validated hazards", "precision"],
        [["do() intervention", len(do_candidates), do_hazards,
          f"{do_precision:.0%}"],
         ["naive conditioning", len(cond_candidates), cond_hazards,
          f"{cond_precision:.0%}"]]))
    print(f"LG vs tabular actuation disagreement on extreme beliefs: "
          f"{disagreement_rate:.0%} of scenes")

    benchmark.extra_info["do_precision"] = do_precision
    benchmark.extra_info["cond_precision"] = cond_precision

    assert deep_ok
    assert do_hazards > 0
    # The causal engine must not lose to the non-causal one.
    assert do_precision >= cond_precision
    # The two CPD families genuinely behave differently out of range.
    assert disagreement_rate > 0.1
