"""World-simulator substrate: kinematics, roads, traffic, scenes, traces."""

from .collision import (SENSOR_RANGE, Obstacle, ego_collides,
                        lateral_clearance, lateral_clearance_directional,
                        lateral_safe_distance, longitudinal_safe_distance,
                        nearest_lead, obb_overlap)
from .kinematics import (VehicleState, bicycle_derivatives, rk4_step,
                         simulate_constant_controls)
from .npc import LaneChangeCommand, NPCSnapshot, NPCVehicle, SpeedCommand
from .road import Road
from .scenario import (Scenario, adjacent_traffic, braking_lead,
                       crossing_pedestrian, default_scenarios, empty_road,
                       highway_cruise, lead_vehicle_cutin, merging_traffic,
                       scenario_by_name, stalled_vehicle, stop_and_go,
                       two_lead_reveal)
from .scenegen import (Scene, SceneGenerator, occluded_pedestrian,
                       overtake_cutin, queued_traffic, scripted_templates)
from .trace import StoredTrace, Trace, TraceStore
from .vehicle import Vehicle, VehicleParameters
from .world import World, WorldSnapshot

__all__ = [
    "VehicleState",
    "bicycle_derivatives",
    "rk4_step",
    "simulate_constant_controls",
    "Vehicle",
    "VehicleParameters",
    "Road",
    "Obstacle",
    "SENSOR_RANGE",
    "obb_overlap",
    "longitudinal_safe_distance",
    "lateral_safe_distance",
    "lateral_clearance",
    "lateral_clearance_directional",
    "nearest_lead",
    "ego_collides",
    "NPCVehicle",
    "NPCSnapshot",
    "SpeedCommand",
    "LaneChangeCommand",
    "World",
    "WorldSnapshot",
    "Scenario",
    "default_scenarios",
    "scenario_by_name",
    "empty_road",
    "highway_cruise",
    "lead_vehicle_cutin",
    "two_lead_reveal",
    "braking_lead",
    "stop_and_go",
    "stalled_vehicle",
    "adjacent_traffic",
    "merging_traffic",
    "crossing_pedestrian",
    "Scene",
    "SceneGenerator",
    "overtake_cutin",
    "queued_traffic",
    "occluded_pedestrian",
    "scripted_templates",
    "Trace",
    "StoredTrace",
    "TraceStore",
]
