"""Seeded random scene generation.

A *scene* (paper footnote 1: "a scene is represented by one camera frame")
is a static snapshot of the world: ego speed and lane plus a set of target
vehicles.  The generator reproduces the paper's scene population shape —
the vast majority of scenes have a comfortably positive safety potential,
and a small tail (stopped or much slower traffic at short range) is
safety-critical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .collision import Obstacle
from .npc import NPCVehicle
from .road import Road
from .world import World


@dataclass(frozen=True)
class Scene:
    """A static world snapshot: the unit of the paper's scene studies."""

    scene_id: int
    ego_speed: float
    ego_lane: int
    obstacles: tuple[Obstacle, ...] = ()

    def to_world(self, road: Road | None = None) -> World:
        """Materialize a live world; obstacles become constant-speed NPCs."""
        world = World.on_highway(ego_speed=self.ego_speed,
                                 ego_lane=self.ego_lane, road=road)
        for obstacle in self.obstacles:
            world.add_npc(NPCVehicle(
                npc_id=obstacle.obstacle_id, x=obstacle.x, y=obstacle.y,
                v=obstacle.v, length=obstacle.length, width=obstacle.width))
        return world


@dataclass
class SceneGenerator:
    """Draws random scenes from a fixed, documented distribution.

    * ego speed ~ U(22, 36) m/s (freeway band around the 33.5 m/s limit),
    * 0-4 target vehicles with mixed gaps and relative speeds,
    * a small probability of a stopped vehicle, which creates the
      safety-critical tail of the distribution.
    """

    seed: int = 0
    road: Road = field(default_factory=Road)
    stopped_vehicle_probability: float = 0.04
    max_vehicles: int = 4
    #: Reject physically doomed snapshots (an obstacle already inside the
    #: ego's stopping envelope).  Scenes in the paper come from actual
    #: driving, where the ADS never occupies such states; rejection
    #: sampling reproduces that support.
    plausible_only: bool = True
    a_max: float = 6.0   # used by the plausibility check

    def generate(self, n: int) -> list[Scene]:
        """Generate ``n`` scenes deterministically from the seed."""
        rng = np.random.default_rng(self.seed)
        scenes = []
        for index in range(n):
            scene = self._one_scene(rng, index)
            while self.plausible_only and not self._plausible(scene):
                scene = self._one_scene(rng, index)
            scenes.append(scene)
        return scenes

    def _plausible(self, scene: Scene) -> bool:
        """Crude delta check: every ego-lane obstacle is outrunnable."""
        ego_y = self.road.lane_center(scene.ego_lane)
        ego_stop = scene.ego_speed ** 2 / (2.0 * self.a_max)
        for obstacle in scene.obstacles:
            if abs(obstacle.y - ego_y) > 1.9:
                continue
            gap = obstacle.x - 4.8
            envelope = gap + obstacle.v ** 2 / (2.0 * self.a_max)
            if envelope <= ego_stop:
                return False
        return True

    def _one_scene(self, rng: np.random.Generator, scene_id: int) -> Scene:
        ego_speed = float(rng.uniform(22.0, 36.0))
        ego_lane = int(rng.integers(0, self.road.n_lanes))
        n_vehicles = int(rng.choice(
            self.max_vehicles + 1, p=self._vehicle_count_distribution()))
        obstacles = []
        for i in range(n_vehicles):
            obstacles.append(self._one_vehicle(rng, i + 1, ego_speed,
                                               ego_lane))
        return Scene(scene_id=scene_id, ego_speed=ego_speed,
                     ego_lane=ego_lane, obstacles=tuple(obstacles))

    def _vehicle_count_distribution(self) -> np.ndarray:
        weights = np.array([0.15, 0.35, 0.28, 0.15, 0.07])
        return weights[:self.max_vehicles + 1] / weights[
            :self.max_vehicles + 1].sum()

    def _one_vehicle(self, rng: np.random.Generator, obstacle_id: int,
                     ego_speed: float, ego_lane: int) -> Obstacle:
        lane = int(rng.integers(0, self.road.n_lanes))
        gap = float(rng.uniform(12.0, 230.0))
        if rng.random() < self.stopped_vehicle_probability:
            speed = 0.0
        else:
            speed = float(np.clip(ego_speed + rng.uniform(-10.0, 4.0),
                                  0.0, 45.0))
        # Vehicles behind the ego appear only in other lanes so scenes
        # stay physically plausible (no overlapping bodies).
        if lane == ego_lane:
            x = gap
        else:
            x = float(rng.uniform(-60.0, 230.0))
        return Obstacle(obstacle_id=obstacle_id, x=x,
                        y=self.road.lane_center(lane), v=speed)
