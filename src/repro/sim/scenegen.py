"""Seeded random scene generation and scripted scenario templates.

A *scene* (paper footnote 1: "a scene is represented by one camera frame")
is a static snapshot of the world: ego speed and lane plus a set of target
vehicles.  The generator reproduces the paper's scene population shape —
the vast majority of scenes have a comfortably positive safety potential,
and a small tail (stopped or much slower traffic at short range) is
safety-critical.

The scripted *generator templates* at the bottom extend the core library
in :mod:`repro.sim.scenario` with denser multi-vehicle situations (cut-in
during an overtake, a stop-and-go queue, an occluded pedestrian crossing)
so campaigns and benchmarks exercise a wider workload.  Like the core
library they bind module-level build functions with ``functools.partial``,
so the resulting :class:`~repro.sim.scenario.Scenario` objects pickle and
ship to process-pool workers under any start method.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

import numpy as np

from .collision import Obstacle
from .npc import LaneChangeCommand, NPCVehicle, SpeedCommand
from .road import Road
from .scenario import Scenario
from .world import World


@dataclass(frozen=True)
class Scene:
    """A static world snapshot: the unit of the paper's scene studies."""

    scene_id: int
    ego_speed: float
    ego_lane: int
    obstacles: tuple[Obstacle, ...] = ()

    def to_world(self, road: Road | None = None) -> World:
        """Materialize a live world; obstacles become constant-speed NPCs."""
        world = World.on_highway(ego_speed=self.ego_speed,
                                 ego_lane=self.ego_lane, road=road)
        for obstacle in self.obstacles:
            world.add_npc(NPCVehicle(
                npc_id=obstacle.obstacle_id, x=obstacle.x, y=obstacle.y,
                v=obstacle.v, length=obstacle.length, width=obstacle.width))
        return world


@dataclass
class SceneGenerator:
    """Draws random scenes from a fixed, documented distribution.

    * ego speed ~ U(22, 36) m/s (freeway band around the 33.5 m/s limit),
    * 0-4 target vehicles with mixed gaps and relative speeds,
    * a small probability of a stopped vehicle, which creates the
      safety-critical tail of the distribution.
    """

    seed: int = 0
    road: Road = field(default_factory=Road)
    stopped_vehicle_probability: float = 0.04
    max_vehicles: int = 4
    #: Reject physically doomed snapshots (an obstacle already inside the
    #: ego's stopping envelope).  Scenes in the paper come from actual
    #: driving, where the ADS never occupies such states; rejection
    #: sampling reproduces that support.
    plausible_only: bool = True
    a_max: float = 6.0   # used by the plausibility check

    def generate(self, n: int) -> list[Scene]:
        """Generate ``n`` scenes deterministically from the seed."""
        rng = np.random.default_rng(self.seed)
        scenes = []
        for index in range(n):
            scene = self._one_scene(rng, index)
            while self.plausible_only and not self._plausible(scene):
                scene = self._one_scene(rng, index)
            scenes.append(scene)
        return scenes

    def _plausible(self, scene: Scene) -> bool:
        """Crude delta check: every ego-lane obstacle is outrunnable."""
        ego_y = self.road.lane_center(scene.ego_lane)
        ego_stop = scene.ego_speed ** 2 / (2.0 * self.a_max)
        for obstacle in scene.obstacles:
            if abs(obstacle.y - ego_y) > 1.9:
                continue
            gap = obstacle.x - 4.8
            envelope = gap + obstacle.v ** 2 / (2.0 * self.a_max)
            if envelope <= ego_stop:
                return False
        return True

    def _one_scene(self, rng: np.random.Generator, scene_id: int) -> Scene:
        ego_speed = float(rng.uniform(22.0, 36.0))
        ego_lane = int(rng.integers(0, self.road.n_lanes))
        n_vehicles = int(rng.choice(
            self.max_vehicles + 1, p=self._vehicle_count_distribution()))
        obstacles = []
        for i in range(n_vehicles):
            obstacles.append(self._one_vehicle(rng, i + 1, ego_speed,
                                               ego_lane))
        return Scene(scene_id=scene_id, ego_speed=ego_speed,
                     ego_lane=ego_lane, obstacles=tuple(obstacles))

    def _vehicle_count_distribution(self) -> np.ndarray:
        weights = np.array([0.15, 0.35, 0.28, 0.15, 0.07])
        return weights[:self.max_vehicles + 1] / weights[
            :self.max_vehicles + 1].sum()

    def _one_vehicle(self, rng: np.random.Generator, obstacle_id: int,
                     ego_speed: float, ego_lane: int) -> Obstacle:
        lane = int(rng.integers(0, self.road.n_lanes))
        gap = float(rng.uniform(12.0, 230.0))
        if rng.random() < self.stopped_vehicle_probability:
            speed = 0.0
        else:
            speed = float(np.clip(ego_speed + rng.uniform(-10.0, 4.0),
                                  0.0, 45.0))
        # Vehicles behind the ego appear only in other lanes so scenes
        # stay physically plausible (no overlapping bodies).
        if lane == ego_lane:
            x = gap
        else:
            x = float(rng.uniform(-60.0, 230.0))
        return Obstacle(obstacle_id=obstacle_id, x=x,
                        y=self.road.lane_center(lane), v=speed)


# -- scripted scenario templates ---------------------------------------------


def _build_overtake_cutin(ego_speed: float, lead_gap: float,
                          lead_speed: float, cutin_time: float,
                          cutin_gap: float, cutin_speed: float) -> World:
    world = World.on_highway(ego_speed=ego_speed)
    ego_lane_y = world.road.lane_center(1)
    # The slow vehicle the ego is gaining on in its own lane.
    world.add_npc(NPCVehicle(npc_id=1, x=lead_gap, y=ego_lane_y,
                             v=lead_speed))
    # The overtaker: faster traffic in the passing lane that swings into
    # the shrinking gap between ego and lead mid-manoeuvre.
    overtaker = NPCVehicle(npc_id=2, x=cutin_gap,
                           y=world.road.lane_center(2), v=cutin_speed)
    overtaker.lane_commands.append(
        LaneChangeCommand(t=cutin_time, target_y=ego_lane_y, duration=2.5))
    overtaker.speed_commands.append(
        SpeedCommand(t=cutin_time + 2.5, target=lead_speed))
    world.add_npc(overtaker)
    return world


def overtake_cutin(ego_speed: float = 31.0, lead_gap: float = 70.0,
                   lead_speed: float = 24.0, cutin_time: float = 4.0,
                   cutin_gap: float = 12.0,
                   cutin_speed: float = 31.0) -> Scenario:
    """A passing-lane vehicle cuts in while the ego closes on a slow lead.

    Two pressures stack: the ego is already decelerating toward the slow
    lead when the overtaker drops into the gap and matches the lead's
    speed, collapsing the headway twice in quick succession.  Fault-free
    the ADS absorbs both; a throttle or perception fault in the squeeze
    window is critical.
    """
    return Scenario("overtake_cutin",
                    partial(_build_overtake_cutin, ego_speed, lead_gap,
                            lead_speed, cutin_time, cutin_gap, cutin_speed),
                    duration=30.0)


def _build_queued_traffic(ego_speed: float, queue_gap: float,
                          queue_spacing: float, queue_length: int,
                          crawl_speed: float) -> World:
    world = World.on_highway(ego_speed=ego_speed)
    ego_lane_y = world.road.lane_center(1)
    for i in range(queue_length):
        npc = NPCVehicle(npc_id=i + 1, x=queue_gap + i * queue_spacing,
                         y=ego_lane_y, v=crawl_speed)
        # The queue compresses and relaxes: each member oscillates
        # between crawl and near-stop, rear members slightly out of
        # phase with the front — the accordion shape of real congestion.
        for j, target in enumerate([2.0, crawl_speed, 1.0, crawl_speed]):
            npc.speed_commands.append(
                SpeedCommand(t=5.0 + 7.0 * j + 1.5 * i, target=target))
        world.add_npc(npc)
    return world


def queued_traffic(ego_speed: float = 20.0, queue_gap: float = 70.0,
                   queue_spacing: float = 14.0, queue_length: int = 3,
                   crawl_speed: float = 9.0) -> Scenario:
    """A stop-and-go queue: several vehicles crawling in accordion waves.

    Unlike :func:`repro.sim.scenario.stop_and_go` (one oscillating lead)
    the ego faces a column of vehicles whose compression waves travel
    backwards, so the effective lead alternates between moving and nearly
    stopped at short range.
    """
    return Scenario("queued_traffic",
                    partial(_build_queued_traffic, ego_speed, queue_gap,
                            queue_spacing, queue_length, crawl_speed),
                    duration=40.0)


def _build_occluded_pedestrian(ego_speed: float, lead_gap: float,
                               lead_speed: float, cross_x: float,
                               cross_time: float,
                               cross_duration: float) -> World:
    world = World.on_highway(ego_speed=ego_speed)
    ego_lane_y = world.road.lane_center(1)
    # The occluder: a lead vehicle the ego follows at moderate gap.
    world.add_npc(NPCVehicle(npc_id=1, x=lead_gap, y=ego_lane_y,
                             v=lead_speed))
    # The pedestrian starts off-road below lane 0 and crosses upward
    # through the lanes; it emerges from behind the lead's corridor only
    # when already on the roadway.
    pedestrian = NPCVehicle(npc_id=2, x=cross_x, y=-1.2, v=0.0,
                            length=0.6, width=0.6)
    pedestrian.lane_commands.append(
        LaneChangeCommand(t=cross_time, target_y=world.road.width + 1.0,
                          duration=cross_duration))
    world.add_npc(pedestrian)
    return world


def occluded_pedestrian(ego_speed: float = 18.0, lead_gap: float = 30.0,
                        lead_speed: float = 18.0, cross_x: float = 110.0,
                        cross_time: float = 3.0,
                        cross_duration: float = 10.0) -> Scenario:
    """A pedestrian crosses ahead while the ego follows an occluding lead.

    The urban variant of the two-lead reveal: the lead vehicle limits
    sensor sight lines, so the crossing body enters the ego lane with far
    less anticipation time than :func:`repro.sim.scenario.
    crossing_pedestrian` allows.  Exercises small-object tracking plus
    car-following at once.
    """
    return Scenario("occluded_pedestrian",
                    partial(_build_occluded_pedestrian, ego_speed, lead_gap,
                            lead_speed, cross_x, cross_time, cross_duration),
                    duration=30.0)


def scripted_templates() -> list[Scenario]:
    """The scripted generator templates, one instance each."""
    return [overtake_cutin(), queued_traffic(), occluded_pedestrian()]
