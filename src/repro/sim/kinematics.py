"""Bicycle-model vehicle kinematics (Eq. 3 of the paper) with RK4.

State is ``(x, y, v, theta, phi)``: planar position, speed, heading, and
steering angle.  The equations of motion are

    dx/dt     = v cos(theta)
    dy/dt     = v sin(theta)
    dtheta/dt = v tan(phi) / L

with ``L`` the wheelbase.  Speed and steering are driven by the control
inputs (longitudinal acceleration and steering rate), which is how both
the ego vehicle and the emergency-stop maneuver integrate forward.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np


@dataclass(frozen=True)
class VehicleState:
    """Instantaneous kinematic state of one vehicle."""

    x: float = 0.0
    y: float = 0.0
    v: float = 0.0
    theta: float = 0.0
    phi: float = 0.0

    def as_array(self) -> np.ndarray:
        """State as ``[x, y, v, theta, phi]``."""
        return np.array([self.x, self.y, self.v, self.theta, self.phi])

    @classmethod
    def from_array(cls, array: np.ndarray) -> "VehicleState":
        """Inverse of :meth:`as_array`."""
        x, y, v, theta, phi = (float(value) for value in array)
        return cls(x=x, y=y, v=v, theta=theta, phi=phi)

    def with_speed(self, v: float) -> "VehicleState":
        """Copy with a new speed."""
        return replace(self, v=float(v))


def bicycle_derivatives(state: np.ndarray, acceleration: float,
                        steering_rate: float,
                        wheelbase: float) -> np.ndarray:
    """Time derivatives of ``[x, y, v, theta, phi]``.

    Speed is clamped at zero inside the integrator (a braking vehicle does
    not reverse), so the derivative uses the non-negative part of ``v``.
    """
    _, _, v, theta, phi = state
    v = max(v, 0.0)
    return np.array([
        v * np.cos(theta),
        v * np.sin(theta),
        acceleration,
        v * np.tan(phi) / wheelbase,
        steering_rate,
    ])


def rk4_step(state: VehicleState, acceleration: float, steering_rate: float,
             wheelbase: float, dt: float) -> VehicleState:
    """One classical Runge-Kutta step of the bicycle model.

    The returned state has ``v`` clamped to be non-negative: the model
    covers forward driving and braking to a halt, not reversing.
    """
    y0 = state.as_array()

    def f(y: np.ndarray) -> np.ndarray:
        return bicycle_derivatives(y, acceleration, steering_rate, wheelbase)

    k1 = f(y0)
    k2 = f(y0 + 0.5 * dt * k1)
    k3 = f(y0 + 0.5 * dt * k2)
    k4 = f(y0 + dt * k3)
    y1 = y0 + (dt / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)
    if y1[2] < 0.0:
        y1[2] = 0.0
    new_state = VehicleState.from_array(y1)
    return new_state


def simulate_constant_controls(state: VehicleState, acceleration: float,
                               steering_rate: float, wheelbase: float,
                               dt: float, n_steps: int) -> list[VehicleState]:
    """Integrate ``n_steps`` of constant controls; returns all states."""
    states = [state]
    for _ in range(n_steps):
        state = rk4_step(state, acceleration, steering_rate, wheelbase, dt)
        states.append(state)
    return states
