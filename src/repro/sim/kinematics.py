"""Bicycle-model vehicle kinematics (Eq. 3 of the paper) with RK4.

State is ``(x, y, v, theta, phi)``: planar position, speed, heading, and
steering angle.  The equations of motion are

    dx/dt     = v cos(theta)
    dy/dt     = v sin(theta)
    dtheta/dt = v tan(phi) / L

with ``L`` the wheelbase.  Speed and steering are driven by the control
inputs (longitudinal acceleration and steering rate), which is how both
the ego vehicle and the emergency-stop maneuver integrate forward.

Two implementations share the exact same floating-point contract:

* the scalar path (:func:`rk4_step`) integrates one vehicle with plain
  float arithmetic — no per-call array allocations — and is the
  bit-for-bit oracle;
* the batched path (:func:`batched_rk4_step`) integrates N vehicles per
  call over an ``(N, 5)`` structure-of-arrays matrix with one set of
  elementwise ufunc calls and preallocated scratch (see
  :class:`BatchKernelWorkspace`), producing bitwise-identical
  trajectories lane for lane.

Bitwise equivalence holds because both paths perform the same IEEE-754
double operations in the same order: transcendentals go through the same
numpy ufuncs (``np.cos``/``np.sin``/``np.tan`` are elementwise-identical
between scalar and array calls), add/mul/div are correctly rounded
everywhere, and clamps are expressed as the same compare-and-select
(numpy's ``maximum``/``minimum`` are deliberately avoided — their
signed-zero semantics differ from Python's ``max``/``min``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np


@dataclass(frozen=True)
class VehicleState:
    """Instantaneous kinematic state of one vehicle."""

    x: float = 0.0
    y: float = 0.0
    v: float = 0.0
    theta: float = 0.0
    phi: float = 0.0

    def as_array(self) -> np.ndarray:
        """State as ``[x, y, v, theta, phi]``."""
        return np.array([self.x, self.y, self.v, self.theta, self.phi])

    @classmethod
    def from_array(cls, array: np.ndarray) -> "VehicleState":
        """Inverse of :meth:`as_array`."""
        x, y, v, theta, phi = (float(value) for value in array)
        return cls(x=x, y=y, v=v, theta=theta, phi=phi)

    def with_speed(self, v: float) -> "VehicleState":
        """Copy with a new speed."""
        return replace(self, v=float(v))


def _scalar_derivatives(v: float, theta: float, phi: float,
                        acceleration: float, steering_rate: float,
                        wheelbase: float) -> tuple:
    """Derivative components as plain scalars (no array round-trip)."""
    if v < 0.0:
        v = 0.0
    return (v * np.cos(theta), v * np.sin(theta), acceleration,
            v * np.tan(phi) / wheelbase, steering_rate)


def bicycle_derivatives(state: np.ndarray, acceleration: float,
                        steering_rate: float,
                        wheelbase: float) -> np.ndarray:
    """Time derivatives of ``[x, y, v, theta, phi]``.

    Speed is clamped at zero inside the integrator (a braking vehicle does
    not reverse), so the derivative uses the non-negative part of ``v``.
    """
    _, _, v, theta, phi = state
    dx, dy, dv, dtheta, dphi = _scalar_derivatives(
        v, theta, phi, acceleration, steering_rate, wheelbase)
    return np.array([dx, dy, dv, dtheta, dphi])


def rk4_step(state: VehicleState, acceleration: float, steering_rate: float,
             wheelbase: float, dt: float) -> VehicleState:
    """One classical Runge-Kutta step of the bicycle model.

    The returned state has ``v`` clamped to be non-negative: the model
    covers forward driving and braking to a halt, not reversing.

    Plain-float arithmetic throughout — the hot path allocates no
    intermediate arrays.  The operation order mirrors the textbook
    ``y1 = y0 + (dt/6) * (k1 + 2*k2 + 2*k3 + k4)`` expression exactly so
    results stay bit-for-bit stable across refactors.
    """
    x0, y0 = state.x, state.y
    v0, t0, p0 = state.v, state.theta, state.phi

    k1x, k1y, k1v, k1t, k1p = _scalar_derivatives(
        v0, t0, p0, acceleration, steering_rate, wheelbase)
    half = 0.5 * dt
    k2x, k2y, k2v, k2t, k2p = _scalar_derivatives(
        v0 + half * k1v, t0 + half * k1t, p0 + half * k1p,
        acceleration, steering_rate, wheelbase)
    k3x, k3y, k3v, k3t, k3p = _scalar_derivatives(
        v0 + half * k2v, t0 + half * k2t, p0 + half * k2p,
        acceleration, steering_rate, wheelbase)
    k4x, k4y, k4v, k4t, k4p = _scalar_derivatives(
        v0 + dt * k3v, t0 + dt * k3t, p0 + dt * k3p,
        acceleration, steering_rate, wheelbase)

    sixth = dt / 6.0
    x1 = x0 + sixth * (k1x + 2 * k2x + 2 * k3x + k4x)
    y1 = y0 + sixth * (k1y + 2 * k2y + 2 * k3y + k4y)
    v1 = v0 + sixth * (k1v + 2 * k2v + 2 * k3v + k4v)
    t1 = t0 + sixth * (k1t + 2 * k2t + 2 * k3t + k4t)
    p1 = p0 + sixth * (k1p + 2 * k2p + 2 * k3p + k4p)
    if v1 < 0.0:
        v1 = 0.0
    return VehicleState(x=float(x1), y=float(y1), v=float(v1),
                        theta=float(t1), phi=float(p1))


# -- batched kernels ---------------------------------------------------------


class BatchKernelWorkspace:
    """Preallocated scratch for :func:`batched_rk4_step`.

    One workspace serves any batch of up to ``capacity`` lanes; reusing
    it across steps keeps the integrator allocation-free (the point of
    batching is one set of ufunc calls per step, not N).
    """

    def __init__(self, capacity: int):
        self.capacity = int(capacity)
        n = self.capacity
        self.k1 = np.empty((n, 5))
        self.k2 = np.empty((n, 5))
        self.k3 = np.empty((n, 5))
        self.k4 = np.empty((n, 5))
        self.stage = np.empty((n, 5))
        self.accum = np.empty((n, 5))
        self.speed = np.empty(n)
        self.trig = np.empty(n)
        self.mask = np.empty(n, dtype=bool)


def batched_bicycle_derivatives(states: np.ndarray, acceleration,
                                steering_rate, wheelbase: float,
                                out: np.ndarray | None = None,
                                workspace: BatchKernelWorkspace | None = None
                                ) -> np.ndarray:
    """Derivatives for N lanes at once; ``states`` is ``(N, 5)``.

    ``acceleration`` and ``steering_rate`` broadcast over lanes (scalar
    or ``(N,)``).  Elementwise-identical to N calls of
    :func:`bicycle_derivatives`.
    """
    states = np.asarray(states, dtype=np.float64)
    n = states.shape[0]
    if workspace is None or workspace.capacity < n:
        workspace = BatchKernelWorkspace(n)
    if out is None:
        out = np.empty_like(states)
    v = workspace.speed[:n]
    trig = workspace.trig[:n]
    mask = workspace.mask[:n]
    np.copyto(v, states[:, 2])
    # Same select as ``max(v, 0.0)`` — np.maximum would flip -0.0 to +0.0.
    np.less(v, 0.0, out=mask)
    np.copyto(v, 0.0, where=mask)
    np.cos(states[:, 3], out=trig)
    np.multiply(v, trig, out=out[:, 0])
    np.sin(states[:, 3], out=trig)
    np.multiply(v, trig, out=out[:, 1])
    out[:, 2] = acceleration
    np.tan(states[:, 4], out=trig)
    np.multiply(v, trig, out=trig)
    np.divide(trig, wheelbase, out=out[:, 3])
    out[:, 4] = steering_rate
    return out


def batched_rk4_step(states: np.ndarray, acceleration, steering_rate,
                     wheelbase: float, dt: float,
                     out: np.ndarray | None = None,
                     workspace: BatchKernelWorkspace | None = None
                     ) -> np.ndarray:
    """One RK4 step for N lanes; bitwise-equal per lane to
    :func:`rk4_step`.

    Every arithmetic step is the same IEEE operation in the same order
    as the scalar path (sums regrouped only by commutative additions,
    which are exact); the final speed clamp is the same
    compare-and-select.  With a caller-provided ``workspace`` and
    ``out`` the kernel performs no per-step allocations.
    """
    states = np.asarray(states, dtype=np.float64)
    n = states.shape[0]
    if workspace is None or workspace.capacity < n:
        workspace = BatchKernelWorkspace(n)
    if out is None:
        out = np.empty_like(states)
    ws = workspace
    k1, k2, k3, k4 = ws.k1[:n], ws.k2[:n], ws.k3[:n], ws.k4[:n]
    stage, accum = ws.stage[:n], ws.accum[:n]

    batched_bicycle_derivatives(states, acceleration, steering_rate,
                                wheelbase, out=k1, workspace=ws)
    half = 0.5 * dt
    np.multiply(k1, half, out=stage)
    stage += states
    batched_bicycle_derivatives(stage, acceleration, steering_rate,
                                wheelbase, out=k2, workspace=ws)
    np.multiply(k2, half, out=stage)
    stage += states
    batched_bicycle_derivatives(stage, acceleration, steering_rate,
                                wheelbase, out=k3, workspace=ws)
    np.multiply(k3, dt, out=stage)
    stage += states
    batched_bicycle_derivatives(stage, acceleration, steering_rate,
                                wheelbase, out=k4, workspace=ws)

    np.multiply(k2, 2.0, out=accum)
    accum += k1
    np.multiply(k3, 2.0, out=k2)
    accum += k2
    accum += k4
    accum *= dt / 6.0
    np.add(states, accum, out=out)
    speed = out[:, 2]
    mask = ws.mask[:n]
    np.less(speed, 0.0, out=mask)
    np.copyto(speed, 0.0, where=mask)
    return out


def simulate_constant_controls(state: VehicleState, acceleration: float,
                               steering_rate: float, wheelbase: float,
                               dt: float, n_steps: int) -> list[VehicleState]:
    """Integrate ``n_steps`` of constant controls; returns all states.

    Runs on the batched kernel (a 1-lane batch stepped in place with a
    preallocated workspace) and unpacks to the historical
    list-of-states shape; bitwise-identical to a scalar
    :func:`rk4_step` loop.
    """
    states = [state]
    if n_steps <= 0:
        return states
    lane = state.as_array().reshape(1, 5)
    scratch = np.empty_like(lane)
    workspace = BatchKernelWorkspace(1)
    for _ in range(n_steps):
        batched_rk4_step(lane, acceleration, steering_rate, wheelbase, dt,
                         out=scratch, workspace=workspace)
        lane, scratch = scratch, lane
        states.append(VehicleState.from_array(lane[0]))
    return states
