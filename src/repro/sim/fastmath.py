"""Scalar mirrors of numpy ufuncs for hot per-tick paths.

The ADS pipeline and the scripted traffic step clamp a handful of
scalars every tick; going through ``np.clip`` costs a ufunc dispatch per
call, which profiles as ~20% of a validation campaign.  ``clip_scalar``
is the plain-Python replacement.

Bit-for-bit contract: ``clip_scalar(x, lo, hi)`` equals
``float(np.clip(x, lo, hi))`` for *every* IEEE-754 double value ``x`` —
signed zeros, NaNs (which propagate through both failed comparisons),
infinities, and denormals — over every *ordered* bound pair
(``lo <= hi``, signed zeros in either slot).  The caveat exists because
numpy composes ``minimum(maximum(x, lo), hi)``: with NaN or inverted
(``lo > hi``) bounds that composition answers differently than the
compare-and-select below — and no call site can produce such bounds.
This equivalence is regression-tested in ``tests/test_kinematics.py``.
Keep the comparison order if you touch this.
"""

from __future__ import annotations


def clip_scalar(value: float, low: float, high: float) -> float:
    """Clamp ``value`` to ``[low, high]``; bitwise-equal to ``np.clip``."""
    if value < low:
        return float(low)
    if value > high:
        return float(high)
    return float(value)
