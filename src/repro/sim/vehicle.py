"""Vehicle bodies: physical parameters plus actuation-driven dynamics.

The ADS emits an :class:`~repro.ads.messages.ActuationCommand`-style
triple (throttle, brake, steering angle); :class:`Vehicle` turns it into
longitudinal acceleration and a rate-limited steering motion, then
integrates the bicycle model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .fastmath import clip_scalar
from .kinematics import VehicleState, rk4_step


@dataclass(frozen=True)
class VehicleParameters:
    """Physical limits of one vehicle.

    ``max_deceleration`` is the paper's ``a_max``: the maximum comfortable
    deceleration assumed by the emergency-stop maneuver that defines
    ``d_stop``.
    """

    wheelbase: float = 2.8          # m
    length: float = 4.8             # m (bounding box)
    width: float = 1.9              # m (bounding box)
    max_acceleration: float = 3.5   # m/s^2 at full throttle
    max_deceleration: float = 6.0   # m/s^2 at full brake (a_max)
    max_speed: float = 45.0         # m/s
    max_steering_angle: float = 0.55    # rad
    max_steering_rate: float = 0.6      # rad/s
    drag: float = 0.0004            # quadratic speed-loss coefficient
                                    # (~0.4 m/s^2 at highway speed)


@dataclass
class Vehicle:
    """A vehicle body that integrates actuation commands."""

    state: VehicleState
    params: VehicleParameters = field(default_factory=VehicleParameters)

    def acceleration_for(self, throttle: float, brake: float) -> float:
        """Longitudinal acceleration for pedal positions in [0, 1].

        Pedals are clipped to their physical range; drag grows with the
        square of speed so top speed is naturally bounded.
        """
        throttle = clip_scalar(throttle, 0.0, 1.0)
        brake = clip_scalar(brake, 0.0, 1.0)
        accel = (throttle * self.params.max_acceleration
                 - brake * self.params.max_deceleration
                 - self.params.drag * (self.state.v * self.state.v))
        return accel

    def controls_for(self, throttle: float, brake: float, steering: float,
                     dt: float) -> tuple[float, float]:
        """Map an actuation command to ``(acceleration, steering_rate)``.

        This is the scalar control mapping shared with the batch engine:
        the quadratic drag term and the steering-rate slew depend on the
        *current* state, so batched lanes call it lane-by-lane (cheap)
        and feed the results to the fused RK4 kernel.
        """
        accel = self.acceleration_for(throttle, brake)
        target = clip_scalar(steering, -self.params.max_steering_angle,
                             self.params.max_steering_angle)
        error = target - self.state.phi
        steering_rate = clip_scalar(error / dt if dt > 0 else 0.0,
                                    -self.params.max_steering_rate,
                                    self.params.max_steering_rate)
        return accel, steering_rate

    def apply_actuation(self, throttle: float, brake: float,
                        steering: float, dt: float) -> VehicleState:
        """Advance ``dt`` seconds under an actuation command.

        ``steering`` is the commanded steering angle; the actual angle
        slews toward it at the steering-rate limit, and is clipped to the
        mechanical range.  Returns (and stores) the new state.
        """
        accel, steering_rate = self.controls_for(throttle, brake, steering,
                                                 dt)
        new_state = rk4_step(self.state, accel, steering_rate,
                             self.params.wheelbase, dt)
        if new_state.v > self.params.max_speed:
            new_state = new_state.with_speed(self.params.max_speed)
        phi = clip_scalar(new_state.phi,
                          -self.params.max_steering_angle,
                          self.params.max_steering_angle)
        self.state = VehicleState(new_state.x, new_state.y, new_state.v,
                                  new_state.theta, phi)
        return self.state

    def footprint(self) -> np.ndarray:
        """Corners of the oriented bounding box, shape (4, 2)."""
        half_l = self.params.length / 2.0
        half_w = self.params.width / 2.0
        corners = np.array([[half_l, half_w], [half_l, -half_w],
                            [-half_l, -half_w], [-half_l, half_w]])
        c, s = np.cos(self.state.theta), np.sin(self.state.theta)
        rotation = np.array([[c, -s], [s, c]])
        return corners @ rotation.T + np.array([self.state.x, self.state.y])
