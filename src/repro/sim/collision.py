"""Collision tests and the safety envelope ``d_safe``.

``d_safe`` (paper Definition 2) is the distance the ego vehicle can travel
before touching any static or dynamic object.  We compute it separately
for the longitudinal direction (bodies ahead in the ego's travel corridor)
and the lateral direction (bodies alongside, plus the ego-lane boundaries,
which the paper treats as static objects so that lane departures register
as safety violations).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .road import Road

#: Objects farther than this are invisible to the safety envelope, matching
#: a realistic forward sensor range.
SENSOR_RANGE = 250.0


@dataclass(frozen=True)
class Obstacle:
    """A rigid body in the world (typically a target vehicle)."""

    obstacle_id: int
    x: float
    y: float
    v: float = 0.0
    theta: float = 0.0
    length: float = 4.8
    width: float = 1.9

    def footprint(self) -> np.ndarray:
        """Corners of the oriented bounding box, shape (4, 2)."""
        half_l, half_w = self.length / 2.0, self.width / 2.0
        corners = np.array([[half_l, half_w], [half_l, -half_w],
                            [-half_l, -half_w], [-half_l, half_w]])
        c, s = np.cos(self.theta), np.sin(self.theta)
        rotation = np.array([[c, -s], [s, c]])
        return corners @ rotation.T + np.array([self.x, self.y])


def obb_overlap(corners_a: np.ndarray, corners_b: np.ndarray) -> bool:
    """Separating-axis overlap test for two convex quadrilaterals."""
    for corners in (corners_a, corners_b):
        for i in range(len(corners)):
            edge = corners[(i + 1) % len(corners)] - corners[i]
            axis = np.array([-edge[1], edge[0]])
            norm = np.linalg.norm(axis)
            if norm < 1e-12:
                continue
            axis = axis / norm
            proj_a = corners_a @ axis
            proj_b = corners_b @ axis
            if proj_a.max() < proj_b.min() or proj_b.max() < proj_a.min():
                return False
    return True


def _corridor_overlaps(ego_y: float, ego_width: float,
                       obstacle: Obstacle) -> bool:
    """True if the obstacle's body intersects the ego travel corridor."""
    gap = abs(obstacle.y - ego_y) - (ego_width + obstacle.width) / 2.0
    return gap < 0.0


def longitudinal_safe_distance(ego_x: float, ego_y: float, ego_length: float,
                               ego_width: float,
                               obstacles: list[Obstacle]) -> float:
    """Bumper-to-bumper distance to the nearest body ahead in the corridor.

    Returns :data:`SENSOR_RANGE` when the corridor is clear; can be
    negative when bodies already overlap longitudinally.
    """
    nearest = SENSOR_RANGE
    for obstacle in obstacles:
        if not _corridor_overlaps(ego_y, ego_width, obstacle):
            continue
        gap = (obstacle.x - ego_x) - (ego_length + obstacle.length) / 2.0
        if obstacle.x >= ego_x and gap < nearest:
            nearest = gap
    return nearest


def lateral_safe_distance(ego_x: float, ego_y: float, ego_length: float,
                          ego_width: float, obstacles: list[Obstacle],
                          road: Road) -> float:
    """Clearance to the nearest flanking body or ego-lane boundary.

    The ego-lane boundary term implements the paper's "lane markings are
    static objects" rule; crossing the line drives the margin negative.
    """
    margin = road.lateral_margin_in_lane(ego_y, ego_width / 2.0)
    for obstacle in obstacles:
        longitudinal_gap = (abs(obstacle.x - ego_x)
                            - (ego_length + obstacle.length) / 2.0)
        if longitudinal_gap >= 0.0:
            continue  # no side-by-side overlap
        side_gap = abs(obstacle.y - ego_y) - (ego_width + obstacle.width) / 2.0
        margin = min(margin, side_gap)
    return margin


def lateral_clearance(ego_x: float, ego_y: float, ego_length: float,
                      ego_width: float, obstacles: list[Obstacle],
                      road: Road) -> float:
    """Clearance to the nearest flanking body or *road edge*.

    This is the envelope used by the emergency-stop lateral safety
    check: the maneuver freezes steering, so the relevant free space is
    everything up to the pavement edge and any vehicle alongside, not
    the ego-lane line (which lane-keeping crosses benignly under small
    steering noise).
    """
    margin = road.lateral_margin_on_road(ego_y, ego_width / 2.0)
    for obstacle in obstacles:
        longitudinal_gap = (abs(obstacle.x - ego_x)
                            - (ego_length + obstacle.length) / 2.0)
        if longitudinal_gap >= 0.0:
            continue
        side_gap = abs(obstacle.y - ego_y) - (ego_width + obstacle.width) / 2.0
        margin = min(margin, side_gap)
    return margin


def lateral_clearance_directional(ego_x: float, ego_y: float,
                                  ego_length: float, ego_width: float,
                                  obstacles: list[Obstacle], road: Road,
                                  side: int) -> float:
    """Clearance toward one side (+1 = increasing y, -1 = decreasing).

    Counts the road edge on that side plus any body alongside on that
    side; used by the Bayesian engine to score directional steering
    faults.
    """
    if side >= 0:
        margin = road.width - (ego_y + ego_width / 2.0)
    else:
        margin = ego_y - ego_width / 2.0
    for obstacle in obstacles:
        longitudinal_gap = (abs(obstacle.x - ego_x)
                            - (ego_length + obstacle.length) / 2.0)
        if longitudinal_gap >= 0.0:
            continue
        if side >= 0 and obstacle.y <= ego_y:
            continue
        if side < 0 and obstacle.y >= ego_y:
            continue
        side_gap = abs(obstacle.y - ego_y) - (ego_width + obstacle.width) / 2.0
        margin = min(margin, side_gap)
    return margin


def nearest_lead(ego_x: float, ego_y: float, ego_width: float,
                 obstacles: list[Obstacle],
                 extra_margin: float = 0.0) -> Obstacle | None:
    """The closest obstacle ahead in the ego corridor, if any.

    ``extra_margin`` widens the corridor test; scene recording uses it
    to include impending entrants (a vehicle mid-cut-in) the way a
    tracked world model with lateral velocities would.
    """
    lead = None
    for obstacle in obstacles:
        if obstacle.x < ego_x:
            continue
        gap = (abs(obstacle.y - ego_y)
               - (ego_width + obstacle.width) / 2.0 - extra_margin)
        if gap >= 0.0:
            continue
        if obstacle.x - ego_x > SENSOR_RANGE:
            continue
        if lead is None or obstacle.x < lead.x:
            lead = obstacle
    return lead


def ego_collides(ego_footprint: np.ndarray,
                 obstacles: list[Obstacle]) -> bool:
    """True if the ego body overlaps any obstacle body."""
    return any(obb_overlap(ego_footprint, obstacle.footprint())
               for obstacle in obstacles)


# -- batched variants --------------------------------------------------------
#
# The batch simulation engine keeps N lanes of the same scenario in a
# structure-of-arrays layout: per-lane ego positions as ``(N,)`` vectors
# and per-lane obstacle positions as ``(N, M)`` matrices (M obstacles,
# shared static dimensions).  Each function below is the elementwise
# mirror of its scalar sibling above: identical operation order,
# identical compare-and-select clamps (``min`` is written as
# ``where(b < a, b, a)``, never ``np.minimum``, so signed-zero and tie
# behaviour match Python's), so per lane the results are bit-for-bit
# the scalar answers.


def _select_smaller(current: np.ndarray, candidate: np.ndarray,
                    eligible: np.ndarray) -> None:
    """In place: ``current[i] = min(current[i], candidate[i])`` where
    eligible, with Python-``min`` tie semantics (keep ``current``)."""
    update = eligible & np.less(candidate, current)
    current[update] = candidate[update]


def batched_longitudinal_safe_distance(ego_x: np.ndarray, ego_y: np.ndarray,
                                       ego_length: float, ego_width: float,
                                       obs_x: np.ndarray, obs_y: np.ndarray,
                                       obs_lengths, obs_widths,
                                       out: np.ndarray | None = None
                                       ) -> np.ndarray:
    """Per-lane :func:`longitudinal_safe_distance` over ``(N, M)`` bodies."""
    n = ego_x.shape[0]
    if out is None:
        out = np.empty(n)
    out[:] = SENSOR_RANGE
    for j in range(obs_x.shape[1]):
        corridor_gap = (np.abs(obs_y[:, j] - ego_y)
                        - (ego_width + float(obs_widths[j])) / 2.0)
        gap = ((obs_x[:, j] - ego_x)
               - (ego_length + float(obs_lengths[j])) / 2.0)
        eligible = (corridor_gap < 0.0) & (obs_x[:, j] >= ego_x)
        _select_smaller(out, gap, eligible)
    return out


def _batched_flank_margin(margin: np.ndarray, ego_x: np.ndarray,
                          ego_y: np.ndarray, ego_length: float,
                          ego_width: float, obs_x: np.ndarray,
                          obs_y: np.ndarray, obs_lengths,
                          obs_widths) -> np.ndarray:
    """Fold side gaps of longitudinally-overlapping bodies into
    ``margin`` (shared tail of the two lateral envelopes)."""
    for j in range(obs_x.shape[1]):
        longitudinal_gap = (np.abs(obs_x[:, j] - ego_x)
                            - (ego_length + float(obs_lengths[j])) / 2.0)
        side_gap = (np.abs(obs_y[:, j] - ego_y)
                    - (ego_width + float(obs_widths[j])) / 2.0)
        _select_smaller(margin, side_gap, longitudinal_gap < 0.0)
    return margin


def batched_lateral_safe_distance(ego_x: np.ndarray, ego_y: np.ndarray,
                                  ego_length: float, ego_width: float,
                                  obs_x: np.ndarray, obs_y: np.ndarray,
                                  obs_lengths, obs_widths, road: Road,
                                  out: np.ndarray | None = None
                                  ) -> np.ndarray:
    """Per-lane :func:`lateral_safe_distance` over ``(N, M)`` bodies."""
    half_width = ego_width / 2.0
    lane = np.floor_divide(ego_y, road.lane_width)
    np.clip(lane, 0.0, float(road.n_lanes - 1), out=lane)
    low = lane * road.lane_width
    high = (lane + 1.0) * road.lane_width
    a = (ego_y - half_width) - low
    b = high - (ego_y + half_width)
    margin = np.where(np.less(b, a), b, a)
    if out is not None:
        np.copyto(out, margin)
        margin = out
    return _batched_flank_margin(margin, ego_x, ego_y, ego_length,
                                 ego_width, obs_x, obs_y, obs_lengths,
                                 obs_widths)


def batched_lateral_clearance(ego_x: np.ndarray, ego_y: np.ndarray,
                              ego_length: float, ego_width: float,
                              obs_x: np.ndarray, obs_y: np.ndarray,
                              obs_lengths, obs_widths, road: Road,
                              out: np.ndarray | None = None) -> np.ndarray:
    """Per-lane :func:`lateral_clearance` over ``(N, M)`` bodies."""
    half_width = ego_width / 2.0
    a = ego_y - half_width - 0.0
    b = road.width - (ego_y + half_width)
    margin = np.where(np.less(b, a), b, a)
    if out is not None:
        np.copyto(out, margin)
        margin = out
    return _batched_flank_margin(margin, ego_x, ego_y, ego_length,
                                 ego_width, obs_x, obs_y, obs_lengths,
                                 obs_widths)


def batched_off_road(ego_y: np.ndarray, ego_width: float,
                     road: Road) -> np.ndarray:
    """Per-lane ``World.off_road`` (road-edge margin gone negative)."""
    half_width = ego_width / 2.0
    a = ego_y - half_width - 0.0
    b = road.width - (ego_y + half_width)
    return np.where(np.less(b, a), b, a) < 0.0


def batched_nearest_lead(ego_x: np.ndarray, ego_y: np.ndarray,
                         ego_width: float, obs_x: np.ndarray,
                         obs_y: np.ndarray, obs_widths,
                         extra_margin: float = 0.0
                         ) -> tuple[np.ndarray, np.ndarray]:
    """Per-lane :func:`nearest_lead` over ``(N, M)`` bodies.

    Returns ``(lead_index, has_lead)``: the obstacle column index of
    each lane's lead (first occurrence of the minimum x, matching the
    scalar strict ``<`` scan) and a mask of lanes that have one.
    """
    n, m = obs_x.shape
    if m == 0:
        return (np.zeros(n, dtype=np.intp), np.zeros(n, dtype=bool))
    eligible = np.empty((n, m), dtype=bool)
    for j in range(m):
        gap = (np.abs(obs_y[:, j] - ego_y)
               - (ego_width + float(obs_widths[j])) / 2.0 - extra_margin)
        eligible[:, j] = ((obs_x[:, j] >= ego_x) & (gap < 0.0)
                          & ((obs_x[:, j] - ego_x) <= SENSOR_RANGE))
    masked_x = np.where(eligible, obs_x, np.inf)
    lead_index = np.argmin(masked_x, axis=1)
    return lead_index, eligible.any(axis=1)


def batched_collision_prescreen(ego_x: np.ndarray, ego_y: np.ndarray,
                                ego_length: float, ego_width: float,
                                obs_x: np.ndarray, obs_y: np.ndarray,
                                obs_lengths, obs_widths,
                                ego_theta: np.ndarray | None = None
                                ) -> np.ndarray:
    """Conservative per-lane collision candidate mask.

    Tests axis-aligned bounds of the oriented boxes: the ego box at
    heading ``theta`` fits inside half-extents
    ``((L|cos| + W|sin|)/2, (L|sin| + W|cos|)/2)`` and NPC bodies are
    axis-aligned, so disjoint bounds guarantee :func:`obb_overlap` is
    False.  Much tighter than bounding circles — traffic one lane over
    (3.5 m of lateral offset against ~2 m of summed half-widths) no
    longer passes, which matters because lanes that do pass still need
    the exact per-lane SAT test.  Without ``ego_theta`` the heading is
    taken as 0 (pure translation bounds).  The slack absorbs rounding.
    """
    n, m = obs_x.shape
    candidates = np.zeros(n, dtype=bool)
    if m == 0:
        return candidates
    if ego_theta is None:
        half_x = np.full(n, ego_length / 2.0)
        half_y = np.full(n, ego_width / 2.0)
    else:
        c = np.abs(np.cos(ego_theta))
        s = np.abs(np.sin(ego_theta))
        half_x = (ego_length * c + ego_width * s) / 2.0
        half_y = (ego_length * s + ego_width * c) / 2.0
    for j in range(m):
        reach_x = half_x + (float(obs_lengths[j]) / 2.0 + 1e-6)
        reach_y = half_y + (float(obs_widths[j]) / 2.0 + 1e-6)
        candidates |= ((np.abs(obs_x[:, j] - ego_x) <= reach_x)
                       & (np.abs(obs_y[:, j] - ego_y) <= reach_y))
    return candidates


def batched_ego_collides(ego_x: np.ndarray, ego_y: np.ndarray,
                         ego_length: float, ego_width: float,
                         obs_x: np.ndarray, obs_y: np.ndarray,
                         obs_lengths, obs_widths, exact,
                         ego_theta: np.ndarray | None = None) -> np.ndarray:
    """Per-lane :func:`ego_collides`: vectorized prescreen, then the
    caller-supplied exact test (``exact(lane) -> bool``, typically the
    lane's own ``World.in_collision``) only for candidate lanes."""
    result = batched_collision_prescreen(ego_x, ego_y, ego_length,
                                         ego_width, obs_x, obs_y,
                                         obs_lengths, obs_widths,
                                         ego_theta=ego_theta)
    for lane in np.nonzero(result)[0]:
        result[lane] = bool(exact(int(lane)))
    return result
