"""Collision tests and the safety envelope ``d_safe``.

``d_safe`` (paper Definition 2) is the distance the ego vehicle can travel
before touching any static or dynamic object.  We compute it separately
for the longitudinal direction (bodies ahead in the ego's travel corridor)
and the lateral direction (bodies alongside, plus the ego-lane boundaries,
which the paper treats as static objects so that lane departures register
as safety violations).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .road import Road

#: Objects farther than this are invisible to the safety envelope, matching
#: a realistic forward sensor range.
SENSOR_RANGE = 250.0


@dataclass(frozen=True)
class Obstacle:
    """A rigid body in the world (typically a target vehicle)."""

    obstacle_id: int
    x: float
    y: float
    v: float = 0.0
    theta: float = 0.0
    length: float = 4.8
    width: float = 1.9

    def footprint(self) -> np.ndarray:
        """Corners of the oriented bounding box, shape (4, 2)."""
        half_l, half_w = self.length / 2.0, self.width / 2.0
        corners = np.array([[half_l, half_w], [half_l, -half_w],
                            [-half_l, -half_w], [-half_l, half_w]])
        c, s = np.cos(self.theta), np.sin(self.theta)
        rotation = np.array([[c, -s], [s, c]])
        return corners @ rotation.T + np.array([self.x, self.y])


def obb_overlap(corners_a: np.ndarray, corners_b: np.ndarray) -> bool:
    """Separating-axis overlap test for two convex quadrilaterals."""
    for corners in (corners_a, corners_b):
        for i in range(len(corners)):
            edge = corners[(i + 1) % len(corners)] - corners[i]
            axis = np.array([-edge[1], edge[0]])
            norm = np.linalg.norm(axis)
            if norm < 1e-12:
                continue
            axis = axis / norm
            proj_a = corners_a @ axis
            proj_b = corners_b @ axis
            if proj_a.max() < proj_b.min() or proj_b.max() < proj_a.min():
                return False
    return True


def _corridor_overlaps(ego_y: float, ego_width: float,
                       obstacle: Obstacle) -> bool:
    """True if the obstacle's body intersects the ego travel corridor."""
    gap = abs(obstacle.y - ego_y) - (ego_width + obstacle.width) / 2.0
    return gap < 0.0


def longitudinal_safe_distance(ego_x: float, ego_y: float, ego_length: float,
                               ego_width: float,
                               obstacles: list[Obstacle]) -> float:
    """Bumper-to-bumper distance to the nearest body ahead in the corridor.

    Returns :data:`SENSOR_RANGE` when the corridor is clear; can be
    negative when bodies already overlap longitudinally.
    """
    nearest = SENSOR_RANGE
    for obstacle in obstacles:
        if not _corridor_overlaps(ego_y, ego_width, obstacle):
            continue
        gap = (obstacle.x - ego_x) - (ego_length + obstacle.length) / 2.0
        if obstacle.x >= ego_x and gap < nearest:
            nearest = gap
    return nearest


def lateral_safe_distance(ego_x: float, ego_y: float, ego_length: float,
                          ego_width: float, obstacles: list[Obstacle],
                          road: Road) -> float:
    """Clearance to the nearest flanking body or ego-lane boundary.

    The ego-lane boundary term implements the paper's "lane markings are
    static objects" rule; crossing the line drives the margin negative.
    """
    margin = road.lateral_margin_in_lane(ego_y, ego_width / 2.0)
    for obstacle in obstacles:
        longitudinal_gap = (abs(obstacle.x - ego_x)
                            - (ego_length + obstacle.length) / 2.0)
        if longitudinal_gap >= 0.0:
            continue  # no side-by-side overlap
        side_gap = abs(obstacle.y - ego_y) - (ego_width + obstacle.width) / 2.0
        margin = min(margin, side_gap)
    return margin


def lateral_clearance(ego_x: float, ego_y: float, ego_length: float,
                      ego_width: float, obstacles: list[Obstacle],
                      road: Road) -> float:
    """Clearance to the nearest flanking body or *road edge*.

    This is the envelope used by the emergency-stop lateral safety
    check: the maneuver freezes steering, so the relevant free space is
    everything up to the pavement edge and any vehicle alongside, not
    the ego-lane line (which lane-keeping crosses benignly under small
    steering noise).
    """
    margin = road.lateral_margin_on_road(ego_y, ego_width / 2.0)
    for obstacle in obstacles:
        longitudinal_gap = (abs(obstacle.x - ego_x)
                            - (ego_length + obstacle.length) / 2.0)
        if longitudinal_gap >= 0.0:
            continue
        side_gap = abs(obstacle.y - ego_y) - (ego_width + obstacle.width) / 2.0
        margin = min(margin, side_gap)
    return margin


def lateral_clearance_directional(ego_x: float, ego_y: float,
                                  ego_length: float, ego_width: float,
                                  obstacles: list[Obstacle], road: Road,
                                  side: int) -> float:
    """Clearance toward one side (+1 = increasing y, -1 = decreasing).

    Counts the road edge on that side plus any body alongside on that
    side; used by the Bayesian engine to score directional steering
    faults.
    """
    if side >= 0:
        margin = road.width - (ego_y + ego_width / 2.0)
    else:
        margin = ego_y - ego_width / 2.0
    for obstacle in obstacles:
        longitudinal_gap = (abs(obstacle.x - ego_x)
                            - (ego_length + obstacle.length) / 2.0)
        if longitudinal_gap >= 0.0:
            continue
        if side >= 0 and obstacle.y <= ego_y:
            continue
        if side < 0 and obstacle.y >= ego_y:
            continue
        side_gap = abs(obstacle.y - ego_y) - (ego_width + obstacle.width) / 2.0
        margin = min(margin, side_gap)
    return margin


def nearest_lead(ego_x: float, ego_y: float, ego_width: float,
                 obstacles: list[Obstacle],
                 extra_margin: float = 0.0) -> Obstacle | None:
    """The closest obstacle ahead in the ego corridor, if any.

    ``extra_margin`` widens the corridor test; scene recording uses it
    to include impending entrants (a vehicle mid-cut-in) the way a
    tracked world model with lateral velocities would.
    """
    lead = None
    for obstacle in obstacles:
        if obstacle.x < ego_x:
            continue
        gap = (abs(obstacle.y - ego_y)
               - (ego_width + obstacle.width) / 2.0 - extra_margin)
        if gap >= 0.0:
            continue
        if obstacle.x - ego_x > SENSOR_RANGE:
            continue
        if lead is None or obstacle.x < lead.x:
            lead = obstacle
    return lead


def ego_collides(ego_footprint: np.ndarray,
                 obstacles: list[Obstacle]) -> bool:
    """True if the ego body overlaps any obstacle body."""
    return any(obb_overlap(ego_footprint, obstacle.footprint())
               for obstacle in obstacles)
