"""Columnar recording of simulation signals.

Traces feed two consumers: Bayesian-network training (golden runs) and
experiment reporting (time series for the case-study figures).

Appends go to plain Python lists (cheap per tick); the numpy views are
materialized lazily and cached, so golden-trace consumers that read the
same columns thousands of times (scene mining, BN training) stop paying
a list->array conversion per access.  Cached arrays are marked
read-only because they are shared between callers.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np


class Trace:
    """An append-only, column-aligned record of named float signals."""

    def __init__(self):
        self._columns: dict[str, list[float]] = {}
        self._length = 0
        self._arrays: dict[str, np.ndarray] | None = None

    def __len__(self) -> int:
        return self._length

    @property
    def columns(self) -> list[str]:
        """Recorded signal names (insertion order)."""
        return list(self._columns)

    @classmethod
    def from_columns(cls, columns: Mapping[str, list[float]]) -> "Trace":
        """Rebuild a trace from columnar data (persistence round-trip)."""
        lengths = {len(values) for values in columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"ragged columns: lengths {sorted(lengths)}")
        trace = cls()
        trace._columns = {name: [float(v) for v in values]
                          for name, values in columns.items()}
        trace._length = lengths.pop() if lengths else 0
        return trace

    def record(self, sample: Mapping[str, float]) -> None:
        """Append one row; every row must carry the same signal set."""
        if self._length == 0 and not self._columns:
            for name in sample:
                self._columns[name] = []
        if set(sample) != set(self._columns):
            missing = set(self._columns) - set(sample)
            extra = set(sample) - set(self._columns)
            raise ValueError(
                f"row schema mismatch: missing={sorted(missing)}, "
                f"extra={sorted(extra)}")
        for name, value in sample.items():
            self._columns[name].append(float(value))
        self._length += 1
        self._arrays = None  # invalidate the cached numpy views

    def as_arrays(self) -> dict[str, np.ndarray]:
        """Columns as numpy arrays (cached, read-only, shared)."""
        if self._arrays is None:
            arrays = {}
            for name, values in self._columns.items():
                array = np.asarray(values)
                array.flags.writeable = False
                arrays[name] = array
            self._arrays = arrays
        return dict(self._arrays)

    def column(self, name: str) -> np.ndarray:
        """One column as a numpy array (cached, read-only, shared)."""
        if self._arrays is not None:
            return self._arrays[name]
        return self.as_arrays()[name]

    def last(self, name: str) -> float:
        """Most recent value of a signal."""
        values = self._columns[name]
        if not values:
            raise IndexError(f"no samples recorded for {name!r}")
        return values[-1]

    def window(self, start: int, stop: int) -> dict[str, np.ndarray]:
        """Slice every column to ``[start:stop]``."""
        return {name: array[start:stop]
                for name, array in self.as_arrays().items()}

    #: Non-finite cell spellings, matching
    #: :func:`repro.core.persistence.encode_float` (defined locally —
    #: ``sim`` must not import ``core``).  ``%.6g`` used to render these
    #: as ``inf``/``nan``, which no reader decoded.
    _NONFINITE_TO_STR = {float("inf"): "Infinity",
                         float("-inf"): "-Infinity"}
    _STR_TO_NONFINITE = {"Infinity": float("inf"),
                         "-Infinity": float("-inf"),
                         "NaN": float("nan")}

    @classmethod
    def _encode_cell(cls, value: float) -> str:
        if value != value:                       # NaN
            return "NaN"
        spelled = cls._NONFINITE_TO_STR.get(value)
        return spelled if spelled is not None else f"{value:.6g}"

    @classmethod
    def _decode_cell(cls, cell: str) -> float:
        return cls._STR_TO_NONFINITE.get(cell) or float(cell)

    def to_csv(self) -> str:
        """Render the whole trace as CSV text (header + one row per tick).

        Finite values keep the compact ``%.6g`` rendering; non-finite
        values (the ``inf`` safety potentials of unobstructed runs, NaNs
        from degenerate kinematics) are spelled ``Infinity`` /
        ``-Infinity`` / ``NaN`` exactly like the JSONL record streams,
        and :meth:`from_csv` decodes them losslessly.
        """
        names = self.columns
        lines = [",".join(names)]
        for i in range(self._length):
            lines.append(",".join(
                self._encode_cell(self._columns[name][i])
                for name in names))
        return "\n".join(lines) + "\n"

    @classmethod
    def from_csv(cls, text: str) -> "Trace":
        """Rebuild a trace from :meth:`to_csv` output."""
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            return cls()
        names = lines[0].split(",")
        columns: dict[str, list[float]] = {name: [] for name in names}
        for line in lines[1:]:
            cells = line.split(",")
            if len(cells) != len(names):
                raise ValueError(f"CSV row has {len(cells)} cells, "
                                 f"expected {len(names)}")
            for name, cell in zip(names, cells):
                columns[name].append(cls._decode_cell(cell))
        return cls.from_columns(columns)

    def save_csv(self, path) -> None:
        """Write :meth:`to_csv` output to a file."""
        from pathlib import Path
        Path(path).write_text(self.to_csv())

    @classmethod
    def load_csv(cls, path) -> "Trace":
        """Read a trace back from :meth:`save_csv` output."""
        from pathlib import Path
        return cls.from_csv(Path(path).read_text())
