"""Columnar recording of simulation signals, in RAM or out of core.

Traces feed two consumers: Bayesian-network training (golden runs) and
experiment reporting (time series for the case-study figures).  Two
representations share one read API:

* :class:`Trace` — the append-only in-RAM recorder the simulator writes
  into (and the reference representation everywhere).  Appends go to
  plain Python lists (cheap per tick); the numpy views are materialized
  lazily and cached, so golden-trace consumers that read the same
  columns thousands of times (scene mining, BN training) stop paying a
  list->array conversion per access.  Cached arrays are marked
  read-only because they are shared between callers.
* :class:`StoredTrace` — a read-only handle onto a trace spooled to
  disk by :class:`TraceStore`.  Columns are served as views of one
  memory-mapped ``.npy`` matrix, so a campaign holding every golden
  trace keeps O(file handles) resident, not O(total samples), and a
  handle pickles as just its path (workers spool, the driver maps).

``float64`` round-trips bit-for-bit through the ``.npy`` spool, so any
consumer of the columnar read API (``as_arrays``/``column``/``window``/
``last``) computes identical results from either representation.
"""

from __future__ import annotations

import json
import os
from collections.abc import Mapping
from pathlib import Path

import numpy as np


class Trace:
    """An append-only, column-aligned record of named float signals."""

    def __init__(self):
        self._columns: dict[str, list[float]] = {}
        self._length = 0
        self._arrays: dict[str, np.ndarray] | None = None

    def __len__(self) -> int:
        return self._length

    @property
    def columns(self) -> list[str]:
        """Recorded signal names (insertion order)."""
        return list(self._columns)

    @classmethod
    def from_columns(cls, columns: Mapping[str, list[float]]) -> "Trace":
        """Rebuild a trace from columnar data (persistence round-trip)."""
        lengths = {len(values) for values in columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"ragged columns: lengths {sorted(lengths)}")
        trace = cls()
        trace._columns = {name: [float(v) for v in values]
                          for name, values in columns.items()}
        trace._length = lengths.pop() if lengths else 0
        return trace

    def record(self, sample: Mapping[str, float]) -> None:
        """Append one row; every row must carry the same signal set."""
        if self._length == 0 and not self._columns:
            for name in sample:
                self._columns[name] = []
        if set(sample) != set(self._columns):
            missing = set(self._columns) - set(sample)
            extra = set(sample) - set(self._columns)
            raise ValueError(
                f"row schema mismatch: missing={sorted(missing)}, "
                f"extra={sorted(extra)}")
        for name, value in sample.items():
            self._columns[name].append(float(value))
        self._length += 1
        self._arrays = None  # invalidate the cached numpy views

    def as_arrays(self) -> dict[str, np.ndarray]:
        """Columns as numpy arrays (cached, read-only, shared)."""
        if self._arrays is None:
            arrays = {}
            for name, values in self._columns.items():
                array = np.asarray(values)
                array.flags.writeable = False
                arrays[name] = array
            self._arrays = arrays
        return dict(self._arrays)

    def column(self, name: str) -> np.ndarray:
        """One column as a numpy array (cached, read-only, shared)."""
        if self._arrays is not None:
            return self._arrays[name]
        return self.as_arrays()[name]

    def last(self, name: str) -> float:
        """Most recent value of a signal."""
        values = self._columns[name]
        if not values:
            raise IndexError(f"no samples recorded for {name!r}")
        return values[-1]

    def window(self, start: int, stop: int) -> dict[str, np.ndarray]:
        """Slice every column to ``[start:stop]``."""
        return {name: array[start:stop]
                for name, array in self.as_arrays().items()}

    #: Non-finite cell spellings, matching
    #: :func:`repro.core.persistence.encode_float` (defined locally —
    #: ``sim`` must not import ``core``).  ``%.6g`` used to render these
    #: as ``inf``/``nan``, which no reader decoded.
    _NONFINITE_TO_STR = {float("inf"): "Infinity",
                         float("-inf"): "-Infinity"}
    _STR_TO_NONFINITE = {"Infinity": float("inf"),
                         "-Infinity": float("-inf"),
                         "NaN": float("nan")}

    @classmethod
    def _encode_cell(cls, value: float) -> str:
        if value != value:                       # NaN
            return "NaN"
        spelled = cls._NONFINITE_TO_STR.get(value)
        return spelled if spelled is not None else f"{value:.6g}"

    @classmethod
    def _decode_cell(cls, cell: str) -> float:
        return cls._STR_TO_NONFINITE.get(cell) or float(cell)

    def to_csv(self) -> str:
        """Render the whole trace as CSV text (header + one row per tick).

        Finite values keep the compact ``%.6g`` rendering; non-finite
        values (the ``inf`` safety potentials of unobstructed runs, NaNs
        from degenerate kinematics) are spelled ``Infinity`` /
        ``-Infinity`` / ``NaN`` exactly like the JSONL record streams,
        and :meth:`from_csv` decodes them losslessly.
        """
        names = self.columns
        lines = [",".join(names)]
        for i in range(self._length):
            lines.append(",".join(
                self._encode_cell(self._columns[name][i])
                for name in names))
        return "\n".join(lines) + "\n"

    @classmethod
    def from_csv(cls, text: str) -> "Trace":
        """Rebuild a trace from :meth:`to_csv` output."""
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            return cls()
        names = lines[0].split(",")
        if len(set(names)) != len(names):
            # A duplicate header would silently collapse into one dict
            # key and mis-align every subsequent row.
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"CSV header repeats columns {duplicates}")
        columns: dict[str, list[float]] = {name: [] for name in names}
        for line in lines[1:]:
            cells = line.split(",")
            if len(cells) != len(names):
                raise ValueError(f"CSV row has {len(cells)} cells, "
                                 f"expected {len(names)}")
            for name, cell in zip(names, cells):
                columns[name].append(cls._decode_cell(cell))
        return cls.from_columns(columns)

    def save_csv(self, path) -> None:
        """Write :meth:`to_csv` output to a file."""
        from pathlib import Path
        Path(path).write_text(self.to_csv())

    @classmethod
    def load_csv(cls, path) -> "Trace":
        """Read a trace back from :meth:`save_csv` output."""
        return cls.from_csv(Path(path).read_text())


class StoredTrace:
    """Read-only view of a trace spooled to disk by :class:`TraceStore`.

    Offers the columnar read API of :class:`Trace` (``as_arrays``,
    ``column``, ``window``, ``last``, ``columns``, ``len``) over one
    memory-mapped ``.npy`` matrix, opened lazily on first access — a
    handle is just a path until someone reads through it, and it
    pickles as just the path, which is how golden traces cross the
    process pool without shipping their samples.
    """

    def __init__(self, data_path: str | Path):
        self._data_path = Path(data_path)
        self._names: list[str] | None = None
        self._rows: int | None = None
        self._data: np.ndarray | None = None
        #: Opaque object pinned for this handle's lifetime — a
        #: temporary-directory spool stays on disk while any handle
        #: into it is alive, even after its owning store/campaign is
        #: garbage-collected.  Not pickled (the path is the payload).
        self._keepalive = None

    # -- lazy open ---------------------------------------------------------

    @property
    def path(self) -> Path:
        """The backing ``.npy`` matrix file."""
        return self._data_path

    def _manifest_path(self) -> Path:
        return self._data_path.with_suffix(".json")

    def _ensure(self) -> None:
        if self._names is not None:
            return
        manifest = json.loads(self._manifest_path().read_text())
        names = list(manifest["columns"])
        rows = int(manifest["rows"])
        if rows == 0:
            # numpy cannot mmap a zero-byte payload; an empty trace
            # needs no file access at all.
            data = np.zeros((0, len(names)))
        else:
            data = np.load(self._data_path, mmap_mode="r")
            if data.shape != (rows, len(names)):
                raise ValueError(
                    f"stored trace {self._data_path} is "
                    f"{data.shape}, manifest says ({rows}, {len(names)})")
        data.flags.writeable = False
        self._names, self._rows, self._data = names, rows, data

    def __getstate__(self) -> dict:
        return {"data_path": str(self._data_path)}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["data_path"])

    # -- the Trace read API ------------------------------------------------

    def __len__(self) -> int:
        self._ensure()
        return self._rows

    @property
    def columns(self) -> list[str]:
        """Recorded signal names (insertion order)."""
        self._ensure()
        return list(self._names)

    def as_arrays(self) -> dict[str, np.ndarray]:
        """Columns as read-only views of the memory-mapped matrix."""
        self._ensure()
        return {name: self._data[:, j]
                for j, name in enumerate(self._names)}

    def column(self, name: str) -> np.ndarray:
        """One column as a read-only view of the mapped matrix."""
        self._ensure()
        return self._data[:, self._names.index(name)]

    def last(self, name: str) -> float:
        """Most recent value of a signal."""
        self._ensure()
        if not self._rows:
            raise IndexError(f"no samples recorded for {name!r}")
        return float(self._data[-1, self._names.index(name)])

    def window(self, start: int, stop: int) -> dict[str, np.ndarray]:
        """Slice every column to ``[start:stop]``."""
        return {name: array[start:stop]
                for name, array in self.as_arrays().items()}

    def to_trace(self) -> Trace:
        """Materialize an in-RAM :class:`Trace` copy (same values)."""
        return Trace.from_columns(self.as_arrays())

    def __repr__(self) -> str:
        return f"StoredTrace({str(self._data_path)!r})"


class TraceStore:
    """Spools completed traces to memory-mappable columnar files.

    One file set per trace name under ``root``: ``<name>.npy`` (the
    float64 sample matrix, rows x columns) plus ``<name>.json`` (column
    names and row count).  Writes go through the shared atomic
    write-then-rename helpers, data before manifest, so the manifest's
    existence commits a complete file set — concurrent writers of the
    same trace (shards sharing a ``cache_dir``) produce identical
    content and readers never observe a torn spool.
    """

    _DATA_SUFFIX = ".npy"
    _MANIFEST_SUFFIX = ".json"

    def __init__(self, root: str | Path, keepalive=None):
        self.root = Path(root)
        #: Propagated onto every handle this store creates (see
        #: :attr:`StoredTrace._keepalive`); owners spooling into a
        #: temporary directory pass its guard object here.
        self._keepalive = keepalive

    def _data_path(self, name: str) -> Path:
        if os.sep in name or name in (".", ".."):
            raise ValueError(f"trace name {name!r} is not a file name")
        return self.root / f"{name}{self._DATA_SUFFIX}"

    def put(self, name: str, trace) -> StoredTrace:
        """Spool ``trace`` (any columnar-read trace) and return a handle.

        Re-spooling an existing name overwrites it (identical content
        for identical traces, and a self-heal for corrupt spools).
        """
        # ``core`` is a layer above ``sim``, so the import is deferred
        # to call time; ``core.ioutil`` itself is dependency-free, so
        # this cannot cycle.
        from ..core.ioutil import write_text_atomic
        arrays = trace.as_arrays()
        names = list(arrays)
        rows = len(trace)
        matrix = np.empty((rows, len(names)))
        for j, column in enumerate(arrays.values()):
            matrix[:, j] = column
        self.root.mkdir(parents=True, exist_ok=True)
        data_path = self._data_path(name)
        # np.save straight into the tmp file (same write-then-rename
        # discipline as core/ioutil): buffering the ``.npy`` payload
        # in RAM first would hold a second full copy of the trace —
        # the very per-trace peak this spool exists to bound.
        tmp = data_path.with_name(f"{data_path.name}.tmp-{os.getpid()}")
        with open(tmp, "wb") as handle:
            np.save(handle, matrix)
        os.replace(tmp, data_path)
        write_text_atomic(data_path.with_suffix(self._MANIFEST_SUFFIX),
                          json.dumps({"columns": names, "rows": rows}))
        return self._handle(data_path)

    def get(self, name: str) -> StoredTrace | None:
        """A handle onto a previously spooled trace, or ``None``."""
        if not self.has(name):
            return None
        return self._handle(self._data_path(name))

    def _handle(self, data_path: Path) -> StoredTrace:
        handle = StoredTrace(data_path)
        handle._keepalive = self._keepalive
        return handle

    def has(self, name: str) -> bool:
        """Was a complete file set committed for ``name``?"""
        data_path = self._data_path(name)
        return (data_path.with_suffix(self._MANIFEST_SUFFIX).exists()
                and data_path.exists())

    def __contains__(self, name: str) -> bool:
        return self.has(name)
