"""Structure-of-arrays batch simulation: N worlds per fused numpy kernel.

:class:`BatchWorldState` holds N lanes of the *same scenario build* —
per-lane ego states as an ``(N, 5)`` float64 matrix, per-lane NPC
positions as ``(N, M)`` matrices, and vectorized NPC script state — and
advances all of them with one set of elementwise ufunc calls per tick
(:func:`~repro.sim.kinematics.batched_rk4_step` for the egos, masked
array updates for the scripts).  Ground-truth safety signals come from
the batched variants in :mod:`repro.sim.collision`.

The contract is the repo-wide one: every lane is bit-for-bit the scalar
:class:`~repro.sim.world.World` stepped alone.  The engine achieves that
by construction —

* arithmetic mirrors the scalar operation order exactly (the kernels
  document the clamp/select mapping);
* anything that is *not* elementwise float64 arithmetic stays scalar:
  the actuation-to-controls mapping (quadratic drag uses Python ``**``)
  runs per lane through :meth:`~repro.sim.vehicle.Vehicle.controls_for`,
  and exact collision confirmation runs the lane's own
  ``World.in_collision`` behind a conservative vectorized prescreen;
* each lane keeps its authoritative scalar ``World`` object, which the
  engine scatters state back into every step — so sensors, pipelines,
  and snapshots see exactly what they would have seen.

Lanes can join (``attach``) and retire (``deactivate``) independently;
retired lanes are zeroed so the fused kernels never see stale state, and
a retired lane never perturbs survivors (lanes only interact through
their own columns).  The ``(N, 5)``/``(N, M)`` layout is deliberately
the flat dense form a GPU backend (``arch/gpu.py``/``arch/kernels.py``)
can consume unchanged.
"""

from __future__ import annotations

import numpy as np

from .collision import (Obstacle, batched_ego_collides,
                        batched_lateral_clearance,
                        batched_lateral_safe_distance,
                        batched_longitudinal_safe_distance,
                        batched_nearest_lead, batched_off_road, obb_overlap,
                        SENSOR_RANGE)
from .kinematics import BatchKernelWorkspace, VehicleState, batched_rk4_step
from .npc import LaneChangeCommand
from .world import World


def _merge_command_lists(lists) -> list[LaneChangeCommand]:
    """Order-preserving union of lane-command lists.

    Every per-lane list is a subsequence of the scenario's original
    script (completed changes are removed), so a greedy positional merge
    reconstructs a consistent master ordering.
    """
    master: list[LaneChangeCommand] = []
    for commands in lists:
        position = 0
        for command in commands:
            try:
                index = master.index(command, position)
            except ValueError:
                master.insert(position, command)
                index = position
            position = index + 1
    return master


def _match_subsequence(commands, master) -> list[bool]:
    """Remaining-mask of ``commands`` against the master script."""
    mask = [False] * len(master)
    position = 0
    for command in commands:
        index = master.index(command, position)
        mask[index] = True
        position = index + 1
    return mask


class BatchSnapshot:
    """Opaque capture of a :class:`BatchWorldState` (all lanes)."""

    def __init__(self, worlds, active):
        self.worlds = worlds
        self.active = active


class BatchWorldState:
    """N same-scenario worlds advanced in lockstep by fused kernels."""

    def __init__(self, worlds: list[World], reference: World | None = None):
        if not worlds:
            raise ValueError("batch needs at least one lane")
        self.worlds: list[World] = list(worlds)
        n = len(self.worlds)
        template = reference if reference is not None else self.worlds[0]
        self.road = template.road
        self.ego_params = template.ego.params
        npcs = template.npcs
        m = len(npcs)
        self._npc_ids = [npc.npc_id for npc in npcs]
        self._npc_lengths = np.array([npc.length for npc in npcs])
        self._npc_widths = np.array([npc.width for npc in npcs])
        self._npc_limits = [npc.acceleration_limit for npc in npcs]
        self._speed_commands = [list(npc.speed_commands) for npc in npcs]
        if reference is not None:
            self._lane_master = [list(npc.lane_commands) for npc in npcs]
        else:
            self._lane_master = [
                _merge_command_lists([w.npcs[j].lane_commands
                                      for w in self.worlds])
                for j in range(m)]

        self.ego = np.zeros((n, 5))
        self.time = np.zeros(n)
        self.acceleration = np.zeros(n)
        self.steering_rate = np.zeros(n)
        self.npc_x = np.zeros((n, m))
        self.npc_y = np.zeros((n, m))
        self.npc_v = np.zeros((n, m))
        self.lane_start = np.full((n, m), np.nan)
        self.lane_remaining = [
            np.zeros((n, len(self._lane_master[j])), dtype=bool)
            for j in range(m)]
        self.active = np.zeros(n, dtype=bool)

        self._workspace = BatchKernelWorkspace(n)
        self._ego_out = np.empty((n, 5))
        self._target = np.empty(n)
        self._mask = np.empty(n, dtype=bool)
        for lane, world in enumerate(self.worlds):
            self.attach(lane, world)

    # -- lane membership ----------------------------------------------------

    @property
    def n_lanes(self) -> int:
        return len(self.worlds)

    @property
    def n_obstacles(self) -> int:
        return len(self._npc_ids)

    def attach(self, lane: int, world: World) -> None:
        """Load ``world`` (same scenario build) into ``lane``."""
        if len(world.npcs) != self.n_obstacles:
            raise ValueError(
                f"lane world has {len(world.npcs)} NPCs, batch has "
                f"{self.n_obstacles}; batches hold one scenario build")
        self.worlds[lane] = world
        state = world.ego.state
        self.ego[lane, 0] = state.x
        self.ego[lane, 1] = state.y
        self.ego[lane, 2] = state.v
        self.ego[lane, 3] = state.theta
        self.ego[lane, 4] = state.phi
        self.time[lane] = world.time
        self.acceleration[lane] = 0.0
        self.steering_rate[lane] = 0.0
        for j, npc in enumerate(world.npcs):
            if npc.npc_id != self._npc_ids[j]:
                raise ValueError("lane world NPC roster does not match "
                                 "the batch scenario build")
            self.npc_x[lane, j] = npc.x
            self.npc_y[lane, j] = npc.y
            self.npc_v[lane, j] = npc.v
            start = npc._lane_start_y
            self.lane_start[lane, j] = (np.nan if start is None
                                        else float(start))
            self.lane_remaining[j][lane, :] = _match_subsequence(
                npc.lane_commands, self._lane_master[j])
        self.active[lane] = True

    def deactivate(self, lane: int) -> None:
        """Retire a lane: zero its state so kernels never see residue."""
        self.active[lane] = False
        self.ego[lane, :] = 0.0
        self.time[lane] = 0.0
        self.acceleration[lane] = 0.0
        self.steering_rate[lane] = 0.0
        self.npc_x[lane, :] = 0.0
        self.npc_y[lane, :] = 0.0
        self.npc_v[lane, :] = 0.0
        self.lane_start[lane, :] = np.nan
        for remaining in self.lane_remaining:
            remaining[lane, :] = False

    def set_controls(self, lane: int, throttle: float, brake: float,
                     steering: float, dt: float) -> None:
        """Map a lane's actuation command to kernel inputs (scalar path:
        drag and slew depend on the current state)."""
        accel, rate = self.worlds[lane].ego.controls_for(
            throttle, brake, steering, dt)
        self.acceleration[lane] = accel
        self.steering_rate[lane] = rate

    def apply_controls(self, rows: np.ndarray, throttle: np.ndarray,
                       brake: np.ndarray, steering: np.ndarray,
                       dt: float) -> None:
        """Vectorized :meth:`set_controls` for a set of lanes.

        Mirrors ``Vehicle.controls_for`` expression for expression
        (pedal clips, quadratic drag from the *current* batch speed,
        steering-rate slew from the current batch wheel angle), so a
        fused lane's kernel inputs are bitwise the scalar path's.
        """
        params = self.ego_params
        t = np.clip(throttle, 0.0, 1.0)
        b = np.clip(brake, 0.0, 1.0)
        v = self.ego[rows, 2]
        accel = (t * params.max_acceleration
                 - b * params.max_deceleration
                 - params.drag * (v * v))
        target = np.clip(steering, -params.max_steering_angle,
                         params.max_steering_angle)
        error = target - self.ego[rows, 4]
        if dt > 0:
            rate = np.clip(error / dt, -params.max_steering_rate,
                           params.max_steering_rate)
        else:
            rate = np.zeros_like(error)
        self.acceleration[rows] = accel
        self.steering_rate[rows] = rate

    # -- stepping -----------------------------------------------------------

    def _step_npcs(self, dt: float) -> None:
        time = self.time
        for j in range(self.n_obstacles):
            x = self.npc_x[:, j]
            y = self.npc_y[:, j]
            v = self.npc_v[:, j]
            target = self._target
            np.copyto(target, v)
            for command in self._speed_commands[j]:
                np.greater_equal(time, command.t, out=self._mask)
                np.copyto(target, command.target, where=self._mask)
            limit = self._npc_limits[j] * dt
            delta_v = np.clip(target - v, -limit, limit)
            # max(0.0, v + delta_v): select mirrors the scalar operand
            # order (z if z > 0.0 else 0.0).
            z = v + delta_v
            np.copyto(v, np.where(z > 0.0, z, 0.0))
            x += v * dt

            master = self._lane_master[j]
            if not master:
                continue
            remaining = self.lane_remaining[j]
            active_cmd = np.full(self.n_lanes, -1, dtype=np.intp)
            for k, command in enumerate(master):
                sel = remaining[:, k] & (time >= command.t)
                active_cmd[sel] = k
            start_col = self.lane_start[:, j]
            needs_start = (active_cmd >= 0) & np.isnan(start_col)
            start_col[needs_start] = y[needs_start]
            for k, command in enumerate(master):
                group = active_cmd == k
                if not group.any():
                    continue
                progress = np.clip(
                    (time[group] + dt - command.t) / command.duration,
                    0.0, 1.0)
                blend = 0.5 * (1.0 - np.cos(np.pi * progress))
                start = start_col[group]
                y[group] = start + (command.target_y - start) * blend
                finished = progress >= 1.0
                if finished.any():
                    rows = np.nonzero(group)[0][finished]
                    start_col[rows] = np.nan
                    remaining[rows, k] = False

    def step(self, dt: float) -> None:
        """Advance every lane ``dt`` seconds (scripts, then egos).

        Call :meth:`set_controls` for each live lane first; then
        :meth:`scatter` to push the results back into the lane worlds.
        Mirrors ``World.step``: NPC scripts read the pre-step clock, the
        ego integrates the commanded controls, and the clock advances
        last.
        """
        self._step_npcs(dt)
        params = self.ego_params
        batched_rk4_step(self.ego, self.acceleration, self.steering_rate,
                         params.wheelbase, dt, out=self._ego_out,
                         workspace=self._workspace)
        self.ego, self._ego_out = self._ego_out, self.ego
        speed = self.ego[:, 2]
        mask = self._mask
        np.greater(speed, params.max_speed, out=mask)
        np.copyto(speed, params.max_speed, where=mask)
        np.clip(self.ego[:, 4], -params.max_steering_angle,
                params.max_steering_angle, out=self.ego[:, 4])
        self.time += dt

    def scatter(self, lanes=None) -> None:
        """Write batch state back into the per-lane ``World`` objects.

        ``float()`` conversions are bit-preserving; the obstacle cache
        of each touched world is invalidated.
        """
        if lanes is None:
            lanes = np.nonzero(self.active)[0]
        for lane in lanes:
            lane = int(lane)
            world = self.worlds[lane]
            world.ego.state = VehicleState(
                x=float(self.ego[lane, 0]), y=float(self.ego[lane, 1]),
                v=float(self.ego[lane, 2]), theta=float(self.ego[lane, 3]),
                phi=float(self.ego[lane, 4]))
            world.time = float(self.time[lane])
            for j, npc in enumerate(world.npcs):
                npc.x = float(self.npc_x[lane, j])
                npc.y = float(self.npc_y[lane, j])
                npc.v = float(self.npc_v[lane, j])
                start = self.lane_start[lane, j]
                npc._lane_start_y = (None if np.isnan(start)
                                     else float(start))
                master = self._lane_master[j]
                remaining = self.lane_remaining[j][lane]
                if len(npc.lane_commands) != int(remaining.sum()):
                    npc.lane_commands = [
                        command for k, command in enumerate(master)
                        if remaining[k]]
            world.invalidate_obstacles()

    # -- batched ground-truth signals ---------------------------------------

    def safety_inputs(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-lane ``(gap, lead_speed, lateral_free)`` for the safety
        potential; ``lead_speed`` is NaN where the corridor is clear (the
        scalar path's ``None``), with ``gap`` pinned at SENSOR_RANGE."""
        params = self.ego_params
        ego_x = self.ego[:, 0]
        ego_y = self.ego[:, 1]
        lead_index, has_lead = batched_nearest_lead(
            ego_x, ego_y, params.width, self.npc_x, self.npc_y,
            self._npc_widths)
        n = self.n_lanes
        gap = np.full(n, SENSOR_RANGE)
        lead_speed = np.full(n, np.nan)
        if has_lead.any():
            rows = np.nonzero(has_lead)[0]
            cols = lead_index[rows]
            gap[rows] = ((self.npc_x[rows, cols] - ego_x[rows])
                         - (params.length
                            + self._npc_lengths[cols]) / 2.0)
            lead_speed[rows] = self.npc_v[rows, cols]
        lateral_free = batched_lateral_clearance(
            ego_x, ego_y, params.length, params.width, self.npc_x,
            self.npc_y, self._npc_lengths, self._npc_widths, self.road)
        return gap, lead_speed, lateral_free

    def longitudinal_d_safe(self) -> np.ndarray:
        """Per-lane ``World.longitudinal_d_safe``."""
        params = self.ego_params
        return batched_longitudinal_safe_distance(
            self.ego[:, 0], self.ego[:, 1], params.length, params.width,
            self.npc_x, self.npc_y, self._npc_lengths, self._npc_widths)

    def lateral_d_safe(self) -> np.ndarray:
        """Per-lane ``World.lateral_d_safe``."""
        params = self.ego_params
        return batched_lateral_safe_distance(
            self.ego[:, 0], self.ego[:, 1], params.length, params.width,
            self.npc_x, self.npc_y, self._npc_lengths, self._npc_widths,
            self.road)

    def collided_mask(self) -> np.ndarray:
        """Per-lane ``World.in_collision``: vectorized prescreen, exact
        per-lane SAT confirm.

        The confirm runs the same footprint SAT as ``World.in_collision``
        directly from the batch arrays (``float()`` reads are what a
        scatter would have written), so callers that keep lanes
        array-resident — the batched ADS path — need no prior
        :meth:`scatter` and no world sync at all.
        """
        params = self.ego_params

        def confirm(lane: int) -> bool:
            # Retired slots are zeroed (ego and NPCs collapse onto the
            # origin) and would otherwise confirm as phantom collisions
            # every remaining tick of the batch.
            if not self.active[lane]:
                return False
            ego_fp = Obstacle(
                obstacle_id=-1,
                x=float(self.ego[lane, 0]), y=float(self.ego[lane, 1]),
                theta=float(self.ego[lane, 3]), length=params.length,
                width=params.width).footprint()
            return any(
                obb_overlap(ego_fp, Obstacle(
                    obstacle_id=j,
                    x=float(self.npc_x[lane, j]),
                    y=float(self.npc_y[lane, j]),
                    length=float(self._npc_lengths[j]),
                    width=float(self._npc_widths[j])).footprint())
                for j in range(self.n_obstacles))

        return batched_ego_collides(
            self.ego[:, 0], self.ego[:, 1], params.length, params.width,
            self.npc_x, self.npc_y, self._npc_lengths, self._npc_widths,
            confirm, ego_theta=self.ego[:, 3])

    def off_road_mask(self) -> np.ndarray:
        """Per-lane ``World.off_road``."""
        return batched_off_road(self.ego[:, 1], self.ego_params.width,
                                self.road)

    # -- checkpoint support --------------------------------------------------

    def snapshot(self) -> BatchSnapshot:
        """Capture every lane (delegates to each world's snapshot)."""
        self.scatter()
        return BatchSnapshot(
            worlds=tuple(world.snapshot() for world in self.worlds),
            active=self.active.copy())

    def restore(self, snapshot: BatchSnapshot) -> None:
        """Rewind all lanes to a snapshot of this batch."""
        for lane, world_snapshot in enumerate(snapshot.worlds):
            self.worlds[lane].restore(world_snapshot)
            self.attach(lane, self.worlds[lane])
        np.copyto(self.active, snapshot.active)
        for lane in np.nonzero(~self.active)[0]:
            self.deactivate(int(lane))
