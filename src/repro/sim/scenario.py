"""Scenario library: reproducible driving situations.

Each scenario builds a fresh :class:`~repro.sim.world.World` with scripted
traffic.  The library covers the situations the paper's examples and
campaigns exercise: free cruise, car following, the Example-1 cut-in, the
Example-2 Tesla-like two-lead reveal, a hard-braking lead, stop-and-go
traffic, and a stalled vehicle.

Builders are :func:`functools.partial` bindings of module-level build
functions rather than closures, so ``Scenario`` objects pickle: process
pools can receive them under any start method (``spawn`` included), and
sharded golden-run collection can ship them to workers instead of relying
on ``fork`` inheritance.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable

from .npc import LaneChangeCommand, NPCVehicle, SpeedCommand
from .world import World


@dataclass(frozen=True)
class Scenario:
    """A named, reproducible driving situation."""

    name: str
    build: Callable[[], World]
    duration: float = 30.0  # seconds of simulated time

    def make_world(self) -> World:
        """Fresh world for one run."""
        return self.build()


def _build_empty_road(ego_speed: float) -> World:
    return World.on_highway(ego_speed=ego_speed)


def empty_road(ego_speed: float = 30.0) -> Scenario:
    """Free cruise with no traffic."""
    return Scenario("empty_road", partial(_build_empty_road, ego_speed),
                    duration=30.0)


def _build_highway_cruise(ego_speed: float, lead_gap: float,
                          lead_speed: float) -> World:
    world = World.on_highway(ego_speed=ego_speed)
    world.add_npc(NPCVehicle(npc_id=1, x=lead_gap,
                             y=world.road.lane_center(1), v=lead_speed))
    return world


def highway_cruise(ego_speed: float = 30.0, lead_gap: float = 60.0,
                   lead_speed: float | None = None,
                   name: str = "highway_cruise") -> Scenario:
    """Steady car-following behind one lead vehicle."""
    lead_speed = ego_speed if lead_speed is None else lead_speed
    return Scenario(name, partial(_build_highway_cruise, ego_speed,
                                  lead_gap, lead_speed), duration=40.0)


def _build_lead_vehicle_cutin(ego_speed: float, cutin_time: float,
                              cutin_gap: float, cutin_speed: float) -> World:
    world = World.on_highway(ego_speed=ego_speed)
    ego_lane_y = world.road.lane_center(1)
    npc = NPCVehicle(npc_id=1, x=cutin_gap,
                     y=world.road.lane_center(2), v=cutin_speed)
    npc.lane_commands.append(
        LaneChangeCommand(t=cutin_time, target_y=ego_lane_y, duration=2.5))
    world.add_npc(npc)
    return world


def lead_vehicle_cutin(ego_speed: float = 31.0, cutin_time: float = 4.0,
                       cutin_gap: float = 8.0,
                       cutin_speed: float = 30.0) -> Scenario:
    """Paper Example 1: a slightly slower TV cuts into the ego lane.

    The geometry is tuned so the fault-free ADS stays (narrowly) safe:
    the cut-in collapses the safety potential to a few metres, and a
    throttle fault injected at that instant tips it negative.
    """
    return Scenario("lead_vehicle_cutin",
                    partial(_build_lead_vehicle_cutin, ego_speed, cutin_time,
                            cutin_gap, cutin_speed), duration=25.0)


def _build_two_lead_reveal(ego_speed: float, first_gap: float,
                           second_gap: float, reveal_time: float,
                           first_speed: float, second_speed: float) -> World:
    world = World.on_highway(ego_speed=ego_speed)
    ego_lane_y = world.road.lane_center(1)
    tv1 = NPCVehicle(npc_id=1, x=first_gap, y=ego_lane_y, v=first_speed)
    tv1.lane_commands.append(
        LaneChangeCommand(t=reveal_time, target_y=world.road.lane_center(2),
                          duration=2.0))
    tv1.speed_commands.append(SpeedCommand(t=reveal_time, target=38.0))
    tv2 = NPCVehicle(npc_id=2, x=second_gap, y=ego_lane_y, v=second_speed)
    world.add_npc(tv1)
    world.add_npc(tv2)
    return world


def two_lead_reveal(ego_speed: float = 33.5, first_gap: float = 45.0,
                    second_gap: float = 210.0, reveal_time: float = 3.0,
                    first_speed: float = 31.0,
                    second_speed: float = 0.0) -> Scenario:
    """Paper Example 2 (Tesla crash shape): TV1 swerves, revealing TV2.

    The ego follows TV1, which occludes a stopped TV2 far ahead in the
    same lane.  TV1 changes lanes at ``reveal_time`` and speeds away; the
    ego suddenly faces the stopped car with just enough distance for a
    clean maximum-braking stop.  A brake-suppression or world-model fault
    during that braking reproduces the fatal crash.
    """
    return Scenario("two_lead_reveal",
                    partial(_build_two_lead_reveal, ego_speed, first_gap,
                            second_gap, reveal_time, first_speed,
                            second_speed), duration=25.0)


def _build_braking_lead(ego_speed: float, lead_gap: float, brake_time: float,
                        final_speed: float) -> World:
    world = World.on_highway(ego_speed=ego_speed)
    npc = NPCVehicle(npc_id=1, x=lead_gap,
                     y=world.road.lane_center(1), v=ego_speed)
    npc.speed_commands.append(SpeedCommand(t=brake_time, target=final_speed))
    npc.acceleration_limit = 6.0
    world.add_npc(npc)
    return world


def braking_lead(ego_speed: float = 30.0, lead_gap: float = 55.0,
                 brake_time: float = 5.0,
                 final_speed: float = 8.0) -> Scenario:
    """A lead vehicle brakes hard mid-scenario."""
    return Scenario("braking_lead",
                    partial(_build_braking_lead, ego_speed, lead_gap,
                            brake_time, final_speed), duration=30.0)


def _build_stop_and_go(ego_speed: float, lead_gap: float) -> World:
    world = World.on_highway(ego_speed=ego_speed)
    npc = NPCVehicle(npc_id=1, x=lead_gap,
                     y=world.road.lane_center(1), v=ego_speed)
    for i, target in enumerate([8.0, 20.0, 5.0, 18.0, 10.0]):
        npc.speed_commands.append(SpeedCommand(t=4.0 + 6.0 * i,
                                               target=target))
    world.add_npc(npc)
    return world


def stop_and_go(ego_speed: float = 22.0, lead_gap: float = 35.0) -> Scenario:
    """Oscillating congested traffic ahead of the ego."""
    return Scenario("stop_and_go",
                    partial(_build_stop_and_go, ego_speed, lead_gap),
                    duration=40.0)


def _build_stalled_vehicle(ego_speed: float, gap: float) -> World:
    world = World.on_highway(ego_speed=ego_speed)
    world.add_npc(NPCVehicle(npc_id=1, x=gap,
                             y=world.road.lane_center(1), v=0.0))
    return world


def stalled_vehicle(ego_speed: float = 30.0, gap: float = 160.0) -> Scenario:
    """A stopped vehicle far ahead in the ego lane."""
    return Scenario("stalled_vehicle",
                    partial(_build_stalled_vehicle, ego_speed, gap),
                    duration=30.0)


def _build_adjacent_traffic(ego_speed: float) -> World:
    world = World.on_highway(ego_speed=ego_speed)
    world.add_npc(NPCVehicle(npc_id=1, x=2.0,
                             y=world.road.lane_center(0), v=ego_speed))
    world.add_npc(NPCVehicle(npc_id=2, x=-3.0,
                             y=world.road.lane_center(2), v=ego_speed))
    world.add_npc(NPCVehicle(npc_id=3, x=70.0,
                             y=world.road.lane_center(1), v=ego_speed))
    return world


def adjacent_traffic(ego_speed: float = 30.0) -> Scenario:
    """Vehicles in both adjacent lanes; a steering fault is hazardous."""
    return Scenario("adjacent_traffic",
                    partial(_build_adjacent_traffic, ego_speed),
                    duration=30.0)


def _build_merging_traffic(ego_speed: float, merge_time: float,
                           merge_gap: float, merge_speed: float) -> World:
    world = World.on_highway(ego_speed=ego_speed)
    npc = NPCVehicle(npc_id=1, x=merge_gap,
                     y=world.road.lane_center(0), v=merge_speed)
    npc.lane_commands.append(
        LaneChangeCommand(t=merge_time, target_y=world.road.lane_center(1),
                          duration=3.0))
    world.add_npc(npc)
    return world


def merging_traffic(ego_speed: float = 28.0, merge_time: float = 5.0,
                    merge_gap: float = 30.0,
                    merge_speed: float = 22.0) -> Scenario:
    """A slower vehicle merges from the rightmost lane into the ego lane.

    Unlike :func:`lead_vehicle_cutin`, the merger comes from below at a
    visibly lower speed, so the ADS has more anticipation but a larger
    speed differential to absorb.
    """
    return Scenario("merging_traffic",
                    partial(_build_merging_traffic, ego_speed, merge_time,
                            merge_gap, merge_speed), duration=30.0)


def _build_crossing_pedestrian(ego_speed: float, cross_x: float,
                               cross_time: float) -> World:
    world = World.on_highway(ego_speed=ego_speed)
    pedestrian = NPCVehicle(npc_id=1, x=cross_x, y=-1.0, v=0.0,
                            length=0.6, width=0.6)
    pedestrian.lane_commands.append(
        LaneChangeCommand(t=cross_time, target_y=world.road.width + 1.0,
                          duration=9.0))
    world.add_npc(pedestrian)
    return world


def crossing_pedestrian(ego_speed: float = 20.0, cross_x: float = 120.0,
                        cross_time: float = 2.0) -> Scenario:
    """A pedestrian-sized body crosses the road ahead of the ego.

    Modelled as a small, slow obstacle traversing the lanes laterally;
    exercises the small-object detection and hard-braking paths at urban
    speed.
    """
    return Scenario("crossing_pedestrian",
                    partial(_build_crossing_pedestrian, ego_speed, cross_x,
                            cross_time), duration=25.0)


def default_scenarios() -> list[Scenario]:
    """The scenario set used by campaigns and golden-trace training."""
    return [
        empty_road(),
        highway_cruise(),
        highway_cruise(ego_speed=33.5, lead_gap=80.0, lead_speed=31.0,
                       name="highway_cruise_fast"),
        lead_vehicle_cutin(),
        two_lead_reveal(),
        braking_lead(),
        stop_and_go(),
        stalled_vehicle(),
        adjacent_traffic(),
    ]


def scenario_by_name(name: str) -> Scenario:
    """Look up a default scenario by its name."""
    for scenario in default_scenarios():
        if scenario.name == name:
            return scenario
    raise KeyError(f"unknown scenario {name!r}")
