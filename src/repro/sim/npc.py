"""Scripted traffic: target vehicles with piecewise speed and lane plans.

NPCs (the paper's "target vehicles", TVs) follow deterministic scripts —
speed setpoints reached under an acceleration limit, and smooth lane
changes — which makes every scenario exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .collision import Obstacle
from .fastmath import clip_scalar


@dataclass(frozen=True)
class SpeedCommand:
    """From time ``t`` onward, track ``target`` m/s."""

    t: float
    target: float


@dataclass(frozen=True)
class LaneChangeCommand:
    """Starting at time ``t``, glide to ``target_y`` over ``duration`` s."""

    t: float
    target_y: float
    duration: float = 3.0


@dataclass(frozen=True)
class NPCSnapshot:
    """Frozen mutable state of one NPC (checkpoint-resume support).

    Scripts are part of the snapshot because completed lane changes are
    consumed from ``lane_commands``; static parameters (dimensions,
    acceleration limit, speed script) never change mid-run and stay on
    the live vehicle.
    """

    x: float
    y: float
    v: float
    lane_start_y: float | None
    lane_commands: tuple[LaneChangeCommand, ...]


@dataclass
class NPCVehicle:
    """One scripted target vehicle."""

    npc_id: int
    x: float
    y: float
    v: float
    length: float = 4.8
    width: float = 1.9
    acceleration_limit: float = 4.0
    speed_commands: list[SpeedCommand] = field(default_factory=list)
    lane_commands: list[LaneChangeCommand] = field(default_factory=list)
    _lane_start_y: float | None = None

    def _active_speed_target(self, t: float) -> float:
        target = self.v
        for command in self.speed_commands:
            if t >= command.t:
                target = command.target
        return target

    def _active_lane_change(self, t: float) -> LaneChangeCommand | None:
        active = None
        for command in self.lane_commands:
            if t >= command.t:
                active = command
        return active

    def step(self, t: float, dt: float) -> None:
        """Advance the script by ``dt`` from scenario time ``t``."""
        target = self._active_speed_target(t)
        delta_v = clip_scalar(target - self.v,
                              -self.acceleration_limit * dt,
                              self.acceleration_limit * dt)
        self.v = max(0.0, self.v + delta_v)
        self.x += self.v * dt

        change = self._active_lane_change(t)
        if change is not None:
            if self._lane_start_y is None:
                self._lane_start_y = self.y
            progress = clip_scalar((t + dt - change.t) / change.duration,
                                   0.0, 1.0)
            # Cosine easing: zero lateral velocity at both ends.
            blend = 0.5 * (1.0 - np.cos(np.pi * progress))
            self.y = (self._lane_start_y
                      + (change.target_y - self._lane_start_y) * float(blend))
            if progress >= 1.0:
                self._lane_start_y = None
                self.lane_commands = [c for c in self.lane_commands
                                      if c is not change]

    def snapshot(self) -> NPCSnapshot:
        """Capture the mutable script state (commands are immutable)."""
        return NPCSnapshot(x=self.x, y=self.y, v=self.v,
                           lane_start_y=self._lane_start_y,
                           lane_commands=tuple(self.lane_commands))

    def restore(self, snapshot: NPCSnapshot) -> None:
        """Rewind to a previously captured snapshot."""
        self.x = snapshot.x
        self.y = snapshot.y
        self.v = snapshot.v
        self._lane_start_y = snapshot.lane_start_y
        self.lane_commands = list(snapshot.lane_commands)

    def as_obstacle(self) -> Obstacle:
        """Snapshot for sensors and the safety envelope."""
        return Obstacle(obstacle_id=self.npc_id, x=self.x, y=self.y,
                        v=self.v, theta=0.0, length=self.length,
                        width=self.width)
