"""Road geometry: a straight multi-lane highway along the x-axis.

Lane 0 is the bottom lane; lane centers increase in ``y``.  The paper's
safety model treats the ego lane's boundaries as static objects, so the
road exposes both lane-local and road-edge lateral distances.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Road:
    """A straight highway segment with ``n_lanes`` parallel lanes."""

    n_lanes: int = 3
    lane_width: float = 3.7     # m, U.S. interstate standard
    length: float = 10_000.0    # m

    def __post_init__(self):
        if self.n_lanes < 1:
            raise ValueError("road needs at least one lane")
        if self.lane_width <= 0:
            raise ValueError("lane width must be positive")

    @property
    def width(self) -> float:
        """Total paved width."""
        return self.n_lanes * self.lane_width

    def lane_center(self, lane: int) -> float:
        """y-coordinate of the center of ``lane`` (0-indexed from bottom)."""
        if not 0 <= lane < self.n_lanes:
            raise IndexError(f"lane {lane} out of range")
        return (lane + 0.5) * self.lane_width

    def lane_of(self, y: float) -> int:
        """Index of the lane containing lateral position ``y`` (clipped)."""
        lane = int(y // self.lane_width)
        return min(max(lane, 0), self.n_lanes - 1)

    def lane_bounds(self, lane: int) -> tuple[float, float]:
        """(low, high) y-boundaries of ``lane``."""
        if not 0 <= lane < self.n_lanes:
            raise IndexError(f"lane {lane} out of range")
        return lane * self.lane_width, (lane + 1) * self.lane_width

    def contains(self, y: float) -> bool:
        """True if ``y`` lies on the paved road."""
        return 0.0 <= y <= self.width

    def lateral_margin_in_lane(self, y: float, half_width: float) -> float:
        """Distance from a body edge to the nearest ego-lane boundary.

        Negative once the body crosses the lane line — the paper counts
        that as a lateral safety violation.
        """
        low, high = self.lane_bounds(self.lane_of(y))
        return min(y - half_width - low, high - (y + half_width))

    def lateral_margin_on_road(self, y: float, half_width: float) -> float:
        """Distance from a body edge to the nearest road edge."""
        return min(y - half_width - 0.0, self.width - (y + half_width))
