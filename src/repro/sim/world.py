"""The simulated world: road, ego vehicle, scripted traffic, and stepping."""

from __future__ import annotations

from dataclasses import dataclass, field

from .collision import (Obstacle, ego_collides, lateral_clearance,
                        lateral_clearance_directional, lateral_safe_distance,
                        longitudinal_safe_distance, nearest_lead)
from .kinematics import VehicleState
from .npc import NPCSnapshot, NPCVehicle
from .road import Road
from .vehicle import Vehicle, VehicleParameters


@dataclass(frozen=True)
class WorldSnapshot:
    """Picklable capture of everything a :class:`World` mutates while
    stepping: the clock, the ego kinematic state, and each NPC's script
    progress.  Static structure (road geometry, vehicle parameters, the
    NPC roster) is not captured — ``restore`` targets a world freshly
    built by the same scenario."""

    time: float
    ego: VehicleState
    npcs: tuple[NPCSnapshot, ...] = ()


@dataclass
class World:
    """Everything outside the ADS: geometry, bodies, ground truth."""

    road: Road
    ego: Vehicle
    npcs: list[NPCVehicle] = field(default_factory=list)
    time: float = 0.0
    _obstacle_cache: list[Obstacle] | None = field(
        default=None, repr=False, compare=False)

    @classmethod
    def on_highway(cls, ego_speed: float = 30.0, ego_lane: int = 1,
                   road: Road | None = None,
                   params: VehicleParameters | None = None) -> "World":
        """A fresh world with the ego centered in ``ego_lane``."""
        road = road or Road()
        state = VehicleState(x=0.0, y=road.lane_center(ego_lane),
                             v=ego_speed, theta=0.0, phi=0.0)
        ego = Vehicle(state=state, params=params or VehicleParameters())
        return cls(road=road, ego=ego)

    def add_npc(self, npc: NPCVehicle) -> None:
        """Register a scripted target vehicle."""
        self.npcs.append(npc)
        self._obstacle_cache = None

    def obstacles(self) -> list[Obstacle]:
        """Ground-truth snapshot of every non-ego body.

        Built once per tick and cached: the safety signals
        (``longitudinal_d_safe``, ``lateral_d_safe``,
        ``lateral_clearance``, ``in_collision``) all query it within the
        same tick.  Obstacles are frozen, so sharing the list is safe;
        anything that moves an NPC (``step``, ``restore``, ``add_npc``,
        or a batch engine scattering state back) invalidates it.
        """
        if self._obstacle_cache is None:
            self._obstacle_cache = [npc.as_obstacle() for npc in self.npcs]
        return self._obstacle_cache

    def invalidate_obstacles(self) -> None:
        """Drop the cached obstacle snapshot (NPC state changed)."""
        self._obstacle_cache = None

    def step(self, throttle: float, brake: float, steering: float,
             dt: float) -> None:
        """Advance the whole world ``dt`` seconds.

        The ego integrates the given actuation; NPCs advance their
        scripts from the current scenario clock.
        """
        for npc in self.npcs:
            npc.step(self.time, dt)
        self.ego.apply_actuation(throttle, brake, steering, dt)
        self.time += dt
        self._obstacle_cache = None

    # -- checkpoint support ---------------------------------------------------

    def snapshot(self) -> WorldSnapshot:
        """Capture clock, ego state, and NPC script progress."""
        return WorldSnapshot(
            time=self.time, ego=self.ego.state,
            npcs=tuple(npc.snapshot() for npc in self.npcs))

    def restore(self, snapshot: WorldSnapshot) -> None:
        """Rewind to a snapshot taken from an identically-built world."""
        if len(snapshot.npcs) != len(self.npcs):
            raise ValueError(
                f"snapshot has {len(snapshot.npcs)} NPCs, world has "
                f"{len(self.npcs)}; restore needs the same scenario build")
        self.time = snapshot.time
        self.ego.state = snapshot.ego
        for npc, npc_snapshot in zip(self.npcs, snapshot.npcs):
            npc.restore(npc_snapshot)
        self._obstacle_cache = None

    # -- ground-truth safety signals ----------------------------------------

    def longitudinal_d_safe(self) -> float:
        """Bumper gap to the nearest body ahead in the ego corridor."""
        state = self.ego.state
        return longitudinal_safe_distance(
            state.x, state.y, self.ego.params.length, self.ego.params.width,
            self.obstacles())

    def lateral_d_safe(self) -> float:
        """Clearance to flanking bodies and the ego-lane boundaries."""
        state = self.ego.state
        return lateral_safe_distance(
            state.x, state.y, self.ego.params.length, self.ego.params.width,
            self.obstacles(), self.road)

    def lateral_clearance(self) -> float:
        """Clearance to flanking bodies and the road edge."""
        state = self.ego.state
        return lateral_clearance(
            state.x, state.y, self.ego.params.length, self.ego.params.width,
            self.obstacles(), self.road)

    def lateral_clearance_toward(self, side: int) -> float:
        """Clearance toward one side (+1 = +y, -1 = -y)."""
        state = self.ego.state
        return lateral_clearance_directional(
            state.x, state.y, self.ego.params.length, self.ego.params.width,
            self.obstacles(), self.road, side)

    def lead_obstacle(self, extra_margin: float = 0.0) -> Obstacle | None:
        """Ground-truth nearest in-corridor vehicle ahead, if any."""
        state = self.ego.state
        return nearest_lead(state.x, state.y, self.ego.params.width,
                            self.obstacles(), extra_margin)

    def in_collision(self) -> bool:
        """True when the ego body overlaps any obstacle."""
        return ego_collides(self.ego.footprint(), self.obstacles())

    def off_road(self) -> bool:
        """True when any part of the ego body leaves the pavement."""
        half_width = self.ego.params.width / 2.0
        return self.road.lateral_margin_on_road(
            self.ego.state.y, half_width) < 0.0
