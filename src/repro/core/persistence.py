"""JSON persistence for campaign artifacts.

Campaigns can take minutes; records are cheap to store and replay.
Everything needed to reproduce an experiment (scenario, tick, variable,
value, duration, seed) plus its outcome round-trips through JSON.

Golden traces persist too (:func:`save_golden_traces`), keyed by a
fingerprint of everything that determines them — ADS and safety
configuration, seed, and the scenario set — so incremental campaigns can
warm-start training and mining from disk instead of re-simulating.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from ..sim.trace import Trace
from .bayesian_fi import CandidateFault
from .results import CampaignSummary, ExperimentRecord, Hazard
from .simulate import RunResult


def record_to_dict(record: ExperimentRecord) -> dict:
    """Flatten one experiment record to JSON-safe types."""
    return {
        "scenario": record.scenario,
        "injection_tick": record.injection_tick,
        "variable": record.variable,
        "value": record.value,
        "duration_ticks": record.duration_ticks,
        "seed": record.seed,
        "hazard": record.hazard.value,
        "landed": record.landed,
        "pre_delta_long": record.pre_delta_long,
        "pre_delta_lat": record.pre_delta_lat,
        "min_delta_long": record.min_delta_long,
        "min_delta_lat": record.min_delta_lat,
        "sim_seconds": record.sim_seconds,
        "wall_seconds": record.wall_seconds,
    }


def record_from_dict(data: dict) -> ExperimentRecord:
    """Inverse of :func:`record_to_dict`."""
    fields = dict(data)
    fields["hazard"] = Hazard(fields["hazard"])
    return ExperimentRecord(**fields)


def save_summary(summary: CampaignSummary, path: str | Path) -> None:
    """Write a campaign summary to a JSON file."""
    payload = {"records": [record_to_dict(r) for r in summary.records]}
    Path(path).write_text(json.dumps(payload, indent=1))


def load_summary(path: str | Path) -> CampaignSummary:
    """Read a campaign summary back."""
    payload = json.loads(Path(path).read_text())
    return CampaignSummary(
        records=[record_from_dict(d) for d in payload["records"]])


def candidate_to_dict(candidate: CandidateFault) -> dict:
    """Flatten one mined candidate."""
    return {
        "scenario": candidate.scenario,
        "injection_tick": candidate.injection_tick,
        "variable": candidate.variable,
        "value": candidate.value,
        "predicted_delta_long": candidate.predicted_delta_long,
        "predicted_delta_lat": candidate.predicted_delta_lat,
        "observed_delta_long": candidate.observed_delta_long,
        "observed_delta_lat": candidate.observed_delta_lat,
    }


def candidate_from_dict(data: dict) -> CandidateFault:
    """Inverse of :func:`candidate_to_dict`."""
    return CandidateFault(**data)


def config_fingerprint(ads_config, safety_config, seed: int,
                       scenario_key) -> str:
    """Deterministic digest of everything that shapes a golden trace.

    ``scenario_key`` is an iterable of per-scenario identity tuples
    (name, duration, and — as supplied by the caller — a digest of the
    build parametrization; see ``Campaign._scenario_key``).  The configs
    are frozen dataclasses whose ``repr`` is canonical, so the digest is
    stable across processes; any parameter change invalidates cached
    traces, which is exactly the safe failure mode.
    """
    payload = repr((ads_config, safety_config, int(seed),
                    tuple(scenario_key)))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def run_result_to_dict(run: RunResult) -> dict:
    """Flatten one golden run (trace included) to JSON-safe types.

    Checkpoints are deliberately not persisted: they embed live RNG and
    filter state that is cheap to regenerate and expensive to store.
    """
    arrays = run.trace.as_arrays()
    return {
        "scenario": run.scenario,
        "seed": run.seed,
        "hazard": run.hazard.value,
        "collided": run.collided,
        "went_off_road": run.went_off_road,
        "min_delta_long": run.min_delta_long,
        "min_delta_lat": run.min_delta_lat,
        "pre_delta_long": run.pre_delta_long,
        "pre_delta_lat": run.pre_delta_lat,
        "landed": run.landed,
        "sim_seconds": run.sim_seconds,
        "wall_seconds": run.wall_seconds,
        "trace": {name: array.tolist() for name, array in arrays.items()},
    }


def run_result_from_dict(data: dict) -> RunResult:
    """Inverse of :func:`run_result_to_dict`."""
    fields = dict(data)
    fields["hazard"] = Hazard(fields["hazard"])
    fields["trace"] = Trace.from_columns(fields["trace"])
    return RunResult(**fields)


def save_golden_traces(golden: dict[str, RunResult], path: str | Path,
                       fingerprint: str) -> None:
    """Write a campaign's golden runs (with traces) to a JSON file."""
    payload = {
        "fingerprint": fingerprint,
        "runs": {name: run_result_to_dict(run)
                 for name, run in golden.items()},
    }
    Path(path).write_text(json.dumps(payload))


def load_golden_traces(path: str | Path,
                       fingerprint: str) -> dict[str, RunResult] | None:
    """Read golden runs back; ``None`` on a missing file or stale key."""
    path = Path(path)
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if payload.get("fingerprint") != fingerprint:
        return None
    return {name: run_result_from_dict(data)
            for name, data in payload["runs"].items()}


def save_candidates(candidates: list[CandidateFault],
                    path: str | Path) -> None:
    """Write mined candidates to a JSON file."""
    payload = {"candidates": [candidate_to_dict(c) for c in candidates]}
    Path(path).write_text(json.dumps(payload, indent=1))


def load_candidates(path: str | Path) -> list[CandidateFault]:
    """Read mined candidates back."""
    payload = json.loads(Path(path).read_text())
    return [candidate_from_dict(d) for d in payload["candidates"]]
