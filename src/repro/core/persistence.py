"""JSON persistence for campaign artifacts.

Campaigns can take minutes; records are cheap to store and replay.
Everything needed to reproduce an experiment (scenario, tick, variable,
value, duration, seed) plus its outcome round-trips through JSON.

Golden traces persist too (:func:`save_golden_traces`), keyed by a
fingerprint of everything that determines them — ADS and safety
configuration, seed, and the scenario set — so incremental campaigns can
warm-start training and mining from disk instead of re-simulating.

For out-of-core campaigns :class:`JsonlRecordSink` streams one record
per line as futures complete; :func:`iter_records_jsonl` /
:func:`load_summary_jsonl` read the stream back without ever holding
every record at once.  All record serialization is strict-JSON safe:
non-finite floats (the ``inf`` safety potentials of unobstructed runs,
or NaNs from degenerate kinematics) are encoded as the strings
``"Infinity"``/``"-Infinity"``/``"NaN"`` and decoded losslessly.
"""

from __future__ import annotations

import hashlib
import json
import math
from pathlib import Path

from ..sim.trace import Trace
from .bayesian_fi import CandidateFault
from .results import CampaignSummary, ExperimentRecord, Hazard
from .simulate import RunResult

#: String spellings for the three non-finite doubles.  Plain ``repr``
#: floats stay floats, so finite values round-trip bit-for-bit.
_NONFINITE_TO_STR = {math.inf: "Infinity", -math.inf: "-Infinity"}
_STR_TO_NONFINITE = {"Infinity": math.inf, "-Infinity": -math.inf,
                     "NaN": math.nan}


def encode_float(value: float) -> float | str:
    """A strict-JSON-safe spelling of ``value`` (non-finite -> string)."""
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return _NONFINITE_TO_STR[value]
    return value


def decode_float(value: float | str) -> float:
    """Inverse of :func:`encode_float` (also accepts legacy raw floats)."""
    if isinstance(value, str):
        try:
            return _STR_TO_NONFINITE[value]
        except KeyError:
            raise ValueError(f"not a float encoding: {value!r}") from None
    return float(value)


def record_to_dict(record: ExperimentRecord) -> dict:
    """Flatten one experiment record to strict-JSON-safe types."""
    return {
        "scenario": record.scenario,
        "injection_tick": record.injection_tick,
        "variable": record.variable,
        "value": encode_float(record.value),
        "duration_ticks": record.duration_ticks,
        "seed": record.seed,
        "hazard": record.hazard.value,
        "landed": record.landed,
        "pre_delta_long": encode_float(record.pre_delta_long),
        "pre_delta_lat": encode_float(record.pre_delta_lat),
        "min_delta_long": encode_float(record.min_delta_long),
        "min_delta_lat": encode_float(record.min_delta_lat),
        "sim_seconds": encode_float(record.sim_seconds),
        "wall_seconds": encode_float(record.wall_seconds),
    }


_RECORD_FLOAT_FIELDS = ("value", "pre_delta_long", "pre_delta_lat",
                        "min_delta_long", "min_delta_lat", "sim_seconds",
                        "wall_seconds")


def record_from_dict(data: dict) -> ExperimentRecord:
    """Inverse of :func:`record_to_dict`."""
    fields = dict(data)
    fields["hazard"] = Hazard(fields["hazard"])
    for name in _RECORD_FLOAT_FIELDS:
        fields[name] = decode_float(fields[name])
    return ExperimentRecord(**fields)


class JsonlRecordSink:
    """Streams experiment records to a JSON-lines file, one per ``add``.

    The out-of-core counterpart of :class:`repro.core.results.ListSink`:
    records flush incrementally as campaign futures complete, so peak
    memory is independent of campaign size.  Usable as a context
    manager; :func:`iter_records_jsonl` reads the stream back.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = self.path.open("w", encoding="utf-8")
        self.count = 0

    def add(self, record: ExperimentRecord) -> None:
        """Append one record as a JSON line and flush it to the OS."""
        if self._file is None:
            raise ValueError(f"sink {self.path} is closed")
        json.dump(record_to_dict(record), self._file, allow_nan=False,
                  separators=(",", ":"))
        self._file.write("\n")
        self._file.flush()
        self.count += 1

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "JsonlRecordSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def iter_records_jsonl(path: str | Path):
    """Yield :class:`ExperimentRecord` from a JSONL stream, one at a time."""
    with Path(path).open("r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if line:
                yield record_from_dict(json.loads(line))


def load_summary_jsonl(path: str | Path,
                       keep_records: bool = True) -> CampaignSummary:
    """Aggregate a JSONL record stream into a :class:`CampaignSummary`.

    With ``keep_records=False`` the load itself is out-of-core: each
    record is folded into the aggregates and dropped.
    """
    summary = CampaignSummary(keep_records=keep_records)
    for record in iter_records_jsonl(path):
        summary.add(record)
    return summary


def save_summary(summary: CampaignSummary, path: str | Path) -> None:
    """Write a campaign summary to a JSON file."""
    payload = {"records": [record_to_dict(r) for r in summary.records]}
    Path(path).write_text(json.dumps(payload, indent=1))


def load_summary(path: str | Path) -> CampaignSummary:
    """Read a campaign summary back."""
    payload = json.loads(Path(path).read_text())
    return CampaignSummary(
        records=[record_from_dict(d) for d in payload["records"]])


def candidate_to_dict(candidate: CandidateFault) -> dict:
    """Flatten one mined candidate."""
    return {
        "scenario": candidate.scenario,
        "injection_tick": candidate.injection_tick,
        "variable": candidate.variable,
        "value": candidate.value,
        "predicted_delta_long": candidate.predicted_delta_long,
        "predicted_delta_lat": candidate.predicted_delta_lat,
        "observed_delta_long": candidate.observed_delta_long,
        "observed_delta_lat": candidate.observed_delta_lat,
    }


def candidate_from_dict(data: dict) -> CandidateFault:
    """Inverse of :func:`candidate_to_dict`."""
    return CandidateFault(**data)


def config_fingerprint(ads_config, safety_config, seed: int,
                       scenario_key) -> str:
    """Deterministic digest of everything that shapes a golden trace.

    ``scenario_key`` is an iterable of per-scenario identity tuples
    (name, duration, and — as supplied by the caller — a digest of the
    build parametrization; see ``Campaign._scenario_key``).  The configs
    are frozen dataclasses whose ``repr`` is canonical, so the digest is
    stable across processes; any parameter change invalidates cached
    traces, which is exactly the safe failure mode.
    """
    payload = repr((ads_config, safety_config, int(seed),
                    tuple(scenario_key)))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def run_result_to_dict(run: RunResult) -> dict:
    """Flatten one golden run (trace included) to JSON-safe types.

    Checkpoints are not part of this payload: they embed live RNG and
    filter state that JSON spells poorly.  They persist separately as
    per-scenario pickles via
    :meth:`repro.core.checkpoint.CheckpointStore.save`.
    """
    arrays = run.trace.as_arrays()
    return {
        "scenario": run.scenario,
        "seed": run.seed,
        "hazard": run.hazard.value,
        "collided": run.collided,
        "went_off_road": run.went_off_road,
        "min_delta_long": run.min_delta_long,
        "min_delta_lat": run.min_delta_lat,
        "pre_delta_long": run.pre_delta_long,
        "pre_delta_lat": run.pre_delta_lat,
        "landed": run.landed,
        "sim_seconds": run.sim_seconds,
        "wall_seconds": run.wall_seconds,
        "trace": {name: array.tolist() for name, array in arrays.items()},
    }


def run_result_from_dict(data: dict) -> RunResult:
    """Inverse of :func:`run_result_to_dict`."""
    fields = dict(data)
    fields["hazard"] = Hazard(fields["hazard"])
    fields["trace"] = Trace.from_columns(fields["trace"])
    return RunResult(**fields)


def save_golden_traces(golden: dict[str, RunResult], path: str | Path,
                       fingerprint: str) -> None:
    """Write a campaign's golden runs (with traces) to a JSON file."""
    payload = {
        "fingerprint": fingerprint,
        "runs": {name: run_result_to_dict(run)
                 for name, run in golden.items()},
    }
    Path(path).write_text(json.dumps(payload))


def load_golden_traces(path: str | Path,
                       fingerprint: str) -> dict[str, RunResult] | None:
    """Read golden runs back; ``None`` on a missing file or stale key."""
    path = Path(path)
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if payload.get("fingerprint") != fingerprint:
        return None
    return {name: run_result_from_dict(data)
            for name, data in payload["runs"].items()}


def save_candidates(candidates: list[CandidateFault],
                    path: str | Path) -> None:
    """Write mined candidates to a JSON file."""
    payload = {"candidates": [candidate_to_dict(c) for c in candidates]}
    Path(path).write_text(json.dumps(payload, indent=1))


def load_candidates(path: str | Path) -> list[CandidateFault]:
    """Read mined candidates back."""
    payload = json.loads(Path(path).read_text())
    return [candidate_from_dict(d) for d in payload["candidates"]]
