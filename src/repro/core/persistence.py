"""JSON persistence for campaign artifacts.

Campaigns can take minutes; records are cheap to store and replay.
Everything needed to reproduce an experiment (scenario, tick, variable,
value, duration, seed) plus its outcome round-trips through JSON.

Golden traces persist too (:func:`save_golden_traces`), keyed by a
fingerprint of everything that determines them — ADS and safety
configuration, seed, and the scenario set — so incremental campaigns can
warm-start training and mining from disk instead of re-simulating.
Cache paths ending in ``.gz`` are gzip-compressed transparently
(deterministic output, so concurrent shard writers stay byte-identical
and atomic).  With a :class:`repro.sim.TraceStore` attached, the JSON
carries per-scenario *references* into the store's memory-mapped
``.npy`` spool instead of inline sample columns — the warm-start path
of out-of-core campaigns, which never materializes a full trace set.

For out-of-core campaigns :class:`JsonlRecordSink` streams one record
per line as futures complete; :func:`iter_records_jsonl` /
:func:`load_summary_jsonl` read the stream back without ever holding
every record at once.  All record serialization is strict-JSON safe:
non-finite floats (the ``inf`` safety potentials of unobstructed runs,
or NaNs from degenerate kinematics) are encoded as the strings
``"Infinity"``/``"-Infinity"``/``"NaN"`` and decoded losslessly.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import math
import zlib
from pathlib import Path

from ..sim.trace import StoredTrace, Trace, TraceStore
from .bayesian_fi import CandidateFault
from .ioutil import write_bytes_atomic, write_text_atomic
from .results import CampaignSummary, ExperimentRecord, Hazard
from .simulate import RunResult

#: String spellings for the three non-finite doubles.  Plain ``repr``
#: floats stay floats, so finite values round-trip bit-for-bit.
_NONFINITE_TO_STR = {math.inf: "Infinity", -math.inf: "-Infinity"}
_STR_TO_NONFINITE = {"Infinity": math.inf, "-Infinity": -math.inf,
                     "NaN": math.nan}


def encode_float(value: float) -> float | str:
    """A strict-JSON-safe spelling of ``value`` (non-finite -> string)."""
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return _NONFINITE_TO_STR[value]
    return value


def decode_float(value: float | str) -> float:
    """Inverse of :func:`encode_float` (also accepts legacy raw floats)."""
    if isinstance(value, str):
        try:
            return _STR_TO_NONFINITE[value]
        except KeyError:
            raise ValueError(f"not a float encoding: {value!r}") from None
    return float(value)


def record_to_dict(record: ExperimentRecord) -> dict:
    """Flatten one experiment record to strict-JSON-safe types.

    Failure diagnoses (``error``/``attempts``) serialize only when the
    record actually is a quarantined failure: success records keep the
    exact byte layout streams had before supervision existed, so
    supervised and unsupervised runs of a healthy campaign stay
    bit-for-bit identical on disk.
    """
    payload = {
        "scenario": record.scenario,
        "injection_tick": record.injection_tick,
        "variable": record.variable,
        "value": encode_float(record.value),
        "duration_ticks": record.duration_ticks,
        "seed": record.seed,
        "hazard": record.hazard.value,
        "landed": record.landed,
        "pre_delta_long": encode_float(record.pre_delta_long),
        "pre_delta_lat": encode_float(record.pre_delta_lat),
        "min_delta_long": encode_float(record.min_delta_long),
        "min_delta_lat": encode_float(record.min_delta_lat),
        "sim_seconds": encode_float(record.sim_seconds),
        "wall_seconds": encode_float(record.wall_seconds),
    }
    if record.error is not None:
        payload["error"] = record.error
        payload["attempts"] = record.attempts
    # Interface-fault and degradation fields, only-when-set (same
    # byte-compatibility contract as error/attempts above): a value
    # fault that never degraded serializes exactly as it did before
    # interface faults existed.
    if record.kind != "value":
        payload["kind"] = record.kind
    if record.channel is not None:
        payload["channel"] = record.channel
    if record.degraded:
        payload["degraded"] = True
    return payload


_RECORD_FLOAT_FIELDS = ("value", "pre_delta_long", "pre_delta_lat",
                        "min_delta_long", "min_delta_lat", "sim_seconds",
                        "wall_seconds")


def record_from_dict(data: dict) -> ExperimentRecord:
    """Inverse of :func:`record_to_dict`."""
    fields = dict(data)
    fields["hazard"] = Hazard(fields["hazard"])
    for name in _RECORD_FLOAT_FIELDS:
        fields[name] = decode_float(fields[name])
    return ExperimentRecord(**fields)


def _open_record_stream(path: Path, mode: str):
    """Open a record stream, transparently gzip for ``*.gz`` paths.

    Shard outputs get large; a ``.jsonl.gz`` path compresses the stream
    on the fly while keeping the line-per-record protocol identical.
    """
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return path.open(mode, encoding="utf-8")


class JsonlRecordSink:
    """Streams experiment records to a JSON-lines file, one per ``add``.

    The out-of-core counterpart of :class:`repro.core.results.ListSink`:
    records flush incrementally as campaign futures complete, so peak
    memory is independent of campaign size.  A path ending in ``.gz``
    is gzip-compressed transparently.  Usable as a context manager;
    :func:`iter_records_jsonl` reads the stream back.
    """

    def __init__(self, path: str | Path, style: str | None = None):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = _open_record_stream(self.path, "w")
        # A flush on a gzip stream is a zlib sync flush: one deflate
        # block per ~100-byte record bloats the output ~30x and defeats
        # the compression .gz was chosen for.  Compressed streams
        # therefore buffer until close and trade away the plain path's
        # per-record crash durability.
        self._flush_per_record = self.path.suffix != ".gz"
        self.count = 0
        if style is not None:
            # A metadata header line, skipped by every reader; `repro
            # merge` uses it to refuse folding shards of different
            # campaign styles into one summary.
            json.dump({"_meta": {"style": style}}, self._file,
                      separators=(",", ":"))
            self._file.write("\n")

    def add(self, record: ExperimentRecord) -> None:
        """Append one record as a JSON line (plain paths flush to OS)."""
        if self._file is None:
            raise ValueError(f"sink {self.path} is closed")
        json.dump(record_to_dict(record), self._file, allow_nan=False,
                  separators=(",", ":"))
        self._file.write("\n")
        if self._flush_per_record:
            self._file.flush()
        self.count += 1

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "JsonlRecordSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def iter_records_jsonl(path: str | Path):
    """Yield :class:`ExperimentRecord` from a JSONL stream, one at a time.

    Paths ending in ``.gz`` are decompressed transparently; ``_meta``
    header lines (stream style tags) are skipped.
    """
    with _open_record_stream(Path(path), "r") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            if isinstance(data, dict) and "_meta" in data:
                continue
            yield record_from_dict(data)


def record_stream_style(path: str | Path) -> str | None:
    """The campaign style a record stream was written by, if tagged.

    Reads at most the first line: sinks write their ``_meta`` header
    before any record.  Untagged streams (hand-built sinks, pre-tag
    files) return ``None`` and are merge-compatible with anything.
    """
    with _open_record_stream(Path(path), "r") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            if isinstance(data, dict) and "_meta" in data:
                style = data["_meta"].get("style")
                return str(style) if style is not None else None
            return None
    return None


def load_summary_jsonl(path: str | Path,
                       keep_records: bool = True) -> CampaignSummary:
    """Aggregate a JSONL record stream into a :class:`CampaignSummary`.

    With ``keep_records=False`` the load itself is out-of-core: each
    record is folded into the aggregates and dropped.
    """
    summary = CampaignSummary(keep_records=keep_records)
    for record in iter_records_jsonl(path):
        summary.add(record)
    return summary


def merge_record_shards(paths, out_path: str | Path | None = None,
                        keep_records: bool = False) -> CampaignSummary:
    """Fold shard record streams into one summary (the ``repro merge`` op).

    Each path is one shard's JSONL (or ``.jsonl.gz``) record stream from
    a sharded campaign.  Shards partition the experiment set, so folding
    their streams in shard order reproduces the unsharded campaign's
    summary exactly (see :meth:`CampaignSummary.merge`).  With
    ``out_path`` the merged stream is also re-written as one file —
    records concatenated in shard order, gzip-compressed when the path
    ends in ``.gz``.  The merge is out-of-core unless ``keep_records``.

    Streams tagged with different campaign styles (the sinks' ``_meta``
    headers) raise a :class:`ValueError` — averaging a random campaign
    into a Bayesian one produces a number that means nothing — as does
    a file that is not a JSONL record stream at all.  Both surface as
    one-line errors, never tracebacks, at the CLI.
    """
    paths = [Path(path) for path in paths]
    styles: dict[str, str] = {}
    for path in paths:
        try:
            style = record_stream_style(path)
        except (json.JSONDecodeError, UnicodeDecodeError, EOFError,
                zlib.error, OSError) as err:
            raise ValueError(
                f"{path}: not a JSONL record stream ({err})") from None
        if style is not None:
            styles[str(path)] = style
    if len(set(styles.values())) > 1:
        described = ", ".join(f"{path} is {style!r}"
                              for path, style in styles.items())
        raise ValueError(
            f"shard streams mix campaign styles ({described}); "
            f"merge only shards of one campaign")
    style = next(iter(styles.values()), None)
    sink = (JsonlRecordSink(out_path, style=style)
            if out_path is not None else None)
    try:
        shard_summaries = []
        for path in paths:
            summary = CampaignSummary(keep_records=keep_records)
            records = iter_records_jsonl(path)
            while True:
                try:
                    record = next(records)
                except StopIteration:
                    break
                except (json.JSONDecodeError, UnicodeDecodeError,
                        KeyError, TypeError, ValueError, EOFError,
                        zlib.error, OSError) as err:
                    # EOFError covers gzip streams truncated mid-write,
                    # zlib.error mid-stream bit corruption — both the
                    # crashed-shard-writer cases merging exists for.
                    # Sink writes live outside this clause so an
                    # output-side failure (say, a full disk) is never
                    # blamed on a healthy input shard.
                    raise ValueError(
                        f"{path}: not a JSONL record stream ({err})") \
                        from None
                summary.add(record)
                if sink is not None:
                    sink.add(record)
            shard_summaries.append(summary)
    except (ValueError, OSError):
        # A failed merge must not leave a well-formed partial output
        # behind — its existence would read as success downstream.
        if sink is not None:
            sink.close()
            sink.path.unlink(missing_ok=True)
        raise
    finally:
        if sink is not None:
            sink.close()
    return CampaignSummary.merge(shard_summaries)


def save_summary(summary: CampaignSummary, path: str | Path) -> None:
    """Write a campaign summary to a JSON file.

    Only meaningful for summaries that retained their records: a
    streamed summary (``keep_records=False``) already wrote them
    through its sink, and silently saving its empty list would look
    like data loss — that is an error here.
    """
    if not summary.keep_records and summary.total:
        raise ValueError(
            f"summary streamed its {summary.total} records to a sink "
            f"and retained none; save_summary would write an empty "
            f"record list — use the sink's output instead")
    payload = {"records": [record_to_dict(r) for r in summary.records]}
    Path(path).write_text(json.dumps(payload, indent=1))


def load_summary(path: str | Path) -> CampaignSummary:
    """Read a campaign summary back."""
    payload = json.loads(Path(path).read_text())
    return CampaignSummary(
        records=[record_from_dict(d) for d in payload["records"]])


def candidate_to_dict(candidate: CandidateFault) -> dict:
    """Flatten one mined candidate."""
    return {
        "scenario": candidate.scenario,
        "injection_tick": candidate.injection_tick,
        "variable": candidate.variable,
        "value": candidate.value,
        "predicted_delta_long": candidate.predicted_delta_long,
        "predicted_delta_lat": candidate.predicted_delta_lat,
        "observed_delta_long": candidate.observed_delta_long,
        "observed_delta_lat": candidate.observed_delta_lat,
    }


def candidate_from_dict(data: dict) -> CandidateFault:
    """Inverse of :func:`candidate_to_dict`."""
    return CandidateFault(**data)


def config_fingerprint(ads_config, safety_config, seed: int,
                       scenario_key) -> str:
    """Deterministic digest of everything that shapes a golden trace.

    ``scenario_key`` is an iterable of per-scenario identity tuples
    (name, duration, and — as supplied by the caller — a digest of the
    build parametrization; see ``Campaign._scenario_key``).  The configs
    are frozen dataclasses whose ``repr`` is canonical, so the digest is
    stable across processes; any parameter change invalidates cached
    traces, which is exactly the safe failure mode.
    """
    payload = repr((ads_config, safety_config, int(seed),
                    tuple(scenario_key)))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def run_result_to_dict(run: RunResult,
                       trace_store: TraceStore | None = None) -> dict:
    """Flatten one golden run (trace included) to JSON-safe types.

    Checkpoints are not part of this payload: they embed live RNG and
    filter state that JSON spells poorly.  They persist separately as
    per-scenario pickles via
    :meth:`repro.core.checkpoint.CheckpointStore.save`.

    With a ``trace_store`` the trace columns stay in the store's
    columnar ``.npy`` spool (written here if not already spooled) and
    the payload carries only a reference — the bounded-memory cache
    format of out-of-core campaigns.
    """
    payload = {
        "scenario": run.scenario,
        "seed": run.seed,
        "hazard": run.hazard.value,
        "collided": run.collided,
        "went_off_road": run.went_off_road,
        "min_delta_long": run.min_delta_long,
        "min_delta_lat": run.min_delta_lat,
        "pre_delta_long": run.pre_delta_long,
        "pre_delta_lat": run.pre_delta_lat,
        "landed": run.landed,
        "sim_seconds": run.sim_seconds,
        "wall_seconds": run.wall_seconds,
    }
    if trace_store is not None:
        if not (isinstance(run.trace, StoredTrace)
                and trace_store.has(run.scenario)):
            trace_store.put(run.scenario, run.trace)
        payload["trace_ref"] = run.scenario
    else:
        arrays = run.trace.as_arrays()
        payload["trace"] = {name: array.tolist()
                            for name, array in arrays.items()}
    return payload


def run_result_from_dict(data: dict,
                         trace_store: TraceStore | None = None
                         ) -> RunResult:
    """Inverse of :func:`run_result_to_dict`."""
    fields = dict(data)
    fields["hazard"] = Hazard(fields["hazard"])
    ref = fields.pop("trace_ref", None)
    if ref is not None:
        stored = trace_store.get(ref) if trace_store is not None else None
        if stored is None:
            raise ValueError(
                f"golden cache references stored trace {ref!r} but no "
                f"trace store holds it")
        fields["trace"] = stored
    else:
        fields["trace"] = Trace.from_columns(fields["trace"])
    return RunResult(**fields)


def _write_json_maybe_gz(path: Path, text: str) -> None:
    """Atomic JSON write, gzip-compressed for ``*.gz`` paths.

    ``mtime=0`` keeps the compressed bytes deterministic, preserving
    the concurrent-writer guarantee (identical content + atomic rename
    means racing shards are safe) that the plain-text path already has.
    """
    if path.name.endswith(".gz"):
        write_bytes_atomic(path, gzip.compress(text.encode("utf-8"),
                                               mtime=0))
    else:
        write_text_atomic(path, text)


def _read_json_maybe_gz(path: Path) -> str:
    if path.name.endswith(".gz"):
        return gzip.decompress(path.read_bytes()).decode("utf-8")
    return path.read_text()


def save_golden_traces(golden: dict[str, RunResult], path: str | Path,
                       fingerprint: str,
                       trace_store: TraceStore | None = None) -> None:
    """Write a campaign's golden runs (with traces) to a JSON file.

    Atomic (write + rename): Bayesian shards sharing a ``cache_dir``
    each write the full-set file concurrently.  A path ending in
    ``.gz`` is gzip-compressed transparently; with a ``trace_store``
    the traces live in the store's spool and the JSON holds references
    (see :func:`run_result_to_dict`).
    """
    payload = {
        "fingerprint": fingerprint,
        "runs": {name: run_result_to_dict(run, trace_store)
                 for name, run in golden.items()},
    }
    _write_json_maybe_gz(Path(path), json.dumps(payload))


def load_golden_traces(path: str | Path, fingerprint: str,
                       trace_store: TraceStore | None = None
                       ) -> dict[str, RunResult] | None:
    """Read golden runs back; ``None`` on a missing file or stale key.

    Any unreadable payload — torn gzip, stale schema, a trace
    reference whose spool files are gone or were written by a
    different configuration — is a cache miss, never an error: the
    caller re-simulates and self-heals the cache.
    """
    path = Path(path)
    if not path.exists():
        return None
    try:
        payload = json.loads(_read_json_maybe_gz(path))
        if payload.get("fingerprint") != fingerprint:
            return None
        return {name: run_result_from_dict(data, trace_store)
                for name, data in payload["runs"].items()}
    except (OSError, json.JSONDecodeError, KeyError, TypeError,
            ValueError, EOFError, zlib.error):
        return None


def save_candidates(candidates: list[CandidateFault],
                    path: str | Path) -> None:
    """Write mined candidates to a JSON file (atomically — see above)."""
    payload = {"candidates": [candidate_to_dict(c) for c in candidates]}
    write_text_atomic(Path(path), json.dumps(payload, indent=1))


def load_candidates(path: str | Path) -> list[CandidateFault]:
    """Read mined candidates back."""
    payload = json.loads(Path(path).read_text())
    return [candidate_from_dict(d) for d in payload["candidates"]]


def try_load_candidates(path: str | Path) -> list[CandidateFault] | None:
    """Candidate-cache read: ``None`` on a missing or unreadable file.

    The warm-start path treats any failure as a cache miss and re-mines
    — the safe direction, mirroring :func:`load_golden_traces`.
    """
    try:
        return load_candidates(path)
    except (OSError, json.JSONDecodeError, KeyError, TypeError):
        return None
