"""JSON persistence for campaign artifacts.

Campaigns can take minutes; records are cheap to store and replay.
Everything needed to reproduce an experiment (scenario, tick, variable,
value, duration, seed) plus its outcome round-trips through JSON.
"""

from __future__ import annotations

import json
from pathlib import Path

from .bayesian_fi import CandidateFault
from .results import CampaignSummary, ExperimentRecord, Hazard


def record_to_dict(record: ExperimentRecord) -> dict:
    """Flatten one experiment record to JSON-safe types."""
    return {
        "scenario": record.scenario,
        "injection_tick": record.injection_tick,
        "variable": record.variable,
        "value": record.value,
        "duration_ticks": record.duration_ticks,
        "seed": record.seed,
        "hazard": record.hazard.value,
        "landed": record.landed,
        "pre_delta_long": record.pre_delta_long,
        "pre_delta_lat": record.pre_delta_lat,
        "min_delta_long": record.min_delta_long,
        "min_delta_lat": record.min_delta_lat,
        "sim_seconds": record.sim_seconds,
        "wall_seconds": record.wall_seconds,
    }


def record_from_dict(data: dict) -> ExperimentRecord:
    """Inverse of :func:`record_to_dict`."""
    fields = dict(data)
    fields["hazard"] = Hazard(fields["hazard"])
    return ExperimentRecord(**fields)


def save_summary(summary: CampaignSummary, path: str | Path) -> None:
    """Write a campaign summary to a JSON file."""
    payload = {"records": [record_to_dict(r) for r in summary.records]}
    Path(path).write_text(json.dumps(payload, indent=1))


def load_summary(path: str | Path) -> CampaignSummary:
    """Read a campaign summary back."""
    payload = json.loads(Path(path).read_text())
    return CampaignSummary(
        records=[record_from_dict(d) for d in payload["records"]])


def candidate_to_dict(candidate: CandidateFault) -> dict:
    """Flatten one mined candidate."""
    return {
        "scenario": candidate.scenario,
        "injection_tick": candidate.injection_tick,
        "variable": candidate.variable,
        "value": candidate.value,
        "predicted_delta_long": candidate.predicted_delta_long,
        "predicted_delta_lat": candidate.predicted_delta_lat,
        "observed_delta_long": candidate.observed_delta_long,
        "observed_delta_lat": candidate.observed_delta_lat,
    }


def candidate_from_dict(data: dict) -> CandidateFault:
    """Inverse of :func:`candidate_to_dict`."""
    return CandidateFault(**data)


def save_candidates(candidates: list[CandidateFault],
                    path: str | Path) -> None:
    """Write mined candidates to a JSON file."""
    payload = {"candidates": [candidate_to_dict(c) for c in candidates]}
    Path(path).write_text(json.dumps(payload, indent=1))


def load_candidates(path: str | Path) -> list[CandidateFault]:
    """Read mined candidates back."""
    payload = json.loads(Path(path).read_text())
    return [candidate_from_dict(d) for d in payload["candidates"]]
