"""Bayesian fault injection: the paper's fault-selection engine (Sec. III).

The ADS is modelled as a 3-slice temporal Bayesian network (3-TBN,
Fig. 6) with linear-Gaussian CPDs fit from golden (fault-free) driving
traces.  A candidate fault ``f`` over one inter-module variable is scored
by counterfactual inference:

1. clamp slice 0 to the scene's observed state (``t = k - 1``),
2. apply ``do(node@1 = corrupted value)`` — graph surgery cuts the edges
   into the corrupted node, so no belief leaks backward (``t = k``),
3. take the MLE of the slice-2 kinematic state (Eq. 2; for a Gaussian
   posterior the MLE is the posterior mean), and
4. re-evaluate the safety potential ``delta`` through the kinematic
   safety model (Eq. 7).

A fault enters ``F_crit`` (Eq. 1) when the scene was safe before
injection but the predicted post-injection potential is non-positive.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..bayesnet.dynamic import (SLICE_SEPARATOR, DynamicBayesianNetwork,
                                slice_node)
from ..bayesnet.gaussian import GaussianInference
from ..bayesnet.network import LinearGaussianBayesianNetwork
from ..sim.collision import SENSOR_RANGE
from ..sim.trace import Trace
from ..ads.variables import variable_by_name
from .safety import (SafetyConfig, SafetyPotential, _canonical_stop,
                     _excursion_rollout, longitudinal_envelope,
                     steering_excursion, stopping_displacement)
from .simulate import FaultSpec, RunResult

#: Nodes of the per-slice BN: kinematic state + actuation commands.
BN_VARIABLES = ("v", "gap", "closing", "lat", "throttle", "brake",
                "steering")

#: Kinematic nodes whose slice-2 MLE feeds the safety re-evaluation.
KINEMATIC_NODES = ("v", "gap", "closing", "lat")


def ads_dbn_template() -> DynamicBayesianNetwork:
    """The 3-TBN topology, derived from the ADS architecture (Fig. 1/6).

    Within a slice, the world state drives the planner/controller
    outputs; across slices, actuation moves the kinematic state.
    """
    intra = [("gap", "throttle"), ("gap", "brake"),
             ("closing", "throttle"), ("closing", "brake"),
             ("v", "throttle"), ("v", "brake"),
             ("lat", "steering")]
    inter = [("v", "v"), ("throttle", "v"), ("brake", "v"),
             ("gap", "gap"), ("closing", "gap"),
             ("closing", "closing"), ("throttle", "closing"),
             ("brake", "closing"),
             ("lat", "lat"), ("steering", "lat")]
    return DynamicBayesianNetwork(BN_VARIABLES, intra_edges=intra,
                                  inter_edges=inter)


# -- mapping from injectable ADS variables to BN interventions --------------

def _gap_from_detection(scene: Mapping[str, float], value: float) -> float:
    # detection_x is a world coordinate; the BN node is a bumper gap.
    return max(value - scene["x"] - 4.8, 0.01)


def _closing_from_lead_speed(scene: Mapping[str, float],
                             value: float) -> float:
    return scene["v"] - value


def _identity(scene: Mapping[str, float], value: float) -> float:
    return value


#: Pedal positions can move at most this far within the corruption
#: window (controller slew rate 2.5/s x 0.2 s).
_PEDAL_SLEW_WINDOW = 0.5


def _slewed_throttle(scene: Mapping[str, float], value: float) -> float:
    # A planner-stage (U_A) pedal corruption reaches the vehicle through
    # the PID/slew stage, so its effective magnitude is rate-limited.
    current = scene["throttle"]
    delta = min(max(value - current, -_PEDAL_SLEW_WINDOW),
                _PEDAL_SLEW_WINDOW)
    return current + delta


def _slewed_brake(scene: Mapping[str, float], value: float) -> float:
    current = scene["brake"]
    delta = min(max(value - current, -_PEDAL_SLEW_WINDOW),
                _PEDAL_SLEW_WINDOW)
    return current + delta


@dataclass(frozen=True)
class MinedVariable:
    """How one injectable ADS variable maps into the 3-TBN.

    ``recovery`` is the stack's latency to unwind the corruption once
    the window closes: actuation-stage (A_t) corruptions are overwritten
    by the controller on the next frame; planner-stage (U_A) corruptions
    persist through the pedal slew; belief-stage (W_t / I_t / M_t)
    corruptions persist until the filters re-converge.
    """

    node: str
    transform: Callable[[Mapping[str, float], float], float] = _identity
    recovery: float = 0.25


#: Vectorized twins of the scalar transforms above, keyed by the scalar
#: function.  Each maps (scene column arrays, candidate value array) ->
#: BN node value array, element-for-element identical to the scalar
#: transform so the batched miner reproduces the scalar oracle.
_BATCH_TRANSFORMS: dict[Callable, Callable] = {
    _identity: lambda cols, values: values,
    _gap_from_detection:
        lambda cols, values: np.maximum(values - cols["x"] - 4.8, 0.01),
    _closing_from_lead_speed: lambda cols, values: cols["v"] - values,
    _slewed_throttle:
        lambda cols, values: cols["throttle"] + np.clip(
            values - cols["throttle"], -_PEDAL_SLEW_WINDOW,
            _PEDAL_SLEW_WINDOW),
    _slewed_brake:
        lambda cols, values: cols["brake"] + np.clip(
            values - cols["brake"], -_PEDAL_SLEW_WINDOW,
            _PEDAL_SLEW_WINDOW),
}


#: ADS variable -> BN intervention description.
NODE_MAPPING: dict[str, MinedVariable] = {
    "throttle": MinedVariable("throttle", recovery=0.2),
    "raw_throttle": MinedVariable("throttle", _slewed_throttle,
                                  recovery=0.4),
    "brake": MinedVariable("brake", recovery=0.2),
    "raw_brake": MinedVariable("brake", _slewed_brake, recovery=0.4),
    "steering": MinedVariable("steering", recovery=0.1),
    "raw_steering": MinedVariable("steering", recovery=0.4),
    "tracked_gap": MinedVariable("gap", recovery=0.25),
    "detection_x": MinedVariable("gap", _gap_from_detection,
                                 recovery=0.25),
    "tracked_speed": MinedVariable("closing", _closing_from_lead_speed,
                                   recovery=0.25),
    "imu_speed": MinedVariable("v", recovery=0.25),
    "ego_speed_estimate": MinedVariable("v", recovery=0.25),
    "sensed_lane_offset": MinedVariable("lat", recovery=0.25),
    "model_lane_offset": MinedVariable("lat", recovery=0.25),
}

#: The ADS variables the Bayesian engine can reason about.
MINED_VARIABLES = tuple(NODE_MAPPING)


@dataclass(frozen=True)
class SceneRow:
    """One golden-trace instant: evidence for slice 0 of the 3-TBN."""

    scenario: str
    evidence_tick: int      # control tick of the observed state (k - 1)
    injection_tick: int     # control tick a mined fault would fire at (k)
    values: dict            # all TRACE_COLUMNS at the evidence instant
    observed_delta_long: float   # golden delta at the injection instant
    observed_delta_lat: float

    @property
    def observed_safe(self) -> bool:
        """The F_crit premise: the scene is safe without the fault."""
        return (self.observed_delta_long > 0.0
                and self.observed_delta_lat > 0.0)


def scene_rows_from_trace(scenario: str,
                          trace: Trace) -> Iterator[SceneRow]:
    """Consecutive-row pairs of a golden trace -> scene rows, lazily.

    A generator: rows stream one at a time into the miners, so a
    scenario's scene population is never materialized as a list —
    wrap in ``list`` to hold one.
    """
    arrays = trace.as_arrays()
    n = len(trace)
    for i in range(n - 1):
        values = {name: float(column[i]) for name, column in arrays.items()}
        yield SceneRow(
            scenario=scenario,
            evidence_tick=int(arrays["tick"][i]),
            injection_tick=int(arrays["tick"][i + 1]),
            values=values,
            observed_delta_long=float(arrays["delta_long"][i + 1]),
            observed_delta_lat=float(arrays["delta_lat"][i + 1]))


#: Scene columns the batched scorer needs beyond the BN variables.
_BATCH_EXTRA_COLUMNS = ("x", "gt_gap", "gt_lead_v", "lat", "lat_free_up",
                        "lat_free_down")


class _SceneBatch:
    """Columnar (structure-of-arrays) view of streamed scene rows.

    Built in one pass over any iterable: each row's columns land in
    per-column buffers and only a light identity tuple (scenario,
    injection tick, observed deltas) is retained per scene — the row
    objects and their ``values`` dicts are released as the stream
    advances, so batched mining never holds a scene-row list.
    """

    def __init__(self, scenes: Iterable["SceneRow"]):
        names = set(BN_VARIABLES) | set(_BATCH_EXTRA_COLUMNS)
        buffers: dict[str, list[float]] = {name: [] for name in names}
        self.identities: list[tuple[str, int, float, float]] = []
        for scene in scenes:
            for name in names:
                buffers[name].append(scene.values[name])
            self.identities.append(
                (scene.scenario, scene.injection_tick,
                 scene.observed_delta_long, scene.observed_delta_lat))
        self.n = len(self.identities)
        self.cols = {name: np.array(buffer)
                     for name, buffer in buffers.items()}

    def tiled(self, k: int) -> dict[str, np.ndarray]:
        """Columns repeated ``k`` times (one block per corruption value)."""
        if k == 1:
            return self.cols
        return {name: np.tile(col, k) for name, col in self.cols.items()}


@dataclass(frozen=True)
class CandidateFault:
    """A mined fault: scene + corruption + predicted consequence."""

    scenario: str
    injection_tick: int
    variable: str
    value: float
    predicted_delta_long: float
    predicted_delta_lat: float
    observed_delta_long: float
    observed_delta_lat: float

    @property
    def predicted_minimum(self) -> float:
        """The binding predicted margin (ranking key)."""
        return min(self.predicted_delta_long, self.predicted_delta_lat)

    def to_fault_spec(self, duration_ticks: int = 2) -> FaultSpec:
        """The executable fault for validation."""
        return FaultSpec(variable=self.variable, value=self.value,
                         start_tick=self.injection_tick,
                         duration_ticks=duration_ticks)


@dataclass
class MiningReport:
    """Cost accounting of one mining pass (feeds E2)."""

    n_scenes: int = 0
    n_scored: int = 0
    n_critical: int = 0
    wall_seconds: float = 0.0


class InjectorTrainer:
    """Streaming sufficient-statistics training of the 3-TBN.

    Built by :meth:`BayesianFaultInjector.streaming_trainer`.  Each
    :meth:`add_run` folds one golden trace's training windows into
    per-node accumulators (:class:`repro.bayesnet.learning
    .LinearGaussianNetworkSuffStats`) and releases them; state between
    folds is O(network parameters), independent of trace count or
    length.  Folding the same traces in the same order as
    :meth:`BayesianFaultInjector.train` and calling :meth:`finish`
    reproduces the batch fit (the equivalence the streaming-training
    test suite enforces), including the batch path's convention of
    taking ``slice_dt`` from the last folded trace with two samples.
    """

    def __init__(self, injector_cls, safety_config: SafetyConfig | None,
                 n_slices: int):
        from ..bayesnet.learning import LinearGaussianNetworkSuffStats
        self.template = ads_dbn_template()
        self.safety_config = safety_config
        self.n_slices = n_slices
        self._injector_cls = injector_cls
        self._stats = LinearGaussianNetworkSuffStats(
            self.template.unrolled_dag(n_slices))
        self._slice_dt = 0.1
        self.n_folded = 0

    def add_run(self, run: RunResult) -> None:
        """Fold one golden run's trace in (in-RAM or stored)."""
        self.add_trace(run.trace)

    def add_trace(self, trace) -> None:
        """Fold one golden trace in; its windows are released after."""
        arrays = trace.as_arrays()
        if len(arrays["time"]) > 1:
            self._slice_dt = float(arrays["time"][1] - arrays["time"][0])
        columns = {name: arrays[name] for name in BN_VARIABLES}
        windows = self.template.trace_windows(columns, self.n_slices)
        if windows is not None:
            self._stats.update(windows)
        self.n_folded += 1

    def finish(self) -> "BayesianFaultInjector":
        """The trained injector over everything folded so far."""
        if self._stats.n == 0:
            raise ValueError(
                "no training windows: traces shorter than n_slices")
        model = self._stats.finalize()
        return self._injector_cls(model, self.safety_config,
                                  self.n_slices, self._slice_dt)


class BayesianFaultInjector:
    """Trains the 3-TBN and mines ``F_crit`` by do-calculus scoring."""

    def __init__(self, model: LinearGaussianBayesianNetwork,
                 safety_config: SafetyConfig | None = None,
                 n_slices: int = 3, slice_dt: float = 0.1):
        self.model = model
        self.safety_config = safety_config or SafetyConfig()
        self.n_slices = n_slices
        self.slice_dt = slice_dt      # s between planner frames / slices
        self._engines: dict[str, GaussianInference] = {}
        #: node -> (query order, gain, offset) of the actuation posterior.
        self._affines: dict[str, tuple[list[str], np.ndarray,
                                       np.ndarray]] = {}
        #: node set -> stacked scene-gain matrix + per-node splits.
        self._stacked: dict[tuple[str, ...], tuple] = {}

    # -- training -----------------------------------------------------------

    @classmethod
    def train(cls, golden_runs: list[RunResult],
              safety_config: SafetyConfig | None = None,
              n_slices: int = 3) -> "BayesianFaultInjector":
        """Fit the 3-TBN from fault-free traces."""
        template = ads_dbn_template()
        traces = []
        slice_dt = 0.1
        for run in golden_runs:
            arrays = run.trace.as_arrays()
            traces.append({name: arrays[name] for name in BN_VARIABLES})
            if len(arrays["time"]) > 1:
                slice_dt = float(arrays["time"][1] - arrays["time"][0])
        model = template.fit_linear_gaussian(traces, n_slices=n_slices)
        return cls(model, safety_config, n_slices, slice_dt)

    @classmethod
    def streaming_trainer(cls, safety_config: SafetyConfig | None = None,
                          n_slices: int = 3) -> "InjectorTrainer":
        """A fold-one-trace-at-a-time trainer (see :class:`InjectorTrainer`).

        The out-of-core counterpart of :meth:`train`: golden traces are
        folded into sufficient-statistics accumulators the moment each
        becomes available (campaign scenario order), so training
        overlaps golden collection and never holds more than one
        trace's training windows.  ``finish()`` reproduces the batch
        fit's CPDs (exact tabular counts; ~1e-12 relative for the
        linear-Gaussian weights and variances).
        """
        return InjectorTrainer(cls, safety_config, n_slices)

    # -- inference -----------------------------------------------------------
    #
    # The counterfactual follows the paper's factorization: the BN infers
    # how the *controller* responds to the corrupted belief (actuation at
    # slices 1 and 2), and the kinematic model propagates the *physical*
    # state.  Belief and physics share nodes in the golden traces (they
    # coincide without faults), so intervening on a belief node must not
    # be allowed to rewrite physics directly — a corrupted "lead speed"
    # does not move the real lead vehicle.

    #: Actuation nodes inferred from the mutilated network.
    _ACTUATION = ("throttle", "brake", "steering")
    _ACTUATION_BOUNDS = {"throttle": (0.0, 1.0), "brake": (0.0, 1.0),
                         "steering": (-0.55, 0.55)}
    #: The planner's lane-keeping authority: *inferred* steering
    #: responses (linear extrapolations of the learned CPDs) are clipped
    #: here, because the real planner clips its output.  An *injected*
    #: steering value bypasses the planner and keeps the physical range.
    _STEERING_AUTHORITY = 0.08

    def _engine_for(self, node: str) -> GaussianInference:
        """Engine on the graph mutilated for ``do(node@1, node@2)``.

        The corruption window spans two planner frames (the campaign
        default), so the belief is forced at both future slices.  Cutting
        the edges into the intervened nodes and conditioning on their
        values is the truncated-factorization semantics of ``do``.
        """
        if node not in self._engines:
            mutilated = self.model.copy()
            from ..bayesnet.cpd import LinearGaussianCPD
            for t in (1, 2):
                name = slice_node(node, t)
                mutilated.dag.remove_incoming_edges(name)
                mutilated.cpds[name] = LinearGaussianCPD(
                    name, intercept=0.0, variance=1.0)
            self._engines[node] = GaussianInference(mutilated)
        return self._engines[node]

    def _infer_actuation(self, scene: SceneRow, node: str,
                         node_value: float) -> dict[int, dict[str, float]]:
        """MLE of (throttle, brake, steering) at slices 1 and 2."""
        engine = self._engine_for(node)
        evidence = {slice_node(name, 0): scene.values[name]
                    for name in BN_VARIABLES}
        evidence[slice_node(node, 1)] = node_value
        evidence[slice_node(node, 2)] = node_value
        query = [slice_node(name, t)
                 for t in (1, 2) for name in self._ACTUATION
                 if name != node]
        estimate = engine.map_query(query, evidence) if query else {}
        result: dict[int, dict[str, float]] = {1: {}, 2: {}}
        for t in (1, 2):
            for name in self._ACTUATION:
                if name == node:
                    raw = node_value
                    low, high = self._ACTUATION_BOUNDS[name]
                else:
                    raw = estimate[slice_node(name, t)]
                    low, high = self._ACTUATION_BOUNDS[name]
                    if name == "steering":
                        low = -self._STEERING_AUTHORITY
                        high = self._STEERING_AUTHORITY
                result[t][name] = float(min(max(raw, low), high))
        return result

    def _dynamics(self, target: str) -> "LinearGaussianCPD":
        """The learned physical one-step dynamics CPD of ``target``."""
        return self.model.cpds[slice_node(target, 1)]

    def _step(self, cpd, values: Mapping[str, float]) -> float:
        """Evaluate a slice-1 CPD's mean with slice-0 parent values."""
        parents = {parent: values[parent.rsplit(SLICE_SEPARATOR, 1)[0]]
                   for parent in cpd.parents}
        return cpd.mean(parents)

    def predict_after_fault(self, scene: SceneRow, node: str,
                            node_value: float,
                            recovery: float = 0.25) -> dict[str, float]:
        """Physical kinematic state after ``do(f)`` plus recovery.

        The BN infers the actuation response; the kinematic model then
        propagates ``v`` through the corruption window *and* the
        controller's recovery latency, while the environment (gap to the
        real lead) evolves by the sensed ground truth — the paper's
        Eq. 2 -> Eq. 7 pipeline.  Returns the MLE of
        ``{v, gap, closing, lat, steering}`` at the worst rollout instant.
        """
        values = scene.values
        actuation = self._infer_actuation(scene, node, node_value)
        v_dynamics = self._dynamics("v")
        lat_dynamics = self._dynamics("lat")

        # Slice 1 physics follows the *observed* slice-0 actuation (the
        # fault fires at slice 1, whose commands act between 1 and 2).
        state0 = {name: values[name] for name in BN_VARIABLES}
        v_path = [values["v"], max(self._step(v_dynamics, state0), 0.0)]
        state1 = dict(state0)
        state1.update(actuation[1])
        state1["v"] = v_path[1]
        state1["lat"] = self._step(lat_dynamics, state0)
        v_path.append(max(self._step(v_dynamics, state1), 0.0))
        lat2 = self._step(lat_dynamics, state1)

        # Recovery phase: the stack unwinds the corruption over the
        # variable's recovery latency, so the rollout decays the faulted
        # commands linearly back to the scene's golden commands.
        extra_steps = max(int(round(recovery / self.slice_dt)), 0)
        for step in range(extra_steps):
            blend = (step + 1) / (extra_steps + 1)
            state = dict(state1)
            for name in self._ACTUATION:
                golden = scene.values[name]
                state[name] = ((1.0 - blend) * actuation[2][name]
                               + blend * golden)
            state["v"] = v_path[-1]
            v_path.append(max(self._step(v_dynamics, state), 0.0))

        # Environment: sensed ground truth, lead at constant speed.
        gt_gap = values["gt_gap"]
        lead_v = values["gt_lead_v"]
        if gt_gap >= 0.98 * SENSOR_RANGE or lead_v < 0.0:
            return {"v": v_path[2], "v_end": v_path[-1],
                    "gap": SENSOR_RANGE, "closing": 0.0,
                    "lat": lat2, "steering": actuation[2]["steering"]}
        gap = gt_gap
        gap_path = [gap]
        for i in range(1, len(v_path)):
            closing_step = ((v_path[i - 1] - lead_v)
                            + (v_path[i] - lead_v)) / 2.0
            gap -= closing_step * self.slice_dt
            gap_path.append(gap)
        # Report the rollout instant with the worst safety margin.
        worst = min(
            range(len(v_path)),
            key=lambda i: (gap_path[i] + lead_v ** 2
                           / (2.0 * self.safety_config.a_max)
                           - v_path[i] ** 2
                           / (2.0 * self.safety_config.a_max)))
        return {"v": v_path[worst], "v_end": v_path[-1],
                "gap": gap_path[worst],
                "closing": v_path[worst] - lead_v, "lat": lat2,
                "steering": actuation[2]["steering"]}

    def predicted_potential(self, scene: SceneRow, variable: str,
                            value: float) -> SafetyPotential:
        """``delta_hat_do(f)``: safety potential after the counterfactual.

        Longitudinal: BN-inferred actuation + kinematic propagation (the
        paper's pipeline).  Lateral: hazards are physical (off-road or
        side collision), so steering-type faults are scored by the
        predicted excursion of the corruption-and-recovery episode
        against the scene's lateral clearance.
        """
        mapping = NODE_MAPPING[variable]
        node = mapping.node
        node_value = mapping.transform(scene.values, value)
        estimate = self.predict_after_fault(scene, node, node_value,
                                            recovery=mapping.recovery)
        v_hat = max(estimate["v"], 0.0)
        gap_hat = max(estimate["gap"], 0.0)
        if gap_hat >= 0.98 * SENSOR_RANGE:
            gap_hat, lead_speed = SENSOR_RANGE, None
        else:
            lead_speed = max(v_hat - estimate["closing"], 0.0)
        stop = stopping_displacement(v_hat, 0.0, scene.values["steering"],
                                     self.safety_config)
        delta_long = (longitudinal_envelope(gap_hat, lead_speed,
                                            self.safety_config)
                      - stop.longitudinal)

        # Lateral hazards are physical (side collision or road
        # departure): score the corruption-and-recovery excursion against
        # the clearance on the drift side.  For steering-type faults the
        # excursion is the whole effect; for belief faults the excursion
        # of the (authority-clipped) inferred response plus the predicted
        # physical drift.
        phi_fault = estimate["steering"]
        excursion = steering_excursion(
            v=scene.values["v"], phi_fault=phi_fault,
            window=2.0 * self.slice_dt, config=self.safety_config)
        drift = (0.0 if node == "steering"
                 else estimate["lat"] - scene.values["lat"])
        direction = phi_fault if abs(phi_fault) > 1e-3 else drift
        if direction >= 0.0:
            clearance = scene.values["lat_free_up"]
        else:
            clearance = scene.values["lat_free_down"]
        delta_lat = clearance - excursion - abs(drift)
        return SafetyPotential(longitudinal=delta_long, lateral=delta_lat)

    # -- batched inference ----------------------------------------------------
    #
    # For a linear-Gaussian network the posterior mean is affine in the
    # evidence vector, and the evidence *set* of the counterfactual is
    # fixed per mutilated graph (all slice-0 nodes plus the intervened
    # node at slices 1 and 2).  Precomputing that affine map turns the
    # per-candidate O(n^3) conditioning of the scalar path into one
    # matmul over all (scene, value) candidates of a node; the kinematic
    # rollout and safety re-evaluation vectorize the same way.  The
    # scalar methods above remain the reference oracle — the batched
    # path must reproduce them to within float round-off.

    def _affine_for(self, node: str) -> tuple[list[str], np.ndarray,
                                              np.ndarray]:
        """Cached actuation-posterior map of the graph mutilated at ``node``.

        Returns ``(query, gain, offset)`` with the queried actuation
        means given by ``evidence @ gain.T + offset``, evidence columns
        ordered as all slice-0 BN variables then ``node@1``, ``node@2``.
        """
        cached = self._affines.get(node)
        if cached is None:
            engine = self._engine_for(node)
            evidence_vars = [slice_node(name, 0) for name in BN_VARIABLES]
            evidence_vars += [slice_node(node, 1), slice_node(node, 2)]
            query = [slice_node(name, t) for t in (1, 2)
                     for name in self._ACTUATION if name != node]
            gain, offset = engine.affine_map(query, evidence_vars)
            cached = (query, gain, offset)
            self._affines[node] = cached
        return cached

    def _stacked_affine(self, nodes: tuple[str, ...]) -> tuple:
        """Fused affine maps: every node's scene-gain block in one matrix.

        The evidence of each node's affine map splits into the shared
        slice-0 scene vector and the node's own intervention value (fed
        to both ``node@1`` and ``node@2``); stacking the scene-gain
        blocks of all nodes lets a single ``scene_matrix @ stack.T``
        matmul compute every node's scene-dependent posterior term at
        once (the ROADMAP "batch multiple nodes' matmuls" item).
        Returns ``(stacked_gain, per_node)`` where ``per_node`` maps node
        -> (query order, column slice into the stack, value gain,
        offset).
        """
        key = tuple(nodes)
        cached = self._stacked.get(key)
        if cached is None:
            blocks = []
            per_node: dict[str, tuple] = {}
            start = 0
            for node in key:
                query, gain, offset = self._affine_for(node)
                scene_gain = gain[:, :len(BN_VARIABLES)]
                value_gain = gain[:, -2] + gain[:, -1]
                blocks.append(scene_gain)
                per_node[node] = (query,
                                  slice(start, start + len(query)),
                                  value_gain, offset)
                start += len(query)
            cached = (np.vstack(blocks), per_node)
            self._stacked[key] = cached
        return cached

    def _step_batch(self, cpd, columns: Mapping[str, np.ndarray]
                    ) -> np.ndarray:
        """Vectorized :meth:`_step`: a slice-1 CPD mean over column arrays."""
        total = np.full(len(columns["v"]), cpd.intercept)
        for parent, weight in zip(cpd.parents, cpd.weights):
            base = parent.rsplit(SLICE_SEPARATOR, 1)[0]
            total = total + weight * columns[base]
        return total

    def _batch_stop_longitudinal(self, v_hat: np.ndarray,
                                 phi: np.ndarray) -> np.ndarray:
        """Vectorized emergency-stop displacement at heading 0.

        Quantizes exactly like :func:`stopping_displacement` and feeds
        the unique (v, phi) pairs through the same cached RK4 kernel, so
        every element matches the scalar call bit for bit.
        """
        config = self.safety_config
        v_q = np.round(np.maximum(v_hat, 0.0) / 0.05) * 0.05
        phi_q = np.round(phi / 5e-4) * 5e-4
        pairs = np.column_stack([v_q, phi_q])
        unique, inverse = np.unique(pairs, axis=0, return_inverse=True)
        stops = np.array([
            _canonical_stop(float(v), float(p), config.a_max,
                            config.wheelbase, config.integration_dt,
                            config.lateral_window,
                            config.max_maneuver_time)[0]
            for v, p in unique])
        return stops[np.ravel(inverse)]

    def _batch_excursion(self, v: np.ndarray,
                         phi_fault: np.ndarray) -> np.ndarray:
        """Vectorized :func:`steering_excursion` over the candidate batch."""
        config = self.safety_config
        window = 2.0 * self.slice_dt
        window_q = round(window / 0.05) * 0.05
        v_q = np.round(np.maximum(v, 0.0) / 0.1) * 0.1
        phi_q = np.round(phi_fault / 1e-3) * 1e-3
        pairs = np.column_stack([v_q, phi_q])
        unique, inverse = np.unique(pairs, axis=0, return_inverse=True)
        peaks = np.array([
            _excursion_rollout(float(v_i), float(p_i), window_q, 0.6, 0.08,
                               config.wheelbase, 0.01, 5.0)
            for v_i, p_i in unique])
        return peaks[np.ravel(inverse)]

    def _score_candidates(self, cols: Mapping[str, np.ndarray],
                          node: str, node_values: np.ndarray,
                          recovery: float,
                          posterior: tuple[list[str], np.ndarray] | None
                          = None) -> tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`predicted_potential` over aligned candidate arrays.

        ``cols`` holds the scene columns (one row per candidate) and
        ``node_values`` the already-transformed BN intervention values.
        ``posterior`` optionally supplies the actuation-posterior means
        as ``(query order, estimate matrix)`` — the fused miner computes
        those for every node with one stacked matmul; when absent the
        per-node affine map is applied here.  Returns ``(delta_long,
        delta_lat)`` arrays.
        """
        n = len(node_values)
        if posterior is None:
            query, gain, offset = self._affine_for(node)
            evidence = np.empty((n, len(BN_VARIABLES) + 2))
            for j, name in enumerate(BN_VARIABLES):
                evidence[:, j] = cols[name]
            evidence[:, -2] = node_values
            evidence[:, -1] = node_values
            estimate = evidence @ gain.T + offset
        else:
            query, estimate = posterior
        column_of = {name: i for i, name in enumerate(query)}

        actuation: dict[int, dict[str, np.ndarray]] = {1: {}, 2: {}}
        for t in (1, 2):
            for name in self._ACTUATION:
                low, high = self._ACTUATION_BOUNDS[name]
                if name == node:
                    raw = node_values
                else:
                    raw = estimate[:, column_of[slice_node(name, t)]]
                    if name == "steering":
                        low = -self._STEERING_AUTHORITY
                        high = self._STEERING_AUTHORITY
                actuation[t][name] = np.clip(raw, low, high)

        # Kinematic rollout (the vectorized twin of predict_after_fault).
        v_dynamics = self._dynamics("v")
        lat_dynamics = self._dynamics("lat")
        state0 = {name: cols[name] for name in BN_VARIABLES}
        v_path = [state0["v"],
                  np.maximum(self._step_batch(v_dynamics, state0), 0.0)]
        state1 = dict(state0)
        state1.update(actuation[1])
        state1["v"] = v_path[1]
        state1["lat"] = self._step_batch(lat_dynamics, state0)
        v_path.append(np.maximum(self._step_batch(v_dynamics, state1), 0.0))
        lat2 = self._step_batch(lat_dynamics, state1)

        extra_steps = max(int(round(recovery / self.slice_dt)), 0)
        for step in range(extra_steps):
            blend = (step + 1) / (extra_steps + 1)
            state = dict(state1)
            for name in self._ACTUATION:
                state[name] = ((1.0 - blend) * actuation[2][name]
                               + blend * cols[name])
            state["v"] = v_path[-1]
            v_path.append(np.maximum(self._step_batch(v_dynamics, state),
                                     0.0))

        gt_gap = cols["gt_gap"]
        lead_v = cols["gt_lead_v"]
        clear = (gt_gap >= 0.98 * SENSOR_RANGE) | (lead_v < 0.0)
        gap = gt_gap
        gap_path = [gap]
        for i in range(1, len(v_path)):
            closing_step = ((v_path[i - 1] - lead_v)
                            + (v_path[i] - lead_v)) / 2.0
            gap = gap - closing_step * self.slice_dt
            gap_path.append(gap)
        denom = 2.0 * self.safety_config.a_max
        keys = np.stack([gap_path[i] + lead_v ** 2 / denom
                         - v_path[i] ** 2 / denom
                         for i in range(len(v_path))])
        worst = np.argmin(keys, axis=0)
        rows = np.arange(n)
        v_worst = np.stack(v_path)[worst, rows]
        gap_worst = np.stack(gap_path)[worst, rows]
        v_sel = np.where(clear, v_path[2], v_worst)
        gap_sel = np.where(clear, SENSOR_RANGE, gap_worst)
        closing_sel = np.where(clear, 0.0, v_worst - lead_v)

        # Longitudinal potential (vectorized predicted_potential).
        v_hat = np.maximum(v_sel, 0.0)
        gap_hat = np.maximum(gap_sel, 0.0)
        far = gap_hat >= 0.98 * SENSOR_RANGE
        lead_speed = np.maximum(v_hat - closing_sel, 0.0)
        envelope = np.where(far, SENSOR_RANGE,
                            gap_hat + np.maximum(lead_speed, 0.0) ** 2
                            / denom)
        stop_long = self._batch_stop_longitudinal(v_hat, cols["steering"])
        delta_long = envelope - stop_long

        # Lateral potential.
        phi_fault = actuation[2]["steering"]
        excursion = self._batch_excursion(cols["v"], phi_fault)
        if node == "steering":
            drift = np.zeros(n)
        else:
            drift = lat2 - cols["lat"]
        direction = np.where(np.abs(phi_fault) > 1e-3, phi_fault, drift)
        clearance = np.where(direction >= 0.0, cols["lat_free_up"],
                             cols["lat_free_down"])
        delta_lat = clearance - excursion - np.abs(drift)
        return delta_long, delta_lat

    def mine_critical_faults_batched(
            self, scenes: Iterable[SceneRow],
            variables: tuple[str, ...] = MINED_VARIABLES,
            threshold: float = 0.0, top_k: int | None = None,
            fuse_nodes: bool = True
            ) -> tuple[list[CandidateFault], MiningReport]:
        """Vectorized :meth:`mine_critical_faults` (the production path).

        Scores all scenes x corruption values of each BN node with one
        affine matmul plus a vectorized kinematic rollout, instead of one
        full Gaussian conditioning per candidate.  ``scenes`` may be any
        iterable (e.g. the lazy :meth:`Campaign.scene_rows` stream); it
        is consumed in one pass straight into the columnar batch.  With
        ``fuse_nodes`` (the default) the per-node matmuls collapse
        further into a single stacked matmul over every node's
        scene-gain block (see :meth:`_stacked_affine`); ``False`` keeps
        one matmul per node.  Both reproduce the scalar oracle's
        ``F_crit`` and predicted potentials to float round-off (see the
        equivalence suite), candidate order included.
        """
        report = MiningReport()
        start = time.perf_counter()
        critical, report.n_scored, report.n_scenes = self._mine_batched(
            scenes, variables, threshold, fuse_nodes)
        critical.sort(key=lambda c: c.predicted_minimum)
        if top_k is not None:
            critical = critical[:top_k]
        report.n_critical = len(critical)
        report.wall_seconds = time.perf_counter() - start
        return critical, report

    def _mine_batched(self, scenes: Iterable[SceneRow],
                      variables: tuple[str, ...], threshold: float,
                      fuse_nodes: bool
                      ) -> tuple[list[CandidateFault], int, int]:
        """Unsorted batched ``F_crit``, the scored count, the scene count.

        Candidates append scene-major, (variable, value)-minor — the
        scalar loop's iteration order — so callers that concatenate
        per-scenario results in scenario order and stable-sort by
        ``predicted_minimum`` reproduce the global miner's output.
        The scene stream is consumed exactly once: safe scenes flow
        straight into the columnar batch, unsafe ones are counted and
        dropped.
        """
        critical: list[CandidateFault] = []
        n_scored = 0
        n_scenes = 0

        def safe_stream() -> Iterator[SceneRow]:
            nonlocal n_scenes
            for scene in scenes:
                n_scenes += 1
                if scene.observed_safe:
                    yield scene

        batch = _SceneBatch(safe_stream())
        if batch.n:
            per_node = None
            scene_base = None
            if fuse_nodes:
                nodes = tuple(dict.fromkeys(
                    NODE_MAPPING[v].node for v in variables))
                stacked_gain, per_node = self._stacked_affine(nodes)
                scene_matrix = np.column_stack(
                    [batch.cols[name] for name in BN_VARIABLES])
                # One matmul covers the scene-dependent posterior term of
                # every mined node; per-variable scoring below only adds
                # the rank-1 intervention-value term.
                scene_base = scene_matrix @ stacked_gain.T
            combos: list[tuple[str, float, np.ndarray, np.ndarray]] = []
            for variable in variables:
                mapping = NODE_MAPPING[variable]
                transform = _BATCH_TRANSFORMS[mapping.transform]
                values = [float(v) for v in
                          variable_by_name(variable).corruption_values()]
                node_values = np.concatenate([
                    transform(batch.cols,
                              np.full(batch.n, value, dtype=float))
                    for value in values])
                posterior = None
                if per_node is not None:
                    query, columns, value_gain, offset = \
                        per_node[mapping.node]
                    estimate = (np.tile(scene_base[:, columns],
                                        (len(values), 1))
                                + node_values[:, None] * value_gain
                                + offset)
                    posterior = (query, estimate)
                delta_long, delta_lat = self._score_candidates(
                    batch.tiled(len(values)), mapping.node, node_values,
                    mapping.recovery, posterior=posterior)
                for k, value in enumerate(values):
                    block = slice(k * batch.n, (k + 1) * batch.n)
                    combos.append((variable, value, delta_long[block],
                                   delta_lat[block]))
                    n_scored += batch.n
            minima = np.stack([np.minimum(d_long, d_lat)
                               for _, _, d_long, d_lat in combos])
            # nonzero on the transpose walks scene-major, combo-minor —
            # the scalar loop's iteration order, so sort ties resolve
            # identically.
            scene_hits, combo_hits = np.nonzero(minima.T <= threshold)
            for s_i, c_i in zip(scene_hits.tolist(), combo_hits.tolist()):
                variable, value, d_long, d_lat = combos[c_i]
                scenario, injection_tick, obs_long, obs_lat = \
                    batch.identities[s_i]
                critical.append(CandidateFault(
                    scenario=scenario,
                    injection_tick=injection_tick,
                    variable=variable,
                    value=value,
                    predicted_delta_long=float(d_long[s_i]),
                    predicted_delta_lat=float(d_lat[s_i]),
                    observed_delta_long=obs_long,
                    observed_delta_lat=obs_lat))
        return critical, n_scored, n_scenes

    # -- mining ---------------------------------------------------------------

    def mine_critical_faults(self, scenes: Iterable[SceneRow],
                             variables: tuple[str, ...] = MINED_VARIABLES,
                             threshold: float = 0.0,
                             top_k: int | None = None
                             ) -> tuple[list[CandidateFault], MiningReport]:
        """Score every (scene, variable, min/max value); return ``F_crit``.

        A candidate is critical when the scene was safe
        (``delta > 0``) and the predicted potential after ``do(f)`` is at
        or below ``threshold``.  ``scenes`` may be any iterable; it is
        consumed once, one row at a time.  Results are sorted
        most-critical first.
        """
        report = MiningReport()
        start = time.perf_counter()
        critical, report.n_scored, report.n_scenes = self._mine_scalar(
            scenes, variables, threshold)
        critical.sort(key=lambda c: c.predicted_minimum)
        if top_k is not None:
            critical = critical[:top_k]
        report.n_critical = len(critical)
        report.wall_seconds = time.perf_counter() - start
        return critical, report

    def _mine_scalar(self, scenes: Iterable[SceneRow],
                     variables: tuple[str, ...], threshold: float
                     ) -> tuple[list[CandidateFault], int, int]:
        """Unsorted scalar-oracle ``F_crit``, scored count, scene count."""
        critical: list[CandidateFault] = []
        n_scored = 0
        n_scenes = 0
        for scene in scenes:
            n_scenes += 1
            if not scene.observed_safe:
                continue
            for variable in variables:
                for value in variable_by_name(variable).corruption_values():
                    n_scored += 1
                    potential = self.predicted_potential(scene, variable,
                                                         float(value))
                    if potential.minimum <= threshold:
                        critical.append(CandidateFault(
                            scenario=scene.scenario,
                            injection_tick=scene.injection_tick,
                            variable=variable,
                            value=float(value),
                            predicted_delta_long=potential.longitudinal,
                            predicted_delta_lat=potential.lateral,
                            observed_delta_long=scene.observed_delta_long,
                            observed_delta_lat=scene.observed_delta_lat))
        return critical, n_scored, n_scenes

    def mine_scenario_candidates(
            self, scenes: Iterable[SceneRow],
            variables: tuple[str, ...] = MINED_VARIABLES,
            threshold: float = 0.0, use_batched: bool = True,
            fuse_nodes: bool = True
            ) -> tuple[list[CandidateFault], int, int]:
        """Per-scenario mining entry point for the streaming pipeline.

        Mines one scenario's scene-row *stream* in isolation — no global
        golden dict required, no per-scenario row list materialized —
        returning the *unsorted* (scene-major append order) critical
        candidates plus the number of (scene, variable, value)
        combinations scored and the number of scenes consumed.
        Concatenating per-scenario results in campaign scenario order
        and stable-sorting the union by ``predicted_minimum`` reproduces
        the global miner's candidate list, which is the equivalence the
        pipeline driver relies on.
        """
        if use_batched:
            return self._mine_batched(scenes, variables, threshold,
                                      fuse_nodes)
        return self._mine_scalar(scenes, variables, threshold)
