"""Checkpoint-resume support for the experiment engine.

Every injection experiment shares a bit-identical fault-free prefix with
the golden run of its scenario (the stack is deterministic given the
seed, and armed faults are inert before their start tick).  Capturing
the joint (world, pipeline) state at the eligible injection ticks of the
golden run lets validation fork each experiment from its prefix instead
of re-simulating from tick 0 — the snapshot-and-fork trick DriveFI/AVFI
use to inject into a *running* stack.

A :class:`Checkpoint` is picklable, so stores survive process-pool fan
out (workers inherit them through ``fork``) and ship across hosts.
:class:`CheckpointStore` resolves an injection tick to the nearest
checkpoint at or before it, which is what makes sparse capture strides
safe: the resumed run simply replays the short gap fault-free before the
fault window opens.

Stores also persist to disk (:meth:`CheckpointStore.save` /
:meth:`CheckpointStore.load`): one pickle file per scenario plus a JSON
index.  That removes the dependence on ``fork`` inheritance — pool
workers on spawn-only platforms load the store from the shared directory
instead of receiving it through the forked address space — and lets
warm-started campaigns reuse checkpoint ladders across processes instead
of re-simulating them.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from bisect import bisect_right
from dataclasses import dataclass
from pathlib import Path

from ..ads.runtime import PipelineSnapshot
from ..sim.world import WorldSnapshot
from .ioutil import write_bytes_atomic

_INDEX_NAME = "index.json"
_FORMAT_VERSION = 1


@dataclass(frozen=True)
class Checkpoint:
    """Joint world + ADS state immediately *before* executing ``tick``.

    Resuming means restoring both snapshots into freshly built objects
    and running the loop from ``tick`` onward; the result is bit-for-bit
    the suffix of a full replay with the same seed.
    """

    scenario: str
    seed: int
    tick: int
    world: WorldSnapshot
    pipeline: PipelineSnapshot


class CheckpointStore:
    """Checkpoints of one campaign's golden runs, indexed for resume."""

    def __init__(self):
        self._by_scenario: dict[str, dict[int, Checkpoint]] = {}
        self._sorted_ticks: dict[str, list[int]] = {}

    def __len__(self) -> int:
        return sum(len(ticks) for ticks in self._by_scenario.values())

    def add(self, checkpoint: Checkpoint) -> None:
        """Register one checkpoint (replaces any previous one at its tick)."""
        per_scenario = self._by_scenario.setdefault(checkpoint.scenario, {})
        per_scenario[checkpoint.tick] = checkpoint
        self._sorted_ticks.pop(checkpoint.scenario, None)

    def add_all(self, checkpoints) -> None:
        """Register an iterable (or tick-keyed mapping) of checkpoints."""
        values = (checkpoints.values() if isinstance(checkpoints, dict)
                  else checkpoints)
        for checkpoint in values:
            self.add(checkpoint)

    def ticks(self, scenario: str) -> list[int]:
        """Captured ticks of a scenario, ascending."""
        cached = self._sorted_ticks.get(scenario)
        if cached is None:
            cached = sorted(self._by_scenario.get(scenario, ()))
            self._sorted_ticks[scenario] = cached
        return cached

    def has_scenario(self, scenario: str) -> bool:
        """True when at least one checkpoint of the scenario is stored."""
        return bool(self._by_scenario.get(scenario))

    def nearest(self, scenario: str, tick: int) -> Checkpoint | None:
        """The latest checkpoint at or before ``tick`` (None if absent).

        This is the stride fallback: a fault at an uncaptured tick
        resumes from the nearest earlier snapshot and replays the short
        fault-free gap.
        """
        ticks = self.ticks(scenario)
        index = bisect_right(ticks, tick)
        if index == 0:
            return None
        return self._by_scenario[scenario][ticks[index - 1]]

    def drop_scenario(self, scenario: str) -> None:
        """Evict one scenario's ladder from memory (persisted copies stay).

        The spill half of the pipeline driver's out-of-core ladders: a
        ladder is spooled to disk (:meth:`save_scenario`) the moment its
        golden run lands and dropped here, so driver-resident ladder
        memory stays O(one scenario) instead of O(campaign).  Dropping
        a scenario that was never stored is a no-op.
        """
        self._by_scenario.pop(scenario, None)
        self._sorted_ticks.pop(scenario, None)

    def scenarios(self) -> list[str]:
        """Scenario names with at least one stored checkpoint, sorted."""
        return sorted(name for name, ladder in self._by_scenario.items()
                      if ladder)

    # -- disk persistence ------------------------------------------------------

    @staticmethod
    def _scenario_filename(scenario: str) -> str:
        """Filesystem-safe per-scenario file name (names may be arbitrary)."""
        digest = hashlib.sha256(scenario.encode("utf-8")).hexdigest()[:16]
        return f"ckpt-{digest}.pkl"

    def save(self, directory: str | Path) -> Path:
        """Persist the store: one pickle per scenario plus a JSON index.

        The per-scenario layout lets readers pull exactly the ladders
        they need (:meth:`load_scenario`) — a validation worker touching
        two scenarios never deserializes the other fifty.  Returns the
        directory written.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        index = {"version": _FORMAT_VERSION, "scenarios": {}}
        for scenario in self.scenarios():
            filename = self._scenario_filename(scenario)
            ladder = self._by_scenario[scenario]
            (directory / filename).write_bytes(
                pickle.dumps(ladder, protocol=pickle.HIGHEST_PROTOCOL))
            index["scenarios"][scenario] = {
                "file": filename, "ticks": sorted(ladder)}
        (directory / _INDEX_NAME).write_text(json.dumps(index, indent=1))
        return directory

    def save_scenario(self, directory: str | Path, scenario: str) -> Path:
        """Persist one scenario's ladder into a saved-store layout.

        The incremental counterpart of :meth:`save`: the streaming
        campaign pipeline spools each scenario's ladder to disk as its
        golden run completes, so pool workers (which existed before the
        ladder did) can pull it with :meth:`load_scenario` instead of
        depending on ``fork`` inheritance.  Both the pickle and the
        index are written atomically (temp file + rename), so a reader
        racing a writer sees either the old or the new state — a failed
        read falls back to full replay, which is bit-identical anyway.
        Returns the directory written.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        ladder = self._by_scenario.get(scenario, {})
        filename = self._scenario_filename(scenario)
        write_bytes_atomic(directory / filename,
                           pickle.dumps(ladder,
                                        protocol=pickle.HIGHEST_PROTOCOL))
        index = self._read_index(directory)
        if index is None:
            index = {"version": _FORMAT_VERSION, "scenarios": {}}
        index["scenarios"][scenario] = {"file": filename,
                                        "ticks": sorted(ladder)}
        write_bytes_atomic(directory / _INDEX_NAME,
                           json.dumps(index, indent=1).encode("utf-8"))
        return directory

    @classmethod
    def load(cls, directory: str | Path) -> "CheckpointStore | None":
        """Rebuild a store from :meth:`save` output; ``None`` if unreadable."""
        index = cls._read_index(directory)
        if index is None:
            return None
        store = cls()
        for scenario in index["scenarios"]:
            if not store._load_indexed(directory, index, scenario):
                return None
        return store

    def load_scenario(self, directory: str | Path, scenario: str) -> bool:
        """Load one scenario's ladder from a saved store into this one.

        Returns True when the ladder was found and merged; a missing or
        corrupt file returns False and leaves the store unchanged — the
        caller then falls back to re-capturing, the safe direction.
        """
        index = self._read_index(directory)
        if index is None:
            return False
        return self._load_indexed(directory, index, scenario)

    def _load_indexed(self, directory: str | Path, index: dict,
                      scenario: str) -> bool:
        """Merge one ladder using an already-parsed index."""
        entry = index["scenarios"].get(scenario)
        if entry is None:
            return False
        path = Path(directory) / entry["file"]
        try:
            ladder = pickle.loads(path.read_bytes())
        except (OSError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError):
            return False
        if not isinstance(ladder, dict):
            return False
        self.add_all(ladder)
        return True

    @classmethod
    def saved_scenarios(cls, directory: str | Path) -> set[str]:
        """Scenario names a persisted store covers (empty if unreadable)."""
        index = cls._read_index(directory)
        return set() if index is None else set(index["scenarios"])

    @staticmethod
    def _read_index(directory: str | Path) -> dict | None:
        path = Path(directory) / _INDEX_NAME
        try:
            index = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if (not isinstance(index, dict)
                or index.get("version") != _FORMAT_VERSION
                or not isinstance(index.get("scenarios"), dict)):
            return None
        return index
