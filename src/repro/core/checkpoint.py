"""Checkpoint-resume support for the experiment engine.

Every injection experiment shares a bit-identical fault-free prefix with
the golden run of its scenario (the stack is deterministic given the
seed, and armed faults are inert before their start tick).  Capturing
the joint (world, pipeline) state at the eligible injection ticks of the
golden run lets validation fork each experiment from its prefix instead
of re-simulating from tick 0 — the snapshot-and-fork trick DriveFI/AVFI
use to inject into a *running* stack.

A :class:`Checkpoint` is picklable, so stores survive process-pool fan
out (workers inherit them through ``fork``) and could be shipped across
hosts.  :class:`CheckpointStore` resolves an injection tick to the
nearest checkpoint at or before it, which is what makes sparse capture
strides safe: the resumed run simply replays the short gap fault-free
before the fault window opens.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from ..ads.runtime import PipelineSnapshot
from ..sim.world import WorldSnapshot


@dataclass(frozen=True)
class Checkpoint:
    """Joint world + ADS state immediately *before* executing ``tick``.

    Resuming means restoring both snapshots into freshly built objects
    and running the loop from ``tick`` onward; the result is bit-for-bit
    the suffix of a full replay with the same seed.
    """

    scenario: str
    seed: int
    tick: int
    world: WorldSnapshot
    pipeline: PipelineSnapshot


class CheckpointStore:
    """Checkpoints of one campaign's golden runs, indexed for resume."""

    def __init__(self):
        self._by_scenario: dict[str, dict[int, Checkpoint]] = {}
        self._sorted_ticks: dict[str, list[int]] = {}

    def __len__(self) -> int:
        return sum(len(ticks) for ticks in self._by_scenario.values())

    def add(self, checkpoint: Checkpoint) -> None:
        """Register one checkpoint (replaces any previous one at its tick)."""
        per_scenario = self._by_scenario.setdefault(checkpoint.scenario, {})
        per_scenario[checkpoint.tick] = checkpoint
        self._sorted_ticks.pop(checkpoint.scenario, None)

    def add_all(self, checkpoints) -> None:
        """Register an iterable (or tick-keyed mapping) of checkpoints."""
        values = (checkpoints.values() if isinstance(checkpoints, dict)
                  else checkpoints)
        for checkpoint in values:
            self.add(checkpoint)

    def ticks(self, scenario: str) -> list[int]:
        """Captured ticks of a scenario, ascending."""
        cached = self._sorted_ticks.get(scenario)
        if cached is None:
            cached = sorted(self._by_scenario.get(scenario, ()))
            self._sorted_ticks[scenario] = cached
        return cached

    def has_scenario(self, scenario: str) -> bool:
        """True when at least one checkpoint of the scenario is stored."""
        return bool(self._by_scenario.get(scenario))

    def nearest(self, scenario: str, tick: int) -> Checkpoint | None:
        """The latest checkpoint at or before ``tick`` (None if absent).

        This is the stride fallback: a fault at an uncaptured tick
        resumes from the nearest earlier snapshot and replays the short
        fault-free gap.
        """
        ticks = self.ticks(scenario)
        index = bisect_right(ticks, tick)
        if index == 0:
            return None
        return self._by_scenario[scenario][ticks[index - 1]]
