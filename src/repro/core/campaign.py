"""Campaign orchestration: random, exhaustive, architectural, Bayesian.

A *scene* is a (scenario, planner tick) pair drawn from the golden runs.
All four campaign styles inject into the same scene population with the
same transient-fault duration, so their hazard yields are comparable —
that comparison *is* the paper's headline result.
"""

from __future__ import annotations

import functools
import hashlib
import tempfile
import time
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from ..ads.profiling import STAGE_TIMER
from ..ads.runtime import ADSConfig
from ..arch.injector import Outcome
from ..sim.scenario import Scenario, default_scenarios
from .bayesian_fi import (MINED_VARIABLES, BayesianFaultInjector,
                          CandidateFault, MiningReport, SceneRow,
                          scene_rows_from_trace)
from .checkpoint import CheckpointStore
from .fault_models import (DEFAULT_VARIABLES, ArchitecturalFaultModel,
                           minmax_fault_grid, random_fault)
from .interface_faults import (interface_fault, interface_fault_grid,
                               random_interface_fault,
                               validate_interface_channel,
                               validate_interface_kind)
from .parallel import (ExperimentJob, collect_golden_runs,
                       execute_experiment, run_experiments)
from .resilience import CampaignJournal, ResilienceConfig
from .results import CampaignSummary, ExperimentRecord
from .safety import SafetyConfig
from .simulate import FaultSpec, RunResult, run_scenario


@dataclass(frozen=True)
class CampaignConfig:
    """Shared experiment parameters."""

    ads: ADSConfig = field(default_factory=ADSConfig)
    safety: SafetyConfig = field(default_factory=SafetyConfig)
    #: Corrupted outputs persist for two planner frames by default: the
    #: downstream consumer latches the last value it read, so a corrupted
    #: output written at frame k is still consumed during frame k+1.
    fault_duration_ticks: int = 4
    horizon_after_fault: float = 8.0       # s of post-fault monitoring
    injection_window_start: float = 2.0    # s: skip the startup transient
    injection_window_margin: float = 9.0   # s kept free at scenario end
    seed: int = 0
    #: Validation forks every experiment from a golden-prefix checkpoint
    #: (False keeps full replay from tick 0 as the reference oracle).
    use_checkpoints: bool = True
    #: Capture a snapshot every Nth eligible injection tick.  Faults at
    #: uncaptured ticks resume from the nearest earlier snapshot and
    #: replay the short fault-free gap.
    checkpoint_stride: int = 1
    #: Cross-host sharding: this process owns every scenario whose index
    #: satisfies ``index % shard_count == shard_index``.  The default
    #: (0 of 1) is an unsharded campaign.  Sharded campaigns run on the
    #: pipeline driver; see :mod:`repro.core.pipeline` for the exact
    #: partition semantics per campaign style.
    shard_index: int = 0
    shard_count: int = 1
    #: Supervision, durable resume, and lease knobs
    #: (:class:`repro.core.resilience.ResilienceConfig`).  Deliberately
    #: outside the cache fingerprint: how a campaign survives
    #: infrastructure faults does not change what it computes.
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    #: Lanes per fused numpy batch during validation: values > 1 step up
    #: to that many same-scenario experiments per
    #: :func:`repro.core.simulate.run_experiments_batched` call instead
    #: of one :class:`~repro.sim.world.World` each.  0 (the default)
    #: keeps the scalar engine — the bit-for-bit reference oracle — and
    #: the batched records are test-enforced identical to it, so this
    #: too sits outside the cache fingerprint: *how* experiments are
    #: stepped does not change what they compute.
    batch_sim: int = 0
    #: Collect per-stage wall-clock counters around the five ADS stages
    #: (:data:`repro.ads.profiling.STAGES`) during validation, surfaced
    #: as the ``stage_timings`` block of the summary's ``extra_info``.
    #: Observability only — outside the cache fingerprint, and the
    #: counters cover calling-process work (profile with ``workers=1``
    #: to attribute everything; see :mod:`repro.ads.profiling`).
    profile_stages: bool = False

    def __post_init__(self):
        if self.shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, "
                             f"got {self.shard_count}")
        if not 0 <= self.shard_index < self.shard_count:
            raise ValueError(
                f"shard_index must be in [0, {self.shard_count}), "
                f"got {self.shard_index}")
        if self.batch_sim < 0:
            raise ValueError(f"batch_sim must be >= 0, "
                             f"got {self.batch_sim}")


class Campaign:
    """Runs fault-injection campaigns over a scenario set.

    ``cache_dir`` enables incremental campaigns: golden traces, mined
    candidates, *and checkpoint ladders* are persisted there, keyed by a
    fingerprint of the configuration and scenario set, and re-used on
    the next run instead of being recomputed.  Every campaign style
    takes ``workers=`` (sharding both golden collection and validation)
    and ``record_sink=`` (streaming records out-of-core instead of
    accumulating them in memory).

    ``trace_store`` bounds golden-trace memory: ``True`` spools every
    completed golden trace to memory-mappable columnar files (under
    ``cache_dir`` when set, else a temporary directory) and the
    campaign holds read-only :class:`repro.sim.StoredTrace` handles
    instead of in-RAM traces — peak resident trace memory becomes
    O(largest single trace) rather than O(total traces), with every
    downstream number bit-for-bit unchanged.  A path spools under that
    directory instead.  ``None``/``False`` (the default) keeps the
    in-RAM :class:`repro.sim.Trace` path as the reference oracle.
    """

    def __init__(self, scenarios: list[Scenario] | None = None,
                 config: CampaignConfig | None = None,
                 cache_dir: str | Path | None = None,
                 trace_store: bool | str | Path | None = None):
        self.scenarios = scenarios or default_scenarios()
        self.config = config or CampaignConfig()
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._trace_store_arg = trace_store
        self._trace_store = None
        self._trace_tmp = None
        self.checkpoints = CheckpointStore()
        self._by_name = {s.name: s for s in self.scenarios}
        self._golden: dict[str, RunResult] | None = None
        #: Shard-local golden subset memo (pipeline runs on a sharded
        #: campaign collect only owned scenarios, so ``_golden`` — the
        #: full set — stays unset).
        self._golden_shard: dict[str, RunResult] | None = None
        self._ticks: dict[tuple[str, float, int], list[int]] = {}
        self._ladder_tmp = None
        #: The completion journal of the most recent campaign run (the
        #: resume tests assert zero re-execution through its counters).
        self._last_journal: CampaignJournal | None = None

    # -- golden runs -----------------------------------------------------------

    def golden_runs(self, workers: int | None = None) -> dict[str, RunResult]:
        """Fault-free reference runs (cached, warm-started from disk).

        When the campaign simulates them itself it also captures the
        per-scenario checkpoint ladders validation resumes from, and
        ``workers`` shards the collection over the process pool — each
        worker simulates its scenario's golden trace *and* ladder, and
        the result is scenario-for-scenario identical to the serial loop
        (``workers=None``, the oracle).  Traces loaded from
        ``cache_dir`` skip simulation entirely; their checkpoints are
        then warm-started from the persisted store (or rebuilt lazily)
        per scenario the first time jobs need them.
        """
        if self._golden is None:
            loaded = self._load_golden_cache()
            if loaded is not None:
                self._golden = loaded
            else:
                capture: dict[str, list[int] | None] = {}
                if self.config.use_checkpoints:
                    capture = {
                        s.name: self._capture_ticks(s)
                        for s in self.scenarios
                        if not self.checkpoints.has_scenario(s.name)}
                store = self.golden_trace_store()
                self._golden = collect_golden_runs(
                    self.scenarios, self.config, capture, workers=workers,
                    trace_spool=store.root if store is not None else None)
                for run in self._golden.values():
                    if run.checkpoints:
                        self.checkpoints.add_all(run.checkpoints)
                self._pin_spool(self._golden)
                self._save_golden_cache()
                self._save_checkpoint_cache()
        return self._golden

    def golden_trace_store(self):
        """The out-of-core golden-trace spool (``None`` = in-RAM oracle).

        Resolved lazily from the ``trace_store`` constructor argument:
        ``True`` keys a ``traces-<fingerprint>`` directory under
        ``cache_dir`` (persistent — warm starts re-map the same files)
        or a temporary directory without one; an explicit path keys the
        same fingerprinted directory under it.  The fingerprint key
        means a config or scenario change can never re-attach stale
        spool files, and concurrent shards may share the directory —
        writes are atomic and content-identical per scenario.
        """
        if not self._trace_store_arg:
            return None
        if self._trace_store is None:
            from ..sim.trace import TraceStore
            arg = self._trace_store_arg
            if arg is True:
                if self.cache_dir is not None:
                    root = self.cache_dir / f"traces-{self._fingerprint()}"
                else:
                    self._trace_tmp = tempfile.TemporaryDirectory(
                        prefix="repro-traces-")
                    root = Path(self._trace_tmp.name)
            else:
                root = Path(arg) / f"traces-{self._fingerprint()}"
            self._trace_store = TraceStore(root,
                                           keepalive=self._trace_tmp)
        return self._trace_store

    def _pin_spool(self, runs: dict[str, RunResult]) -> None:
        """Pin the temporary spool to handles that may outlive us.

        Worker-spooled handles come back from the pool without a
        keepalive (they pickle as bare paths), so golden results a
        caller retains after dropping the campaign would otherwise
        lose their files when the spool tempdir finalizes.
        """
        if self._trace_tmp is None:
            return
        from ..sim.trace import StoredTrace
        for run in runs.values():
            if isinstance(run.trace, StoredTrace):
                run.trace._keepalive = self._trace_tmp

    # -- sharding --------------------------------------------------------------

    def owns_scenario(self, index: int) -> bool:
        """Does this shard own the scenario at ``index`` in the set?"""
        return index % self.config.shard_count == self.config.shard_index

    def owned_scenarios(self) -> list[Scenario]:
        """The deterministic scenario partition of this shard.

        Scenario ``i`` belongs to shard ``i % shard_count`` — a
        round-robin split every shard can compute locally, so no
        coordination is needed across hosts.  Unsharded campaigns own
        everything.
        """
        return [s for i, s in enumerate(self.scenarios)
                if self.owns_scenario(i)]

    def _require_unsharded(self, style: str) -> None:
        if self.config.shard_count > 1:
            raise ValueError(
                f"sharded campaigns run on the pipeline driver; call "
                f"{style} with pipeline=True (or shard_count=1)")

    # -- checkpoint ladders ----------------------------------------------------

    def schedule_injection_ticks(self, scenario: Scenario) -> list[int]:
        """Eligible injection ticks derived from the *schedule*.

        Planner ticks inside the injection window, computed without the
        golden trace: a golden run that completes (no collision) records
        exactly these ticks, which is what lets a shard reproduce the
        global seeded fault draw without simulating foreign scenarios'
        golden runs.  The pipeline driver asserts the equality for every
        scenario a shard does simulate.
        """
        dt = self.config.ads.control_period
        divisor = self.config.ads.planner_divisor
        n_ticks = int(round(scenario.duration / dt))
        return [t for t in range(0, n_ticks, divisor)
                if self._in_window(t, scenario.duration)]

    def _capture_ticks(self, scenario: Scenario) -> list[int]:
        """Planner ticks to snapshot: the eligible injection ticks, strided.

        Derived from the schedule (not the golden trace, which may not
        exist yet): a tick the run never reaches is simply not captured.
        """
        eligible = self.schedule_injection_ticks(scenario)
        return eligible[::max(1, self.config.checkpoint_stride)]

    def _ensure_checkpoints(self, scenario_names, save: bool = True) -> None:
        """Fill in checkpoint ladders missing from the store.

        Needed when golden traces were warm-started from disk: ladders
        persisted under ``cache_dir`` by a previous run are loaded
        directly (per scenario — a campaign validating two scenarios
        never deserializes the rest); only scenarios absent from the
        persisted store re-simulate one fault-free prefix run.  Capture
        ticks derive from the schedule, not the golden trace, so this
        deliberately does not force ``golden_runs()`` — a single
        ``run_fault`` costs at most one prefix run, not a full golden
        sweep.
        """
        missing = [name for name in sorted(set(scenario_names))
                   if not self.checkpoints.has_scenario(name)]
        if not missing:
            return
        cache = self._checkpoint_cache_dir()
        recaptured = False
        for name in missing:
            if cache is not None \
                    and self.checkpoints.load_scenario(cache, name):
                continue
            scenario = self._by_name[name]
            run = run_scenario(
                scenario, ads_config=self.config.ads, seed=self.config.seed,
                safety_config=self.config.safety, record_trace=False,
                checkpoint_ticks=self._capture_ticks(scenario))
            if run.checkpoints:
                self.checkpoints.add_all(run.checkpoints)
                recaptured = True
        if recaptured and save:
            # The batch path persists once for the whole job set; the
            # pipeline passes save=False and persists per scenario
            # (CheckpointStore.save_scenario) to keep ensure O(1).
            self._save_checkpoint_cache()

    # -- incremental-campaign cache --------------------------------------------

    @staticmethod
    def _scenario_key(scenario: Scenario) -> tuple:
        """Cache identity of one scenario: name, duration, and build.

        Library builders are ``functools.partial`` bindings of
        module-level functions, so the parametrization (ego speed, gaps,
        script timings) lives in the bound arguments and the behaviour
        in the function's code object; both are digested.  Closure
        builders (caller-supplied) digest their cells instead.  A bound
        value whose ``repr`` is not deterministic across processes
        (e.g. it embeds an object address) makes the fingerprint never
        match — a cache miss, the safe failure direction.
        """
        build = scenario.build
        if isinstance(build, functools.partial):
            bound = build.args + tuple(sorted(build.keywords.items()))
            return (scenario.name, scenario.duration,
                    Campaign._code_digest(getattr(build.func, "__code__",
                                                  None)),
                    tuple(repr(value) for value in bound))
        cells = getattr(build, "__closure__", None) or ()
        return (scenario.name, scenario.duration,
                Campaign._code_digest(getattr(build, "__code__", None)),
                tuple(repr(cell.cell_contents) for cell in cells))

    @staticmethod
    def _code_digest(code) -> str:
        """Digest of a builder's behaviour: bytecode *and* constants.

        Literals edited inside a build function land in ``co_consts``
        (not ``co_code``), so both must rotate the fingerprint or a
        warm-started campaign would reuse golden traces from the old
        scenario definition.
        """
        if code is None:
            return ""
        payload = code.co_code + repr(code.co_consts).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()[:12]

    def _fingerprint(self) -> str:
        from .persistence import config_fingerprint
        return config_fingerprint(
            self.config.ads, self.config.safety, self.config.seed,
            (self._scenario_key(s) for s in self.scenarios))

    def _shard_suffix(self) -> str:
        """Cache-name qualifier isolating one shard's artifacts."""
        if self.config.shard_count <= 1:
            return ""
        return (f"-shard{self.config.shard_index}"
                f"of{self.config.shard_count}")

    def _golden_cache_path(self, sharded: bool = False) -> Path | None:
        """Golden-trace cache file (``sharded`` = this shard's subset only).

        The full-set file is shared by unsharded campaigns and by plans
        that collect every golden run (Bayesian training) — its writers
        produce identical content (gzip with a pinned mtime) and write
        atomically, so concurrent shards are safe.  The sharded variant
        holds just the owned scenarios, keyed per shard so the subsets
        never collide.
        """
        if self.cache_dir is None:
            return None
        suffix = self._shard_suffix() if sharded else ""
        return (self.cache_dir
                / f"golden-{self._fingerprint()}{suffix}.json.gz")

    def _checkpoint_cache_dir(self) -> Path | None:
        """Directory of the persisted checkpoint store (None = no cache).

        Keyed by the campaign fingerprint plus the capture stride, so a
        stride change (a different ladder) rotates the directory the
        same way any config change rotates the golden cache.  Sharded
        campaigns get a shard-qualified directory: each shard persists
        only the ladders it validates with, and no two shard processes
        write one index.
        """
        if self.cache_dir is None or not self.config.use_checkpoints:
            return None
        return (self.cache_dir / f"checkpoints-{self._fingerprint()}"
                                 f"-s{max(1, self.config.checkpoint_stride)}"
                                 f"{self._shard_suffix()}")

    def _ladder_spool_dir(self) -> Path | None:
        """Disk spool the pipeline driver spills checkpoint ladders to.

        The checkpoint cache directory when the campaign has one (spool
        and cache are then the same files — spilling *is* persisting),
        else a campaign-lifetime temporary directory, so repeated
        pipeline runs on one campaign object reload spilled ladders
        instead of re-simulating them.  ``None`` when checkpoints are
        disabled.
        """
        if not self.config.use_checkpoints:
            return None
        cache = self._checkpoint_cache_dir()
        if cache is not None:
            return cache
        if self._ladder_tmp is None:
            self._ladder_tmp = tempfile.TemporaryDirectory(
                prefix="repro-ladders-")
        return Path(self._ladder_tmp.name)

    def _save_checkpoint_cache(self) -> None:
        directory = self._checkpoint_cache_dir()
        if directory is None or not len(self.checkpoints):
            return
        self.checkpoints.save(directory)

    # -- resilience: journal and work keys -------------------------------------

    @staticmethod
    def _work_key(*params) -> str:
        """Digest identifying one campaign invocation's work.

        Keys the journal (and lease board) directory so two different
        campaigns sharing a ``cache_dir`` never read each other's
        progress.  Precision is an efficiency concern only: the journal
        itself matches entries by full experiment identity, and the
        deterministic simulator means identical identities always carry
        identical outcomes.
        """
        return hashlib.sha256(
            repr(params).encode("utf-8")).hexdigest()[:12]

    @staticmethod
    def _jobs_work_key(jobs: list[ExperimentJob]) -> str:
        """Work key of an explicit job list (the barrier driver's form)."""
        return Campaign._work_key(*(
            (name, fault.variable, fault.value, fault.start_tick,
             fault.duration_ticks, fault.kind, fault.channel)
            for name, fault in jobs))

    def _open_journal(self, work_key: str) -> CampaignJournal | None:
        """The completion journal of this invocation, started (or None).

        Journaling needs a ``cache_dir`` (the durable location shared
        with every other incremental artifact) and is on by default;
        lease mode replaces it with atomic per-scenario publication.
        """
        res = self.config.resilience
        if self.cache_dir is None or not res.journal or res.lease_mode:
            return None
        directory = (self.cache_dir
                     / f"journal-{self._fingerprint()}-{work_key}"
                       f"{self._shard_suffix()}")
        journal = CampaignJournal(
            directory, campaign_key=f"{self._fingerprint()}:{work_key}",
            batch=res.journal_batch)
        journal.start(resume=res.resume)
        self._last_journal = journal
        return journal

    def _lease_board_dir(self, work_key: str) -> Path:
        assert self.cache_dir is not None
        return (self.cache_dir
                / f"leases-{self._fingerprint()}-{work_key}")

    def _load_golden_cache(self) -> dict[str, RunResult] | None:
        return self._load_golden_cache_for(
            [s.name for s in self.scenarios])

    def _load_golden_cache_for(self, names: list[str],
                               sharded: bool = False
                               ) -> dict[str, RunResult] | None:
        """Warm-start ``names`` from the (full-set or sharded) cache.

        The one cache-read protocol both drivers share: read
        (current format, then legacy), require every requested
        scenario, normalize traces to this campaign's trace mode, and
        rewrite/clean up when anything was migrated.  All-or-nothing,
        matching the barrier path.
        """
        path = self._golden_cache_path(sharded=sharded)
        if path is None:
            return None
        runs, migrate = self._load_golden_cache_file(path)
        if runs is None or any(name not in runs for name in names):
            return None
        runs = {name: runs[name] for name in names}
        try:
            if self._normalize_loaded_traces(runs) or migrate:
                from .persistence import save_golden_traces
                save_golden_traces(runs, path, self._fingerprint(),
                                   trace_store=self.golden_trace_store())
            if migrate:
                self._drop_legacy_cache(path)
        except OSError:
            # The rewrite/adoption is an optimization for the *next*
            # warm start; a read-only shared cache dir must not fail a
            # campaign whose data loaded completely.  (Traces that
            # could not be spooled simply stay in RAM — both
            # representations serve the same read API.)
            pass
        return runs

    @staticmethod
    def _drop_legacy_cache(path: Path) -> None:
        """Remove a migrated pre-gzip cache file (inline columns can be
        many MB; leaving it would double cache disk per fingerprint)."""
        path.with_name(path.name.removesuffix(".gz")).unlink(
            missing_ok=True)

    def _load_golden_cache_file(self, path: Path
                                ) -> tuple[dict[str, RunResult] | None,
                                           bool]:
        """Read one golden cache file, accepting the legacy name.

        Caches written before the gzip switch live at the same path
        without the ``.gz`` suffix; returns ``(runs, migrate)`` where
        ``migrate`` asks the caller to rewrite the current-format file
        (so the one-time legacy parse never repeats).
        """
        from .persistence import load_golden_traces
        store = self._cache_read_store()
        runs = load_golden_traces(path, self._fingerprint(),
                                  trace_store=store)
        if runs is not None:
            return runs, False
        legacy = path.with_name(path.name.removesuffix(".gz"))
        if legacy == path:
            return None, False
        runs = load_golden_traces(legacy, self._fingerprint(),
                                  trace_store=store)
        return runs, runs is not None

    def _cache_read_store(self):
        """The store to resolve cache trace references against.

        A campaign run *without* ``trace_store`` must still be able to
        read a cache that a store-enabled run rewrote to references —
        the spool lives at a fingerprint-derived path under
        ``cache_dir``, so it can be found without the flag.  Falling
        back to re-simulation just because the flag toggled would
        discard hours of cached golden work.
        """
        store = self.golden_trace_store()
        if store is not None or self.cache_dir is None:
            return store
        from ..sim.trace import TraceStore
        root = self.cache_dir / f"traces-{self._fingerprint()}"
        return TraceStore(root) if root.is_dir() else None

    def _normalize_loaded_traces(self, runs: dict[str, RunResult]) -> bool:
        """Align warm-started traces with this campaign's trace mode.

        With a store configured, in-RAM traces from a pre-store cache
        are adopted into the spool (one-time migration; the caller
        rewrites the cache with references so the next warm start
        re-maps files).  Without one, reference-resolved handles are
        materialized back to in-RAM :class:`Trace` so the oracle path
        keeps its representation — no rewrite, which also stops the
        cache format ping-ponging as the flag toggles.  Returns
        whether the cache should be rewritten.
        """
        from ..sim.trace import StoredTrace
        store = self.golden_trace_store()
        if store is None:
            for run in runs.values():
                if isinstance(run.trace, StoredTrace):
                    run.trace = run.trace.to_trace()
            return False
        adopted = False
        for name, run in runs.items():
            if not isinstance(run.trace, StoredTrace):
                run.trace = store.put(name, run.trace)
                adopted = True
        return adopted

    def _save_golden_cache(self) -> None:
        # Reached only when the cache missed (or was corrupt/stale), so
        # writing unconditionally also self-heals a bad file.
        path = self._golden_cache_path()
        if path is None:
            return
        from .persistence import save_golden_traces
        path.parent.mkdir(parents=True, exist_ok=True)
        save_golden_traces(self._golden, path, self._fingerprint(),
                           trace_store=self.golden_trace_store())

    def scene_rows(self) -> "Iterator[SceneRow]":
        """Scene population for mining: all golden planner instants.

        A lazy stream, one golden trace at a time: the miners consume
        rows as they are generated, so the population is never resident
        as a list — peak scene memory is one row plus the miner's
        columnar batch.  Wrap in ``list`` to hold a population.
        """
        for name, run in self.golden_runs().items():
            yield from self._scenario_scene_rows(self._by_name[name], run)

    def _scenario_scene_rows(self, scenario: Scenario,
                             run: RunResult) -> "Iterator[SceneRow]":
        """One scenario's mining scenes: its golden planner instants.

        The per-scenario unit the streaming pipeline mines with — a
        generator, so no per-scenario row list exists; chaining the
        streams over scenarios in campaign order is exactly
        :meth:`scene_rows`.
        """
        for row in scene_rows_from_trace(scenario.name, run.trace):
            if self._in_window(row.injection_tick, scenario.duration):
                yield row

    def eligible_ticks_from_trace(self, run: RunResult,
                                  duration: float) -> list[int]:
        """Window-filtered planner ticks a golden run actually reached."""
        ticks = [int(t) for t in run.trace.column("tick")]
        return [t for t in ticks if self._in_window(t, duration)]

    def injection_ticks(self, scenario: Scenario,
                        stride: int = 1) -> list[int]:
        """Planner-tick indices eligible for injection in a scenario.

        Cached per (scenario, stride): random and architectural draws
        consult this list once per experiment, and the golden trace it
        derives from never changes within a campaign.
        """
        key = (scenario.name, scenario.duration, stride)
        cached = self._ticks.get(key)
        if cached is None:
            golden = self.golden_runs()[scenario.name]
            eligible = self.eligible_ticks_from_trace(golden,
                                                      scenario.duration)
            cached = eligible[::stride]
            self._ticks[key] = cached
        return cached

    def _in_window(self, tick: int, duration: float) -> bool:
        """Is ``tick`` inside the injection window of a scenario?

        The window starts after the startup transient and ends
        ``injection_window_margin`` seconds before the scenario ends, so
        every experiment keeps its full post-fault monitoring horizon.
        """
        dt = self.config.ads.control_period
        start = self.config.injection_window_start / dt
        end = (duration - self.config.injection_window_margin) / dt
        return start <= tick <= end

    # -- single experiment -------------------------------------------------------

    def run_fault(self, scenario_name: str,
                  fault: FaultSpec) -> ExperimentRecord:
        """Execute one injection experiment and record the outcome."""
        checkpoints = None
        if self.config.use_checkpoints:
            self._ensure_checkpoints([scenario_name])
            checkpoints = self.checkpoints
        return execute_experiment(self._by_name[scenario_name],
                                  self.config, fault, checkpoints)

    def _run_jobs(self, jobs: list[ExperimentJob],
                  workers: int | None,
                  record_sink=None, on_progress=None) -> CampaignSummary:
        """Execute jobs (serially or pooled) into an incremental summary.

        Records stream back in job order as futures complete; each is
        folded into the returned :class:`CampaignSummary` and forwarded
        to ``record_sink`` (any object with ``add(record)``, e.g. a
        :class:`repro.core.persistence.JsonlRecordSink`).  With a sink
        the summary does not retain the records themselves — aggregates
        only — which is the memory bound out-of-core campaigns rely on.

        With checkpoints enabled, the store is materialized first so
        pool workers inherit it through ``fork`` (or pickle it under
        ``spawn``) and every job resumes from its scenario's golden
        prefix.
        """
        checkpoints = None
        if self.config.use_checkpoints and jobs:
            self._ensure_checkpoints(name for name, _ in jobs)
            checkpoints = self.checkpoints
        summary = CampaignSummary(keep_records=record_sink is None)
        with self._stage_profile(summary):
            return self._drain_jobs(jobs, workers, checkpoints, summary,
                                    record_sink, on_progress)

    def _drain_jobs(self, jobs, workers, checkpoints, summary,
                    record_sink, on_progress) -> CampaignSummary:
        """The execution half of :meth:`_run_jobs` (profiled caller)."""
        emitted = 0

        def emit(record: ExperimentRecord) -> None:
            nonlocal emitted
            emitted += 1
            summary.add(record)
            if record_sink is not None:
                record_sink.add(record)
            self._progress(on_progress, "validated", record.scenario,
                           emitted, len(jobs))

        journal = self._open_journal(self._jobs_work_key(jobs))
        if journal is None:
            run_experiments(self.scenarios, self.config, jobs,
                            workers=workers, checkpoints=checkpoints,
                            on_record=emit)
            return summary

        # Resume merge: slots claimed from the journal emit their
        # original records verbatim; only the remainder executes.
        # Fresh records arrive in fresh-submission order, so a single
        # cursor interleaves both sources back into the deterministic
        # job order — the merged stream is bit-for-bit the
        # uninterrupted run's.
        slots: list[ExperimentRecord | None] = []
        fresh: list[ExperimentJob] = []
        for name, fault in jobs:
            hit = journal.claim(name, fault, self.config.seed)
            slots.append(hit)
            if hit is None:
                fresh.append((name, fault))
        cursor = 0

        def release_journaled() -> None:
            nonlocal cursor
            while cursor < len(jobs) and slots[cursor] is not None:
                emit(slots[cursor])
                cursor += 1

        def consume(record: ExperimentRecord) -> None:
            nonlocal cursor
            journal.append(record)
            release_journaled()
            emit(record)
            cursor += 1
            release_journaled()

        try:
            release_journaled()
            if fresh:
                run_experiments(self.scenarios, self.config, fresh,
                                workers=workers, checkpoints=checkpoints,
                                on_record=consume)
                release_journaled()
        finally:
            journal.close()
        return summary

    # -- campaigns -----------------------------------------------------------------

    def _run_pipeline(self, plan, workers, record_sink, on_progress):
        from .pipeline import CampaignPipeline
        driver = CampaignPipeline(self, workers=workers,
                                  record_sink=record_sink,
                                  on_progress=on_progress)
        if not self.config.profile_stages:
            return driver.run(plan)
        STAGE_TIMER.reset()
        STAGE_TIMER.enabled = True
        try:
            result = driver.run(plan)
        finally:
            STAGE_TIMER.enabled = False
        report = STAGE_TIMER.report()
        if report:
            result.summary.extra_info["stage_timings"] = report
        return result

    @contextmanager
    def _stage_profile(self, summary: CampaignSummary):
        """Arm the process-global stage timer for one campaign run and
        fold the report into ``summary.extra_info['stage_timings']``.

        A no-op unless ``config.profile_stages`` is set.  The timer is
        reset on entry, so the block reports this run only, and always
        disarmed on exit (including on error)."""
        if not self.config.profile_stages:
            yield
            return
        STAGE_TIMER.reset()
        STAGE_TIMER.enabled = True
        try:
            yield
        finally:
            STAGE_TIMER.enabled = False
            report = STAGE_TIMER.report()
            if report:
                summary.extra_info["stage_timings"] = report

    @contextmanager
    def _batch_override(self, batch_sim: int | None):
        """Temporarily override ``config.batch_sim`` for one campaign.

        ``batch_sim`` sits outside the cache fingerprint (the engines
        are bit-for-bit equivalent), so swapping the config keeps every
        golden/checkpoint/candidate cache, journal, and work key valid.
        ``None`` means "use the config as-is".
        """
        if batch_sim is None or batch_sim == self.config.batch_sim:
            yield
            return
        previous = self.config
        self.config = replace(previous, batch_sim=batch_sim)
        try:
            yield
        finally:
            self.config = previous

    def random_campaign(self, n_experiments: int,
                        seed: int | None = None,
                        workers: int | None = None,
                        record_sink=None,
                        pipeline: bool = True,
                        interface_share: float = 0.0,
                        interface_kinds: tuple | None = None,
                        interface_channels: tuple | None = None,
                        batch_sim: int | None = None,
                        on_progress=None) -> CampaignSummary:
        """Fault model (b), uniformly random (the paper's baseline).

        The fault draws are independent of the experiment outcomes, so
        they are all made up front (in the exact order of the serial
        loop, keeping seeded campaigns reproducible) and the resulting
        jobs fanned over ``workers`` processes.  ``record_sink``
        streams records out as they complete instead of retaining them
        in the summary.  ``pipeline`` (the default) runs on the
        streaming per-scenario driver — record-for-record identical to
        the barrier path, which ``pipeline=False`` preserves as the
        reference oracle.

        ``interface_share`` mixes interface faults into the draw: each
        experiment becomes an interface fault (uniform over
        ``interface_kinds`` x ``interface_channels``, defaults = all)
        with that probability.  At the default 0.0 no extra random
        draws are made, so existing seeded campaigns reproduce their
        historical fault sequences bit-for-bit.

        ``batch_sim`` overrides :attr:`CampaignConfig.batch_sim` for
        this campaign: values > 1 validate through the fused batched
        engine (records bit-for-bit the scalar engine's), 0 forces the
        scalar oracle, ``None`` keeps the config's setting.
        """
        if batch_sim is not None:
            with self._batch_override(batch_sim):
                return self.random_campaign(
                    n_experiments, seed=seed, workers=workers,
                    record_sink=record_sink, pipeline=pipeline,
                    interface_share=interface_share,
                    interface_kinds=interface_kinds,
                    interface_channels=interface_channels,
                    on_progress=on_progress)
        for kind in interface_kinds or ():
            validate_interface_kind(kind)
        for channel in interface_channels or ():
            validate_interface_channel(channel)
        if pipeline:
            plan = self._random_plan(n_experiments, seed, interface_share,
                                     interface_kinds, interface_channels)
            return self._run_pipeline(plan, workers, record_sink,
                                      on_progress).summary
        self._require_unsharded("random_campaign")
        self.golden_runs(workers=workers)
        self._progress(on_progress, "golden", None, len(self.scenarios),
                       len(self.scenarios))
        jobs = self._random_jobs(n_experiments, seed,
                                 self._require_injection_ticks,
                                 interface_share, interface_kinds,
                                 interface_channels)
        return self._run_jobs(jobs, workers, record_sink, on_progress)

    def _random_jobs(self, n_experiments: int, seed: int | None,
                     ticks_of, interface_share: float = 0.0,
                     interface_kinds: tuple | None = None,
                     interface_channels: tuple | None = None
                     ) -> list[ExperimentJob]:
        """The seeded random draw, parametrized over the tick source.

        ``ticks_of(name)`` supplies each scenario's eligible ticks; the
        draw sequence itself (scenario choice, value, tick index) is
        identical for any source that returns the same lists, which is
        how a shard reproduces the global draw from schedule-derived
        ticks without simulating foreign golden runs.  The
        interface-fault coin flip is guarded so a zero share adds no
        draw — the historical stream is untouched.
        """
        rng = np.random.default_rng(self.config.seed if seed is None
                                    else seed)
        names = [s.name for s in self.scenarios]
        duration = self.config.fault_duration_ticks
        jobs: list[ExperimentJob] = []
        for _ in range(n_experiments):
            scenario_name = names[int(rng.integers(len(names)))]
            if interface_share > 0.0 and float(rng.random()) \
                    < interface_share:
                fault = random_interface_fault(
                    rng, ticks_of(scenario_name), kinds=interface_kinds,
                    channels=interface_channels, duration_ticks=duration)
            else:
                fault = random_fault(rng, ticks_of(scenario_name),
                                     duration_ticks=duration)
            jobs.append((scenario_name, fault))
        return jobs

    def _random_plan(self, n_experiments: int, seed: int | None,
                     interface_share: float = 0.0,
                     interface_kinds: tuple | None = None,
                     interface_channels: tuple | None = None):
        from .pipeline import StagePlan

        def global_jobs(ctx):
            return self._random_jobs(
                n_experiments, seed,
                lambda name: ctx.injection_ticks(name, require=True),
                interface_share, interface_kinds, interface_channels)

        key_params = ["random", n_experiments, seed]
        if interface_share > 0.0:
            # Conditional so the journal/lease directories of existing
            # interface-free campaigns keep their names.
            key_params += [interface_share,
                           tuple(interface_kinds or ()),
                           tuple(interface_channels or ())]
        return StagePlan(style="random", global_jobs=global_jobs,
                         work_key=self._work_key(*key_params))

    @staticmethod
    def _progress(on_progress, stage, scenario, done, total) -> None:
        if on_progress is not None:
            from .pipeline import PipelineProgress
            on_progress(PipelineProgress(stage=stage, scenario=scenario,
                                         done=done, total=total))

    def _require_injection_ticks(self, scenario_name: str) -> list[int]:
        """Eligible ticks of a scenario, with a clear error when empty."""
        ticks = self.injection_ticks(self._by_name[scenario_name])
        if not ticks:
            raise self._no_ticks_error(scenario_name)
        return ticks

    def _no_ticks_error(self, scenario_name: str) -> ValueError:
        config = self.config
        return ValueError(
            f"scenario {scenario_name!r} has no eligible injection "
            f"ticks: its duration leaves no planner tick between the "
            f"{config.injection_window_start} s startup transient and "
            f"the {config.injection_window_margin} s end margin")

    def exhaustive_campaign(self, tick_stride: int = 10,
                            variable_names: list[str] | None = None,
                            max_experiments: int | None = None,
                            workers: int | None = None,
                            record_sink=None,
                            pipeline: bool = True,
                            interface_grid: bool = False,
                            batch_sim: int | None = None,
                            on_progress=None) -> CampaignSummary:
        """Fault model (b) on the min/max grid (strided subsample).

        ``interface_grid`` appends the interface-fault grid (every kind
        x channel x strided tick, default parameters) to each
        scenario's value grid, so one sweep covers both fault families.
        ``batch_sim`` overrides :attr:`CampaignConfig.batch_sim` for
        this campaign (see :meth:`random_campaign`).
        """
        if batch_sim is not None:
            with self._batch_override(batch_sim):
                return self.exhaustive_campaign(
                    tick_stride=tick_stride,
                    variable_names=variable_names,
                    max_experiments=max_experiments, workers=workers,
                    record_sink=record_sink, pipeline=pipeline,
                    interface_grid=interface_grid,
                    on_progress=on_progress)
        if pipeline:
            plan = self._exhaustive_plan(tick_stride, variable_names,
                                         max_experiments, interface_grid)
            return self._run_pipeline(plan, workers, record_sink,
                                      on_progress).summary
        self._require_unsharded("exhaustive_campaign")
        self.golden_runs(workers=workers)
        self._progress(on_progress, "golden", None, len(self.scenarios),
                       len(self.scenarios))
        jobs: list[ExperimentJob] = []
        for scenario in self.scenarios:
            ticks = self.injection_ticks(scenario, stride=tick_stride)
            grid = self._exhaustive_grid(ticks, variable_names,
                                         interface_grid)
            jobs.extend((scenario.name, fault) for fault in grid)
            if max_experiments is not None and len(jobs) >= max_experiments:
                jobs = jobs[:max_experiments]
                break
        return self._run_jobs(jobs, workers, record_sink, on_progress)

    def _exhaustive_grid(self, ticks: list[int],
                         variable_names: list[str] | None,
                         interface_grid: bool) -> list[FaultSpec]:
        """One scenario's exhaustive grid: values, then interface faults."""
        duration = self.config.fault_duration_ticks
        grid = minmax_fault_grid(ticks, variable_names,
                                 duration_ticks=duration)
        if interface_grid:
            grid.extend(interface_fault_grid(ticks,
                                             duration_ticks=duration))
        return grid

    def _exhaustive_plan(self, tick_stride: int,
                         variable_names: list[str] | None,
                         max_experiments: int | None,
                         interface_grid: bool = False):
        from .pipeline import StagePlan
        key_params = ["exhaustive", tick_stride,
                      tuple(variable_names) if variable_names else None,
                      max_experiments]
        if interface_grid:
            key_params.append("interface-grid")
        work_key = self._work_key(*key_params)

        if max_experiments is None:
            # Truly per-scenario: a scenario's grid depends only on its
            # own golden ticks, so validation of an early scenario
            # overlaps golden collection of a late one.
            def per_scenario(ctx, scenario):
                ticks = ctx.injection_ticks(scenario.name,
                                            stride=tick_stride)
                grid = self._exhaustive_grid(ticks, variable_names,
                                             interface_grid)
                return [(scenario.name, fault) for fault in grid]

            return StagePlan(style="exhaustive",
                             per_scenario_jobs=per_scenario,
                             work_key=work_key)

        # A global experiment cap consumes budget in scenario order, so
        # job generation is a (documented) barrier on the tick lists.
        def global_jobs(ctx):
            jobs: list[ExperimentJob] = []
            for scenario in self.scenarios:
                ticks = ctx.injection_ticks(scenario.name,
                                            stride=tick_stride)
                grid = self._exhaustive_grid(ticks, variable_names,
                                             interface_grid)
                jobs.extend((scenario.name, fault) for fault in grid)
                if len(jobs) >= max_experiments:
                    jobs = jobs[:max_experiments]
                    break
            return jobs

        return StagePlan(style="exhaustive", global_jobs=global_jobs,
                         work_key=work_key)

    def grid_size(self, variable_names: list[str] | None = None,
                  tick_stride: int = 1) -> int:
        """Total experiments in the full fault-model-(b) grid."""
        names = list(variable_names or DEFAULT_VARIABLES)
        total = 0
        for scenario in self.scenarios:
            total += len(self.injection_ticks(scenario, stride=tick_stride))
        return total * len(names) * 2

    def architectural_campaign(self, n_experiments: int,
                               model: ArchitecturalFaultModel | None = None,
                               seed: int | None = None,
                               workers: int | None = None,
                               record_sink=None,
                               pipeline: bool = True,
                               interface_hangs: bool = False,
                               batch_sim: int | None = None,
                               on_progress=None
                               ) -> tuple[CampaignSummary, dict[str, int]]:
        """Fault model (a): register flips propagated into the stack.

        Returns the summary of *landed* (SDC) experiments plus the raw
        architectural outcome counts (masked flips and detectable
        crashes/hangs never reach the vehicle, as in the paper).  A
        sharded campaign reproduces the *global* outcome counts on every
        shard (the draw sequence is global); only the driven experiments
        are partitioned.

        ``interface_hangs`` drives HANG outcomes into the simulator as
        interface ``hang`` faults on the stuck kernel's channel instead
        of counting them as detectable-and-recoverable only.
        ``batch_sim`` overrides :attr:`CampaignConfig.batch_sim` for
        this campaign (see :meth:`random_campaign`).
        """
        if batch_sim is not None:
            with self._batch_override(batch_sim):
                return self.architectural_campaign(
                    n_experiments, model=model, seed=seed,
                    workers=workers, record_sink=record_sink,
                    pipeline=pipeline, interface_hangs=interface_hangs,
                    on_progress=on_progress)
        if pipeline:
            plan = self._architectural_plan(n_experiments, model, seed,
                                            interface_hangs)
            outcome = self._run_pipeline(plan, workers, record_sink,
                                         on_progress)
            return outcome.summary, outcome.extras["outcome_counts"]
        self._require_unsharded("architectural_campaign")
        self.golden_runs(workers=workers)
        self._progress(on_progress, "golden", None, len(self.scenarios),
                       len(self.scenarios))
        jobs, outcome_counts = self._architectural_jobs(
            n_experiments, model, seed, self._require_injection_ticks,
            interface_hangs)
        summary = self._run_jobs(jobs, workers, record_sink, on_progress)
        return summary, outcome_counts

    def _architectural_jobs(self, n_experiments: int,
                            model: ArchitecturalFaultModel | None,
                            seed: int | None, ticks_of,
                            interface_hangs: bool = False
                            ) -> tuple[list[ExperimentJob], dict[str, int]]:
        """The seeded architectural draw, parametrized over tick source."""
        rng = np.random.default_rng(self.config.seed if seed is None
                                    else seed)
        model = model or ArchitecturalFaultModel()
        outcome_counts = {outcome.value: 0 for outcome in Outcome}
        names = [s.name for s in self.scenarios]
        jobs: list[ExperimentJob] = []
        for _ in range(n_experiments):
            scenario_name = names[int(rng.integers(len(names)))]
            arch = model.sample(
                rng, ticks_of(scenario_name),
                duration_ticks=self.config.fault_duration_ticks,
                interface_hangs=interface_hangs)
            outcome_counts[arch.outcome.value] += 1
            if arch.fault is not None:
                jobs.append((scenario_name, arch.fault))
        return jobs, outcome_counts

    def _architectural_plan(self, n_experiments: int,
                            model: ArchitecturalFaultModel | None,
                            seed: int | None,
                            interface_hangs: bool = False):
        from .pipeline import StagePlan

        def global_jobs(ctx):
            jobs, outcome_counts = self._architectural_jobs(
                n_experiments, model, seed,
                lambda name: ctx.injection_ticks(name, require=True),
                interface_hangs)
            ctx.extras["outcome_counts"] = outcome_counts
            return jobs

        key_params = ["architectural", n_experiments, seed, model is None]
        if interface_hangs:
            key_params.append("interface-hangs")
        return StagePlan(style="architectural", global_jobs=global_jobs,
                         work_key=self._work_key(*key_params))

    def bayesian_campaign(self, injector: BayesianFaultInjector | None = None,
                          variables: tuple[str, ...] = MINED_VARIABLES,
                          threshold: float = 0.0,
                          top_k: int | None = None,
                          use_batched: bool = True,
                          workers: int | None = None,
                          record_sink=None,
                          pipeline: bool = True,
                          streaming_training: bool = True,
                          interface_probe: tuple[str, ...] = (),
                          batch_sim: int | None = None,
                          on_progress=None
                          ) -> "BayesianCampaignResult":
        """Fault model (c): mine ``F_crit``, then validate in the simulator.

        Mined faults have a *predicted* non-positive potential
        (``threshold`` relaxes that); validation separates real hazards
        from borderline predictions, which is why the paper's precision
        is 82% rather than 100%.  Mining uses the batched affine engine
        by default (``use_batched=False`` falls back to the scalar
        reference path); golden collection and validation fan over
        ``workers`` processes, and ``record_sink`` streams validation
        records out as they complete.
        With a ``cache_dir``, mined candidates are warm-started from
        disk when the same mining parameters were run before (only when
        no explicit ``injector`` is passed — a caller-supplied model
        invalidates the cache key).

        ``streaming_training`` (the default) fits the 3-TBN through
        sufficient-statistics accumulators, folding each golden trace
        in campaign scenario order the moment it is available — on the
        pipeline driver training *overlaps* golden collection and the
        training barrier disappears; the folds emit per-trace
        ``train`` progress events.  ``streaming_training=False`` keeps
        the whole-dataset batch fit
        (:meth:`BayesianFaultInjector.train`) as the reference oracle;
        the streamed CPDs reproduce it exactly for tabular counts and
        to well under 1e-9 relative for the linear-Gaussian
        weights/variances (test-enforced).

        ``interface_probe`` names interface-fault kinds (e.g.
        ``("freeze", "delay")``); each mined candidate is then validated
        alongside companion jobs that apply those kinds on the
        candidate variable's channel at the candidate's tick — probing
        whether a *message-level* failure of the same module at the
        same moment is as hazardous as the mined value corruption.

        ``batch_sim`` overrides :attr:`CampaignConfig.batch_sim` for
        the validation stage (see :meth:`random_campaign`); mining and
        training are unaffected (they have their own batched engines).
        """
        if batch_sim is not None:
            with self._batch_override(batch_sim):
                return self.bayesian_campaign(
                    injector=injector, variables=variables,
                    threshold=threshold, top_k=top_k,
                    use_batched=use_batched, workers=workers,
                    record_sink=record_sink, pipeline=pipeline,
                    streaming_training=streaming_training,
                    interface_probe=interface_probe,
                    on_progress=on_progress)
        for kind in interface_probe:
            validate_interface_kind(kind)
        if pipeline:
            plan = self._bayesian_plan(injector, variables, threshold,
                                       top_k, use_batched,
                                       streaming_training,
                                       interface_probe)
            outcome = self._run_pipeline(plan, workers, record_sink,
                                         on_progress)
            return BayesianCampaignResult(
                injector=outcome.extras["injector"],
                candidates=outcome.extras["candidates"],
                mining=outcome.extras["mining"],
                summary=outcome.summary,
                train_seconds=outcome.extras["train_seconds"])
        self._require_unsharded("bayesian_campaign")
        train_start = time.perf_counter()
        caching = injector is None and self.cache_dir is not None
        if injector is None:
            golden = self.golden_runs(workers=workers)
            if streaming_training:
                injector = self._train_streaming(golden, on_progress)
            else:
                injector = BayesianFaultInjector.train(
                    list(golden.values()),
                    safety_config=self.config.safety)
        train_seconds = time.perf_counter() - train_start
        self._progress(on_progress, "golden", None, len(self.scenarios),
                       len(self.scenarios))
        candidates = mining = None
        cache_path = (self._candidate_cache_path(variables, threshold,
                                                 top_k) if caching else None)
        if cache_path is not None and cache_path.exists():
            from .persistence import try_load_candidates
            candidates = try_load_candidates(cache_path)
            if candidates is not None:
                mining = self._cached_mining_report(candidates, variables)
        if candidates is None:
            mine = (injector.mine_critical_faults_batched if use_batched
                    else injector.mine_critical_faults)
            candidates, mining = mine(
                self.scene_rows(), variables=variables, threshold=threshold,
                top_k=top_k)
            if cache_path is not None:
                from .persistence import save_candidates
                cache_path.parent.mkdir(parents=True, exist_ok=True)
                save_candidates(candidates, cache_path)
        self._progress(on_progress, "mined", None, len(self.scenarios),
                       len(self.scenarios))
        jobs: list[ExperimentJob] = []
        for candidate in candidates:
            jobs.append((candidate.scenario,
                         candidate.to_fault_spec(
                             duration_ticks=self.config.fault_duration_ticks)))
            jobs.extend(self._probe_jobs(candidate, interface_probe))
        summary = self._run_jobs(jobs, workers, record_sink, on_progress)
        return BayesianCampaignResult(
            injector=injector, candidates=candidates, mining=mining,
            summary=summary, train_seconds=train_seconds)

    def _probe_jobs(self, candidate: CandidateFault,
                    interface_probe: tuple[str, ...]
                    ) -> list[ExperimentJob]:
        """A candidate's interface-fault companions, in probe order.

        Each probe kind hits the channel of the module that publishes
        the candidate's variable, at the candidate's injection tick,
        with the kind's default parameter.
        """
        if not interface_probe:
            return []
        from ..ads.variables import variable_by_name
        channel = variable_by_name(candidate.variable).stage
        duration = self.config.fault_duration_ticks
        return [(candidate.scenario,
                 interface_fault(kind, channel,
                                 int(candidate.injection_tick),
                                 duration_ticks=duration))
                for kind in interface_probe]

    def _train_streaming(self, golden: dict[str, RunResult],
                         on_progress) -> BayesianFaultInjector:
        """Fold golden traces into the streaming trainer, in order.

        The barrier path's streaming fit: identical arithmetic (and
        fold order — campaign scenario order) to the pipeline driver's
        overlapped folds, so ``pipeline=True`` and ``pipeline=False``
        stay record-for-record equivalent under streaming training.
        """
        trainer = BayesianFaultInjector.streaming_trainer(
            safety_config=self.config.safety)
        for done, (name, run) in enumerate(golden.items(), start=1):
            trainer.add_run(run)
            self._progress(on_progress, "train", name, done, len(golden))
        return trainer.finish()

    def _cached_mining_report(self, candidates, variables) -> MiningReport:
        """Cost accounting a fresh mining pass over these scenes would
        report: every safe scene is scored once per corruption value of
        every variable.  Only ``wall_seconds`` stays 0 — the honest cost
        of a candidate-cache hit.
        """
        from ..ads.variables import variable_by_name
        n_scenes = safe = 0
        for scene in self.scene_rows():   # streamed: count, don't hold
            n_scenes += 1
            safe += scene.observed_safe
        per_scene = sum(len(variable_by_name(v).corruption_values())
                        for v in variables)
        return MiningReport(n_scenes=n_scenes, n_scored=safe * per_scene,
                            n_critical=len(candidates))

    def _bayesian_plan(self, injector: BayesianFaultInjector | None,
                       variables: tuple[str, ...], threshold: float,
                       top_k: int | None, use_batched: bool,
                       streaming_training: bool = True,
                       interface_probe: tuple[str, ...] = ()):
        from .pipeline import MiningPlan, StagePlan
        caching = injector is None and self.cache_dir is not None
        duration = self.config.fault_duration_ticks

        def job_of(candidate: CandidateFault) -> ExperimentJob:
            return (candidate.scenario,
                    candidate.to_fault_spec(duration_ticks=duration))

        def expand(entries):
            """``(identity, candidate)`` entries -> ``(identity, job)``
            entries, interleaving each candidate's probe jobs after its
            value job.  The value job keeps the candidate's own
            identity (eager dispatch already used it, so it dedups);
            probes get derived identities, dispatched at finalize and
            deduplicated on resume like any other entry.
            """
            expanded = []
            for identity, candidate in entries:
                expanded.append((identity, job_of(candidate)))
                for k, probe in enumerate(
                        self._probe_jobs(candidate, interface_probe)):
                    expanded.append((identity + ("probe", k), probe))
            return expanded

        fold = None
        if injector is None and streaming_training:
            def fold(ctx, scenario, run):
                """Fold one completed golden trace into the trainer.

                Called by the driver in campaign scenario order as
                goldens complete, so training overlaps the rest of
                golden collection; the accumulation order is the
                barrier path's, keeping the fit deterministic.
                """
                trainer = ctx.extras.get("trainer")
                if trainer is None:
                    trainer = BayesianFaultInjector.streaming_trainer(
                        safety_config=self.config.safety)
                    ctx.extras["trainer"] = trainer
                    ctx.extras["train_seconds"] = 0.0
                start = time.perf_counter()
                trainer.add_run(run)
                ctx.extras["train_seconds"] += (time.perf_counter()
                                                - start)

        def prepare(ctx):
            """Finish training, then try the candidate cache.

            Under streaming training the per-trace folds already
            happened as goldens completed and only the O(parameters)
            finalization runs here; the batch oracle fits the whole
            window dataset at this barrier instead.  Returns the ready
            job entries on a candidate-cache hit, else ``None`` to
            request per-scenario mining.
            """
            train_start = time.perf_counter()
            trained = injector
            if trained is None:
                trainer = ctx.extras.get("trainer")
                if trainer is not None and trainer.n_folded:
                    trained = trainer.finish()
                else:
                    trained = BayesianFaultInjector.train(
                        list(ctx.golden.values()),
                        safety_config=self.config.safety)
            ctx.extras["injector"] = trained
            ctx.extras["train_seconds"] = (
                ctx.extras.get("train_seconds", 0.0)
                + time.perf_counter() - train_start)
            if not caching:
                return None
            cache_path = self._candidate_cache_path(variables, threshold,
                                                    top_k)
            if cache_path is None or not cache_path.exists():
                return None
            from .persistence import try_load_candidates
            candidates = try_load_candidates(cache_path)
            if candidates is None:
                return None                       # unreadable -> re-mine
            ctx.extras["candidates"] = candidates
            ctx.extras["mining"] = self._cached_mining_report(candidates,
                                                              variables)
            return expand([(("cache", i), c)
                           for i, c in enumerate(candidates)])

        def mine_scenario(ctx, scenario):
            start = time.perf_counter()
            scenes = self._scenario_scene_rows(scenario,
                                               ctx.golden[scenario.name])
            mined, n_scored, n_scenes = ctx.extras["injector"].\
                mine_scenario_candidates(
                    scenes, variables=variables, threshold=threshold,
                    use_batched=use_batched)
            acc = ctx.extras.setdefault("mining_acc", MiningReport())
            acc.n_scenes += n_scenes
            acc.n_scored += n_scored
            acc.wall_seconds += time.perf_counter() - start
            return mined

        def finalize(ctx):
            """Merge per-scenario mines into the global candidate list.

            Stable-sorting the scenario-ordered concatenation by
            ``predicted_minimum`` reproduces the barrier miner's order
            (its append order is the same concatenation), and ``top_k``
            truncates the global ranking exactly as the barrier does.
            """
            entries = [((s.name, j), candidate)
                       for s in self.scenarios
                       for j, candidate in enumerate(ctx.mined[s.name])]
            entries.sort(key=lambda entry: entry[1].predicted_minimum)
            if top_k is not None:
                entries = entries[:top_k]
            candidates = [candidate for _, candidate in entries]
            ctx.extras["candidates"] = candidates
            acc = ctx.extras.setdefault("mining_acc", MiningReport())
            acc.n_critical = len(candidates)
            ctx.extras["mining"] = acc
            if caching:
                cache_path = self._candidate_cache_path(variables,
                                                        threshold, top_k)
                if cache_path is not None:
                    from .persistence import save_candidates
                    cache_path.parent.mkdir(parents=True, exist_ok=True)
                    save_candidates(candidates, cache_path)
            return expand(entries)

        # Validation of an already-mined scenario may only start before
        # the global merge when nothing global gates the job set: a
        # top_k cut keeps only the best candidates *across* scenarios.
        miner = MiningPlan(prepare=prepare, mine_scenario=mine_scenario,
                           finalize=finalize, job_of=job_of,
                           eager_dispatch=top_k is None, fold=fold)
        key_params = ["bayesian", tuple(variables), float(threshold),
                      top_k, use_batched, injector is None]
        if interface_probe:
            key_params.append(tuple(interface_probe))
        return StagePlan(style="bayesian", golden_scope="all", miner=miner,
                         work_key=self._work_key(*key_params))

    def _candidate_cache_path(self, variables, threshold,
                              top_k) -> Path | None:
        """Cache file for mined candidates under these mining parameters."""
        if self.cache_dir is None:
            return None
        key = hashlib.sha256(repr(
            (tuple(variables), float(threshold), top_k)
        ).encode("utf-8")).hexdigest()[:12]
        return (self.cache_dir
                / f"candidates-{self._fingerprint()}-{key}.json")


@dataclass
class BayesianCampaignResult:
    """Everything produced by one Bayesian FI campaign."""

    injector: BayesianFaultInjector
    candidates: list[CandidateFault]
    mining: MiningReport
    summary: CampaignSummary
    train_seconds: float

    @property
    def precision(self) -> float:
        """Fraction of mined faults that manifested as real hazards.

        The paper's analogue: 460 of 561 mined faults (82%) manifested.
        Reads the incremental aggregates, so it is also correct for
        streamed campaigns whose summaries retain no records.
        """
        return self.summary.hazard_rate

    @property
    def total_wall_seconds(self) -> float:
        """Train + mine + validate cost (the paper's "< 4 hours" side)."""
        return (self.train_seconds + self.mining.wall_seconds
                + self.summary.wall_seconds)
