"""Campaign orchestration: random, exhaustive, architectural, Bayesian.

A *scene* is a (scenario, planner tick) pair drawn from the golden runs.
All four campaign styles inject into the same scene population with the
same transient-fault duration, so their hazard yields are comparable —
that comparison *is* the paper's headline result.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..ads.runtime import ADSConfig
from ..arch.injector import Outcome
from ..sim.scenario import Scenario, default_scenarios
from .bayesian_fi import (MINED_VARIABLES, BayesianFaultInjector,
                          CandidateFault, MiningReport, SceneRow,
                          scene_rows_from_trace)
from .fault_models import (DEFAULT_VARIABLES, ArchitecturalFaultModel,
                           minmax_fault_grid, random_fault)
from .results import CampaignSummary, ExperimentRecord
from .safety import SafetyConfig
from .simulate import FaultSpec, RunResult, run_scenario


@dataclass(frozen=True)
class CampaignConfig:
    """Shared experiment parameters."""

    ads: ADSConfig = field(default_factory=ADSConfig)
    safety: SafetyConfig = field(default_factory=SafetyConfig)
    #: Corrupted outputs persist for two planner frames by default: the
    #: downstream consumer latches the last value it read, so a corrupted
    #: output written at frame k is still consumed during frame k+1.
    fault_duration_ticks: int = 4
    horizon_after_fault: float = 8.0       # s of post-fault monitoring
    injection_window_start: float = 2.0    # s: skip the startup transient
    injection_window_margin: float = 9.0   # s kept free at scenario end
    seed: int = 0


class Campaign:
    """Runs fault-injection campaigns over a scenario set."""

    def __init__(self, scenarios: list[Scenario] | None = None,
                 config: CampaignConfig | None = None):
        self.scenarios = scenarios or default_scenarios()
        self.config = config or CampaignConfig()
        self._by_name = {s.name: s for s in self.scenarios}
        self._golden: dict[str, RunResult] | None = None

    # -- golden runs -----------------------------------------------------------

    def golden_runs(self) -> dict[str, RunResult]:
        """Fault-free reference runs (cached)."""
        if self._golden is None:
            self._golden = {
                scenario.name: run_scenario(
                    scenario, ads_config=self.config.ads,
                    seed=self.config.seed,
                    safety_config=self.config.safety, record_trace=True)
                for scenario in self.scenarios}
        return self._golden

    def scene_rows(self) -> list[SceneRow]:
        """Scene population for mining: all golden planner instants."""
        rows = []
        for name, run in self.golden_runs().items():
            for row in scene_rows_from_trace(name, run.trace):
                if self._in_window(row.injection_tick):
                    rows.append(row)
        return rows

    def injection_ticks(self, scenario: Scenario,
                        stride: int = 1) -> list[int]:
        """Planner-tick indices eligible for injection in a scenario."""
        golden = self.golden_runs()[scenario.name]
        ticks = [int(t) for t in golden.trace.column("tick")]
        eligible = [t for t in ticks if self._in_window(t)]
        return eligible[::stride]

    def _in_window(self, tick: int) -> bool:
        dt = self.config.ads.control_period
        start = self.config.injection_window_start / dt
        return tick >= start

    # -- single experiment -------------------------------------------------------

    def run_fault(self, scenario_name: str,
                  fault: FaultSpec) -> ExperimentRecord:
        """Execute one injection experiment and record the outcome."""
        scenario = self._by_name[scenario_name]
        result = run_scenario(
            scenario, ads_config=self.config.ads, seed=self.config.seed,
            faults=[fault], safety_config=self.config.safety,
            horizon_after_fault=self.config.horizon_after_fault,
            record_trace=False)
        return ExperimentRecord(
            scenario=scenario_name, injection_tick=fault.start_tick,
            variable=fault.variable, value=fault.value,
            duration_ticks=fault.duration_ticks, seed=self.config.seed,
            hazard=result.hazard, landed=result.landed,
            pre_delta_long=result.pre_delta_long,
            pre_delta_lat=result.pre_delta_lat,
            min_delta_long=result.min_delta_long,
            min_delta_lat=result.min_delta_lat,
            sim_seconds=result.sim_seconds,
            wall_seconds=result.wall_seconds)

    # -- campaigns -----------------------------------------------------------------

    def random_campaign(self, n_experiments: int,
                        seed: int | None = None) -> CampaignSummary:
        """Fault model (b), uniformly random (the paper's baseline)."""
        rng = np.random.default_rng(self.config.seed if seed is None
                                    else seed)
        summary = CampaignSummary()
        names = [s.name for s in self.scenarios]
        for _ in range(n_experiments):
            scenario_name = names[int(rng.integers(len(names)))]
            ticks = self.injection_ticks(self._by_name[scenario_name])
            fault = random_fault(
                rng, ticks, duration_ticks=self.config.fault_duration_ticks)
            summary.records.append(self.run_fault(scenario_name, fault))
        return summary

    def exhaustive_campaign(self, tick_stride: int = 10,
                            variable_names: list[str] | None = None,
                            max_experiments: int | None = None
                            ) -> CampaignSummary:
        """Fault model (b) on the min/max grid (strided subsample)."""
        summary = CampaignSummary()
        count = 0
        for scenario in self.scenarios:
            ticks = self.injection_ticks(scenario, stride=tick_stride)
            grid = minmax_fault_grid(
                ticks, variable_names,
                duration_ticks=self.config.fault_duration_ticks)
            for fault in grid:
                if max_experiments is not None and count >= max_experiments:
                    return summary
                summary.records.append(self.run_fault(scenario.name, fault))
                count += 1
        return summary

    def grid_size(self, variable_names: list[str] | None = None,
                  tick_stride: int = 1) -> int:
        """Total experiments in the full fault-model-(b) grid."""
        names = list(variable_names or DEFAULT_VARIABLES)
        total = 0
        for scenario in self.scenarios:
            total += len(self.injection_ticks(scenario, stride=tick_stride))
        return total * len(names) * 2

    def architectural_campaign(self, n_experiments: int,
                               model: ArchitecturalFaultModel | None = None,
                               seed: int | None = None
                               ) -> tuple[CampaignSummary, dict[str, int]]:
        """Fault model (a): register flips propagated into the stack.

        Returns the summary of *landed* (SDC) experiments plus the raw
        architectural outcome counts (masked flips and detectable
        crashes/hangs never reach the vehicle, as in the paper).
        """
        rng = np.random.default_rng(self.config.seed if seed is None
                                    else seed)
        model = model or ArchitecturalFaultModel()
        summary = CampaignSummary()
        outcome_counts = {outcome.value: 0 for outcome in Outcome}
        names = [s.name for s in self.scenarios]
        for _ in range(n_experiments):
            scenario_name = names[int(rng.integers(len(names)))]
            ticks = self.injection_ticks(self._by_name[scenario_name])
            arch = model.sample(
                rng, ticks, duration_ticks=self.config.fault_duration_ticks)
            outcome_counts[arch.outcome.value] += 1
            if arch.fault is not None:
                summary.records.append(
                    self.run_fault(scenario_name, arch.fault))
        return summary, outcome_counts

    def bayesian_campaign(self, injector: BayesianFaultInjector | None = None,
                          variables: tuple[str, ...] = MINED_VARIABLES,
                          threshold: float = 0.0,
                          top_k: int | None = None) -> "BayesianCampaignResult":
        """Fault model (c): mine ``F_crit``, then validate in the simulator.

        Mined faults have a *predicted* non-positive potential
        (``threshold`` relaxes that); validation separates real hazards
        from borderline predictions, which is why the paper's precision
        is 82% rather than 100%.
        """
        train_start = time.perf_counter()
        if injector is None:
            injector = BayesianFaultInjector.train(
                list(self.golden_runs().values()),
                safety_config=self.config.safety)
        train_seconds = time.perf_counter() - train_start
        candidates, mining = injector.mine_critical_faults(
            self.scene_rows(), variables=variables, threshold=threshold,
            top_k=top_k)
        summary = CampaignSummary()
        for candidate in candidates:
            fault = candidate.to_fault_spec(
                duration_ticks=self.config.fault_duration_ticks)
            summary.records.append(
                self.run_fault(candidate.scenario, fault))
        return BayesianCampaignResult(
            injector=injector, candidates=candidates, mining=mining,
            summary=summary, train_seconds=train_seconds)


@dataclass
class BayesianCampaignResult:
    """Everything produced by one Bayesian FI campaign."""

    injector: BayesianFaultInjector
    candidates: list[CandidateFault]
    mining: MiningReport
    summary: CampaignSummary
    train_seconds: float

    @property
    def precision(self) -> float:
        """Fraction of mined faults that manifested as real hazards.

        The paper's analogue: 460 of 561 mined faults (82%) manifested.
        """
        if not self.summary.records:
            return 0.0
        return self.summary.hazard_rate

    @property
    def total_wall_seconds(self) -> float:
        """Train + mine + validate cost (the paper's "< 4 hours" side)."""
        return (self.train_seconds + self.mining.wall_seconds
                + self.summary.wall_seconds)
