"""Campaign orchestration: random, exhaustive, architectural, Bayesian.

A *scene* is a (scenario, planner tick) pair drawn from the golden runs.
All four campaign styles inject into the same scene population with the
same transient-fault duration, so their hazard yields are comparable —
that comparison *is* the paper's headline result.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..ads.runtime import ADSConfig
from ..arch.injector import Outcome
from ..sim.scenario import Scenario, default_scenarios
from .bayesian_fi import (MINED_VARIABLES, BayesianFaultInjector,
                          CandidateFault, MiningReport, SceneRow,
                          scene_rows_from_trace)
from .fault_models import (DEFAULT_VARIABLES, ArchitecturalFaultModel,
                           minmax_fault_grid, random_fault)
from .parallel import ExperimentJob, execute_experiment, run_experiments
from .results import CampaignSummary, ExperimentRecord
from .safety import SafetyConfig
from .simulate import FaultSpec, RunResult, run_scenario


@dataclass(frozen=True)
class CampaignConfig:
    """Shared experiment parameters."""

    ads: ADSConfig = field(default_factory=ADSConfig)
    safety: SafetyConfig = field(default_factory=SafetyConfig)
    #: Corrupted outputs persist for two planner frames by default: the
    #: downstream consumer latches the last value it read, so a corrupted
    #: output written at frame k is still consumed during frame k+1.
    fault_duration_ticks: int = 4
    horizon_after_fault: float = 8.0       # s of post-fault monitoring
    injection_window_start: float = 2.0    # s: skip the startup transient
    injection_window_margin: float = 9.0   # s kept free at scenario end
    seed: int = 0


class Campaign:
    """Runs fault-injection campaigns over a scenario set."""

    def __init__(self, scenarios: list[Scenario] | None = None,
                 config: CampaignConfig | None = None):
        self.scenarios = scenarios or default_scenarios()
        self.config = config or CampaignConfig()
        self._by_name = {s.name: s for s in self.scenarios}
        self._golden: dict[str, RunResult] | None = None
        self._ticks: dict[tuple[str, int], list[int]] = {}

    # -- golden runs -----------------------------------------------------------

    def golden_runs(self) -> dict[str, RunResult]:
        """Fault-free reference runs (cached)."""
        if self._golden is None:
            self._golden = {
                scenario.name: run_scenario(
                    scenario, ads_config=self.config.ads,
                    seed=self.config.seed,
                    safety_config=self.config.safety, record_trace=True)
                for scenario in self.scenarios}
        return self._golden

    def scene_rows(self) -> list[SceneRow]:
        """Scene population for mining: all golden planner instants."""
        rows = []
        for name, run in self.golden_runs().items():
            duration = self._by_name[name].duration
            for row in scene_rows_from_trace(name, run.trace):
                if self._in_window(row.injection_tick, duration):
                    rows.append(row)
        return rows

    def injection_ticks(self, scenario: Scenario,
                        stride: int = 1) -> list[int]:
        """Planner-tick indices eligible for injection in a scenario.

        Cached per (scenario, stride): random and architectural draws
        consult this list once per experiment, and the golden trace it
        derives from never changes within a campaign.
        """
        key = (scenario.name, scenario.duration, stride)
        cached = self._ticks.get(key)
        if cached is None:
            golden = self.golden_runs()[scenario.name]
            ticks = [int(t) for t in golden.trace.column("tick")]
            eligible = [t for t in ticks
                        if self._in_window(t, scenario.duration)]
            cached = eligible[::stride]
            self._ticks[key] = cached
        return cached

    def _in_window(self, tick: int, duration: float) -> bool:
        """Is ``tick`` inside the injection window of a scenario?

        The window starts after the startup transient and ends
        ``injection_window_margin`` seconds before the scenario ends, so
        every experiment keeps its full post-fault monitoring horizon.
        """
        dt = self.config.ads.control_period
        start = self.config.injection_window_start / dt
        end = (duration - self.config.injection_window_margin) / dt
        return start <= tick <= end

    # -- single experiment -------------------------------------------------------

    def run_fault(self, scenario_name: str,
                  fault: FaultSpec) -> ExperimentRecord:
        """Execute one injection experiment and record the outcome."""
        return execute_experiment(self._by_name[scenario_name],
                                  self.config, fault)

    def _run_jobs(self, jobs: list[ExperimentJob],
                  workers: int | None) -> list[ExperimentRecord]:
        """Execute jobs serially or over the process pool, in job order."""
        return run_experiments(self.scenarios, self.config, jobs,
                               workers=workers)

    # -- campaigns -----------------------------------------------------------------

    def random_campaign(self, n_experiments: int,
                        seed: int | None = None,
                        workers: int | None = None) -> CampaignSummary:
        """Fault model (b), uniformly random (the paper's baseline).

        The fault draws are independent of the experiment outcomes, so
        they are all made up front (in the exact order of the serial
        loop, keeping seeded campaigns reproducible) and the resulting
        jobs fanned over ``workers`` processes.
        """
        rng = np.random.default_rng(self.config.seed if seed is None
                                    else seed)
        names = [s.name for s in self.scenarios]
        jobs: list[ExperimentJob] = []
        for _ in range(n_experiments):
            scenario_name = names[int(rng.integers(len(names)))]
            ticks = self.injection_ticks(self._by_name[scenario_name])
            fault = random_fault(
                rng, ticks, duration_ticks=self.config.fault_duration_ticks)
            jobs.append((scenario_name, fault))
        return CampaignSummary(records=self._run_jobs(jobs, workers))

    def exhaustive_campaign(self, tick_stride: int = 10,
                            variable_names: list[str] | None = None,
                            max_experiments: int | None = None,
                            workers: int | None = None
                            ) -> CampaignSummary:
        """Fault model (b) on the min/max grid (strided subsample)."""
        jobs: list[ExperimentJob] = []
        for scenario in self.scenarios:
            ticks = self.injection_ticks(scenario, stride=tick_stride)
            grid = minmax_fault_grid(
                ticks, variable_names,
                duration_ticks=self.config.fault_duration_ticks)
            jobs.extend((scenario.name, fault) for fault in grid)
            if max_experiments is not None and len(jobs) >= max_experiments:
                jobs = jobs[:max_experiments]
                break
        return CampaignSummary(records=self._run_jobs(jobs, workers))

    def grid_size(self, variable_names: list[str] | None = None,
                  tick_stride: int = 1) -> int:
        """Total experiments in the full fault-model-(b) grid."""
        names = list(variable_names or DEFAULT_VARIABLES)
        total = 0
        for scenario in self.scenarios:
            total += len(self.injection_ticks(scenario, stride=tick_stride))
        return total * len(names) * 2

    def architectural_campaign(self, n_experiments: int,
                               model: ArchitecturalFaultModel | None = None,
                               seed: int | None = None,
                               workers: int | None = None
                               ) -> tuple[CampaignSummary, dict[str, int]]:
        """Fault model (a): register flips propagated into the stack.

        Returns the summary of *landed* (SDC) experiments plus the raw
        architectural outcome counts (masked flips and detectable
        crashes/hangs never reach the vehicle, as in the paper).
        """
        rng = np.random.default_rng(self.config.seed if seed is None
                                    else seed)
        model = model or ArchitecturalFaultModel()
        outcome_counts = {outcome.value: 0 for outcome in Outcome}
        names = [s.name for s in self.scenarios]
        jobs: list[ExperimentJob] = []
        for _ in range(n_experiments):
            scenario_name = names[int(rng.integers(len(names)))]
            ticks = self.injection_ticks(self._by_name[scenario_name])
            arch = model.sample(
                rng, ticks, duration_ticks=self.config.fault_duration_ticks)
            outcome_counts[arch.outcome.value] += 1
            if arch.fault is not None:
                jobs.append((scenario_name, arch.fault))
        summary = CampaignSummary(records=self._run_jobs(jobs, workers))
        return summary, outcome_counts

    def bayesian_campaign(self, injector: BayesianFaultInjector | None = None,
                          variables: tuple[str, ...] = MINED_VARIABLES,
                          threshold: float = 0.0,
                          top_k: int | None = None,
                          use_batched: bool = True,
                          workers: int | None = None
                          ) -> "BayesianCampaignResult":
        """Fault model (c): mine ``F_crit``, then validate in the simulator.

        Mined faults have a *predicted* non-positive potential
        (``threshold`` relaxes that); validation separates real hazards
        from borderline predictions, which is why the paper's precision
        is 82% rather than 100%.  Mining uses the batched affine engine
        by default (``use_batched=False`` falls back to the scalar
        reference path); validation fans over ``workers`` processes.
        """
        train_start = time.perf_counter()
        if injector is None:
            injector = BayesianFaultInjector.train(
                list(self.golden_runs().values()),
                safety_config=self.config.safety)
        train_seconds = time.perf_counter() - train_start
        mine = (injector.mine_critical_faults_batched if use_batched
                else injector.mine_critical_faults)
        candidates, mining = mine(
            self.scene_rows(), variables=variables, threshold=threshold,
            top_k=top_k)
        jobs: list[ExperimentJob] = [
            (candidate.scenario,
             candidate.to_fault_spec(
                 duration_ticks=self.config.fault_duration_ticks))
            for candidate in candidates]
        summary = CampaignSummary(records=self._run_jobs(jobs, workers))
        return BayesianCampaignResult(
            injector=injector, candidates=candidates, mining=mining,
            summary=summary, train_seconds=train_seconds)


@dataclass
class BayesianCampaignResult:
    """Everything produced by one Bayesian FI campaign."""

    injector: BayesianFaultInjector
    candidates: list[CandidateFault]
    mining: MiningReport
    summary: CampaignSummary
    train_seconds: float

    @property
    def precision(self) -> float:
        """Fraction of mined faults that manifested as real hazards.

        The paper's analogue: 460 of 561 mined faults (82%) manifested.
        """
        if not self.summary.records:
            return 0.0
        return self.summary.hazard_rate

    @property
    def total_wall_seconds(self) -> float:
        """Train + mine + validate cost (the paper's "< 4 hours" side)."""
        return (self.train_seconds + self.mining.wall_seconds
                + self.summary.wall_seconds)
