"""The paper's kinematics-based safety model (Section III-A).

Definitions (paper Definitions 1-3):

* ``d_stop``  — displacement of the ego during an *emergency stop*
  maneuver: deceleration pinned at the maximum comfortable value
  ``a_max`` with steering frozen (Eq. 5-6), integrated numerically with
  RK4 (Eq. 7's procedure ``P``).  Both the longitudinal and the lateral
  components of the displacement matter.
* ``d_safe``  — the distance the ego can travel without striking any
  object.  For a moving lead vehicle we charge the lead its own
  worst-case stopping distance ``v_lead^2 / (2 a_max)`` (the RSS-style
  reading of the paper's "estimate vehicle and object trajectories"):
  following a same-speed lead at gap ``g`` yields ``delta ~= g``, which
  matches the paper's Example 1 numbers (cut-in collapses delta from
  20 m to 2 m).
* ``delta = d_safe - d_stop`` — the safety potential.  The vehicle is
  safe iff ``delta > 0`` in both the longitudinal and lateral directions.

Laterally, the free distance is the clearance to the road edge and any
flanking vehicle (see :func:`repro.sim.collision.lateral_clearance`);
DESIGN.md records why the ego-lane line is not used for the lateral
*envelope* (steering noise would flag every highway scene).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from ..sim.collision import SENSOR_RANGE
from ..sim.world import World


@dataclass(frozen=True)
class SafetyConfig:
    """Parameters of the safety model."""

    a_max: float = 6.0            # maximum comfortable deceleration (m/s^2)
    wheelbase: float = 2.8        # m, matches VehicleParameters
    integration_dt: float = 0.05  # s, RK4 step for the stop maneuver
    max_maneuver_time: float = 30.0   # s, hard cap on integration
    #: Lateral drift is charged over this initial window of the maneuver.
    #: Freezing steering for the *entire* stop would flag every highway
    #: scene (millimetre steering jitter integrates to metres over an
    #: 80 m stop); within ~0.5 s the still-running lane keeper re-centres.
    lateral_window: float = 0.5


@dataclass(frozen=True)
class StoppingDisplacement:
    """Result of integrating the emergency-stop maneuver."""

    longitudinal: float   # road-frame x displacement at full stop (m)
    lateral: float        # road-frame y displacement in the window (m)
    stop_time: float      # s until v = 0


@lru_cache(maxsize=65536)
def _canonical_stop(v: float, phi: float, a_max: float, wheelbase: float,
                    dt: float, lateral_window: float, max_time: float
                    ) -> tuple[float, float, float, float]:
    """Emergency stop from heading 0: pure-float RK4 on (x, y, v, theta).

    Returns ``(x_stop, y_stop, x_window, y_window, t_stop)``.  Heading
    only rotates the trajectory rigidly, so callers rotate the result by
    the actual initial heading; with quantized inputs this cache serves
    every tick of every experiment.
    """
    x = y = theta = 0.0
    t = 0.0
    x_window = y_window = 0.0
    window_done = lateral_window <= 0.0
    tan_phi = math.tan(phi)
    turn = tan_phi / wheelbase

    def derivs(xx, yy, vv, th):
        vv = vv if vv > 0.0 else 0.0
        return (vv * math.cos(th), vv * math.sin(th), -a_max, vv * turn)

    while v > 0.0 and t < max_time:
        d1 = derivs(x, y, v, theta)
        d2 = derivs(x + 0.5 * dt * d1[0], y + 0.5 * dt * d1[1],
                    v + 0.5 * dt * d1[2], theta + 0.5 * dt * d1[3])
        d3 = derivs(x + 0.5 * dt * d2[0], y + 0.5 * dt * d2[1],
                    v + 0.5 * dt * d2[2], theta + 0.5 * dt * d2[3])
        d4 = derivs(x + dt * d3[0], y + dt * d3[1], v + dt * d3[2],
                    theta + dt * d3[3])
        x += (dt / 6.0) * (d1[0] + 2 * d2[0] + 2 * d3[0] + d4[0])
        y += (dt / 6.0) * (d1[1] + 2 * d2[1] + 2 * d3[1] + d4[1])
        v += (dt / 6.0) * (d1[2] + 2 * d2[2] + 2 * d3[2] + d4[2])
        theta += (dt / 6.0) * (d1[3] + 2 * d2[3] + 2 * d3[3] + d4[3])
        t += dt
        if not window_done and t >= lateral_window:
            x_window, y_window = x, y
            window_done = True
    if not window_done:
        x_window, y_window = x, y  # stopped inside the window
    return x, y, x_window, y_window, t


def stopping_displacement(v: float, theta: float, phi: float,
                          config: SafetyConfig | None = None
                          ) -> StoppingDisplacement:
    """Integrate Eq. 5-6: brake at ``a_max`` with steering frozen.

    Returns the displacement in the road frame (x longitudinal, y
    lateral) and the stopping time, via RK4 per the paper's Eq. 7
    procedure ``P``.  Longitudinal displacement covers the full stop;
    lateral drift is charged over ``config.lateral_window`` (see
    :class:`SafetyConfig`).  Inputs are quantized slightly so repeated
    queries hit a cache.
    """
    config = config or SafetyConfig()
    v = max(v, 0.0)
    v_q = round(v / 0.05) * 0.05
    phi_q = round(phi / 5e-4) * 5e-4
    x_stop, y_stop, x_window, y_window, t_stop = _canonical_stop(
        v_q, phi_q, config.a_max, config.wheelbase, config.integration_dt,
        config.lateral_window, config.max_maneuver_time)
    cos_t, sin_t = math.cos(theta), math.sin(theta)
    longitudinal = x_stop * cos_t - y_stop * sin_t
    lateral = x_window * sin_t + y_window * cos_t
    return StoppingDisplacement(longitudinal=longitudinal, lateral=lateral,
                                stop_time=t_stop)


@lru_cache(maxsize=65536)
def _excursion_rollout(v: float, phi_fault: float, window: float,
                       slew_rate: float, recovery_phi: float,
                       wheelbase: float, dt: float,
                       max_time: float) -> float:
    """Peak |lateral drift| of a steering-corruption episode.

    The steering angle slews toward ``phi_fault`` for ``window`` seconds
    (the corruption persists at the actuation interface), then the lane
    keeper counters with its ``recovery_phi`` authority until the heading
    re-crosses zero.  Speed is held constant — the episode is short.
    """
    y = theta = phi = 0.0
    t = 0.0
    peak = 0.0
    while t < max_time:
        if t < window:
            target = phi_fault
        else:
            target = -recovery_phi if theta > 0 else recovery_phi
            if abs(theta) < 1e-4 and abs(y) <= peak:
                break
        step = max(min(target - phi, slew_rate * dt), -slew_rate * dt)
        phi += step
        theta += v * math.tan(phi) / wheelbase * dt
        y += v * math.sin(theta) * dt
        peak = max(peak, abs(y))
        t += dt
    return peak


def steering_excursion(v: float, phi_fault: float, window: float,
                       slew_rate: float = 0.6, recovery_phi: float = 0.08,
                       config: SafetyConfig | None = None) -> float:
    """Predicted lateral excursion of a steering fault (see above).

    Used by the Bayesian engine to predict physical lane/road departure;
    inputs are quantized so repeated queries hit a cache.
    """
    config = config or SafetyConfig()
    v_q = round(max(v, 0.0) / 0.1) * 0.1
    phi_q = round(phi_fault / 1e-3) * 1e-3
    window_q = round(window / 0.05) * 0.05
    return _excursion_rollout(v_q, phi_q, window_q, slew_rate,
                              recovery_phi, config.wheelbase, 0.01, 5.0)


@dataclass(frozen=True)
class SafetyPotential:
    """The pair of safety potentials (paper Definition 3)."""

    longitudinal: float
    lateral: float

    @property
    def safe(self) -> bool:
        """True iff both directions have positive potential."""
        return self.longitudinal > 0.0 and self.lateral > 0.0

    @property
    def minimum(self) -> float:
        """The binding margin."""
        return min(self.longitudinal, self.lateral)


def longitudinal_envelope(gap: float, lead_speed: float | None,
                          config: SafetyConfig | None = None) -> float:
    """``d_safe`` along the travel direction.

    ``gap`` is the current bumper gap to the nearest in-corridor object;
    ``lead_speed`` is that object's speed (``None`` for a clear road).
    A moving lead contributes its own worst-case stopping distance.
    """
    config = config or SafetyConfig()
    if lead_speed is None or gap >= SENSOR_RANGE:
        # Clear corridor: the envelope is the sensing horizon.
        return SENSOR_RANGE
    lead_stopping = max(lead_speed, 0.0) ** 2 / (2.0 * config.a_max)
    return gap + lead_stopping


def safety_potential(v: float, theta: float, phi: float, gap: float,
                     lead_speed: float | None, lateral_free: float,
                     config: SafetyConfig | None = None) -> SafetyPotential:
    """``delta`` in both directions from kinematic state + environment.

    ``lateral_free`` is the clearance to the nearest lateral obstruction
    (road edge or flanking vehicle).
    """
    config = config or SafetyConfig()
    stop = stopping_displacement(v, theta, phi, config)
    d_safe_long = longitudinal_envelope(gap, lead_speed, config)
    return SafetyPotential(
        longitudinal=d_safe_long - stop.longitudinal,
        lateral=lateral_free - abs(stop.lateral))


def world_safety_potential(world: World,
                           config: SafetyConfig | None = None
                           ) -> SafetyPotential:
    """Ground-truth ``delta`` of a live world (used to judge hazards)."""
    state = world.ego.state
    lead = world.lead_obstacle()
    if lead is None:
        gap, lead_speed = SENSOR_RANGE, None
    else:
        gap = ((lead.x - state.x)
               - (world.ego.params.length + lead.length) / 2.0)
        lead_speed = lead.v
    # Heading is measured relative to the road axis (road runs along x).
    return safety_potential(v=state.v, theta=state.theta, phi=state.phi,
                            gap=gap, lead_speed=lead_speed,
                            lateral_free=world.lateral_clearance(),
                            config=config)
