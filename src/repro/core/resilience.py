"""Campaign resilience: the fault injector tolerating faults itself.

A production fault-injection campaign is a long-running distributed
experiment, and the faults it *suffers* — a worker segfault, a hung
simulation, a preempted host, a full disk — are not the faults it
*injects*.  This module separates the two (the AVFI framing) with
three cooperating mechanisms, threaded through both orchestrators
(:mod:`repro.core.parallel` barrier driver, :mod:`repro.core.pipeline`
streaming driver):

* :class:`SupervisedExecutor` — a process pool with per-job wall-clock
  timeouts, bounded retries under seeded exponential backoff, worker
  respawn with in-flight resubmission on a crash (SIGKILL, segfault,
  OOM-kill), and quarantine: a job that keeps failing becomes a
  structured :class:`JobFailure` occupying its deterministic slot in
  the record stream instead of killing the campaign.
  ``ResilienceConfig.strict`` keeps today's fail-fast oracle.
* :class:`CampaignJournal` — an append-only completion journal of
  durably-written segments under ``cache_dir``; a campaign SIGKILLed
  mid-run and restarted with ``resume=True`` skips every journaled
  experiment and its merged stream equals the uninterrupted run.
* :class:`LeaseBoard` — TTL-heartbeat scenario claims in the shared
  ``cache_dir``: cooperating hosts grab scenarios dynamically, a
  crashed host's stale leases expire and get re-claimed, and each
  completed scenario's records are published atomically exactly once —
  the work-stealing substrate that replaces static ``--shard-index``
  partitioning as the preferred multi-host mode.

Every worker is connected to the supervisor by its own duplex pipe,
never a shared queue: a SIGKILL mid-``put`` on a shared
``multiprocessing.Queue`` can leave its feeder lock held and deadlock
the pool, while a killed pipe writer is just an EOF on the supervisor's
end.  That EOF *is* the crash detector.

The chaos suite (``tests/chaos_harness.py``) drives all of this by
injecting harness-level faults: the ``REPRO_CHAOS_KILL`` environment
variable makes workers SIGKILL themselves around job execution (read
once at worker start — the sanctioned in-worker fault port), and
:func:`repro.core.ioutil.set_write_fault_hook` fails cache and journal
writes with ``OSError``.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import os
import random
import signal
import time
import warnings
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection
from pathlib import Path
from typing import Any, Callable

from .ioutil import write_bytes_atomic

__all__ = [
    "ResilienceConfig", "JobFailure", "CampaignExecutionError",
    "SupervisedExecutor", "CampaignJournal", "LeaseBoard",
    "failure_record", "run_supervised_serial",
]


@dataclass(frozen=True)
class ResilienceConfig:
    """Supervision, resume, and multi-host knobs of one campaign.

    Part of :class:`repro.core.campaign.CampaignConfig` (and therefore
    picklable into pool workers); deliberately *not* part of the cache
    fingerprint — how a campaign survives infrastructure faults does
    not change what it computes.
    """

    #: Wall-clock seconds one experiment job may run before its worker
    #: is killed and the job retried (``None`` disables timeouts).
    #: Chunked dispatch scales the budget by the chunk length.
    job_timeout: float | None = None
    #: Total tries per job (first execution included) before the job is
    #: quarantined as a failure record.  1 disables retries.
    max_attempts: int = 3
    #: Exponential-backoff base delay between retries, seconds.  The
    #: jitter is seeded per (campaign seed, job, attempt), so reruns
    #: back off identically.
    backoff_base: float = 0.05
    #: Ceiling on one backoff delay, seconds.
    backoff_cap: float = 2.0
    #: Fail fast: the first job failure (after its retries) raises
    #: instead of quarantining — today's oracle behaviour.
    strict: bool = False
    #: Write the completion journal when the campaign has a
    #: ``cache_dir`` (each completed experiment becomes durable the
    #: moment it lands).
    journal: bool = True
    #: Resume from an existing journal instead of starting it fresh.
    resume: bool = False
    #: Records per journal segment: 1 (the default) makes every single
    #: experiment durable; larger values trade recovery granularity
    #: for fewer files.
    journal_batch: int = 1
    #: Dynamic multi-host mode: claim scenarios through lease files in
    #: the shared ``cache_dir`` instead of a static shard partition.
    lease_mode: bool = False
    #: Seconds a lease stays valid without a heartbeat; a crashed
    #: host's scenarios become re-claimable after this long.
    lease_ttl: float = 30.0
    #: Seconds between idle polls while waiting for other hosts.
    lease_poll: float = 0.25

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise ValueError(
                f"job_timeout must be positive, got {self.job_timeout}")


@dataclass(frozen=True)
class JobFailure:
    """Why a quarantined job failed: error class, detail, and attempts."""

    error: str            # exception class, "WorkerCrash", or "Timeout"
    message: str
    attempts: int


class CampaignExecutionError(RuntimeError):
    """A job failed in strict mode (or a stage that cannot quarantine)."""


def failure_record(scenario_name: str, fault, config,
                   failure: JobFailure):
    """The structured record a quarantined job leaves in the stream.

    Occupies the job's deterministic slot (scenario, tick, variable,
    value, duration, seed all preserved — the experiment stays fully
    re-runnable) with the outcome fields zeroed and the failure
    diagnosis in ``error``/``attempts``.  :class:`~repro.core.results
    .CampaignSummary` counts these separately from hazards.
    """
    from .results import ExperimentRecord, Hazard
    return ExperimentRecord(
        scenario=scenario_name, injection_tick=fault.start_tick,
        variable=fault.variable, value=fault.value,
        duration_ticks=fault.duration_ticks, seed=config.seed,
        hazard=Hazard.NONE, landed=False,
        pre_delta_long=0.0, pre_delta_lat=0.0,
        min_delta_long=0.0, min_delta_lat=0.0,
        sim_seconds=0.0, wall_seconds=0.0,
        error=f"{failure.error}: {failure.message}"
              if failure.message else failure.error,
        attempts=failure.attempts,
        kind=getattr(fault, "kind", "value"),
        channel=getattr(fault, "channel", None))


def _backoff_delay(policy: ResilienceConfig, seed: int, key,
                   attempt: int) -> float:
    """Seeded exponential backoff: deterministic per (seed, job, try)."""
    if policy.backoff_base <= 0:
        return 0.0
    token = hashlib.sha256(
        repr((seed, key, attempt)).encode("utf-8")).digest()
    rng = random.Random(int.from_bytes(token[:8], "big"))
    delay = policy.backoff_base * (2.0 ** (attempt - 1))
    return min(policy.backoff_cap, delay) * (0.5 + rng.random())


def run_supervised_serial(execute: Callable[[], Any], policy,
                          seed: int, key) -> tuple[Any, JobFailure | None]:
    """The in-process counterpart of supervised pool execution.

    Serial campaigns get the same retry/quarantine semantics as pooled
    ones (timeouts excepted — a hang cannot be interrupted in-process),
    so ``workers=None`` and ``workers=4`` stay record-for-record
    equivalent even when a job fails deterministically.  In strict mode
    the original exception propagates unchanged — the fail-fast oracle.
    """
    policy = policy or ResilienceConfig()
    attempt = 0
    while True:
        attempt += 1
        try:
            return execute(), None
        except KeyboardInterrupt:
            raise
        except Exception as err:
            if policy.strict:
                raise
            if attempt >= policy.max_attempts:
                return None, JobFailure(error=type(err).__name__,
                                        message=str(err),
                                        attempts=attempt)
            time.sleep(_backoff_delay(policy, seed, key, attempt))


# -- chaos hook (worker side) --------------------------------------------------

#: Environment variable the chaos suite sets to make pool workers
#: SIGKILL themselves around job execution: ``"<probability>:<seed>"``.
#: Read once per worker start; each (re)spawned worker draws a fresh
#: seeded sequence, so a retried job is not doomed to die again.
CHAOS_KILL_ENV = "REPRO_CHAOS_KILL"


class _ChaosKiller:
    """Seeded self-SIGKILL around job execution (test-only, env-armed)."""

    def __init__(self, probability: float, seed: int):
        self.probability = probability
        self._rng = random.Random((seed, os.getpid()).__hash__())

    @classmethod
    def from_env(cls) -> "_ChaosKiller | None":
        spec = os.environ.get(CHAOS_KILL_ENV)
        if not spec:
            return None
        try:
            prob_text, _, seed_text = spec.partition(":")
            probability = float(prob_text)
            seed = int(seed_text) if seed_text else 0
        except ValueError:
            return None
        if probability <= 0:
            return None
        return cls(probability, seed)

    def maybe_kill(self) -> None:
        if self._rng.random() < self.probability:
            os.kill(os.getpid(), signal.SIGKILL)


# -- worker process ------------------------------------------------------------

def _supervised_worker_main(conn, initializer, initargs) -> None:
    """Entry point of one supervised worker process.

    Speaks a tiny framed protocol on its private duplex pipe:
    ``("task", task_id, fn, payload)`` in, ``("ok", task_id, result)``
    or ``("err", task_id, error_class, message)`` out, ``("stop",)``
    to exit.  Every failure mode the supervisor cares about — SIGKILL,
    segfault, an unpicklable result — degrades to an EOF or a broken
    send, which the supervisor treats as a crash of the in-flight job.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)   # ^C belongs to the
    chaos = _ChaosKiller.from_env()                # supervisor
    try:
        if initializer is not None:
            initializer(*initargs)
    except BaseException as err:                   # init is all-or-nothing
        try:
            conn.send(("init_err", type(err).__name__, str(err)))
        except (OSError, ValueError):
            pass
        return
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return                                  # supervisor went away
        if message[0] == "stop":
            return
        _, task_id, fn, payload = message
        if chaos is not None:
            chaos.maybe_kill()                      # die before the work
        try:
            outcome = ("ok", task_id, fn(payload))
        except Exception as err:
            outcome = ("err", task_id, type(err).__name__, str(err))
        if chaos is not None:
            chaos.maybe_kill()                      # die with the result
        try:                                        # computed but unsent
            conn.send(outcome)
        except (OSError, ValueError):
            return


class _Worker:
    """One supervised process plus the supervisor's end of its pipe."""

    def __init__(self, context, initializer, initargs):
        self.conn, child_conn = context.Pipe(duplex=True)
        self.process = context.Process(
            target=_supervised_worker_main,
            args=(child_conn, initializer, initargs), daemon=True)
        self.process.start()
        child_conn.close()   # our copy only; worker death must EOF us
        self.task: "_SupervisedTask | None" = None

    def kill(self) -> None:
        try:
            if self.process.is_alive():
                os.kill(self.process.pid, signal.SIGKILL)
        except (OSError, ProcessLookupError):
            pass
        self.process.join(timeout=5.0)
        self.conn.close()

    def stop(self) -> None:
        """Polite shutdown of an idle worker (kill if it won't listen)."""
        try:
            self.conn.send(("stop",))
        except (OSError, ValueError):
            pass
        self.process.join(timeout=2.0)
        if self.process.is_alive():
            self.kill()
        else:
            self.conn.close()


@dataclass
class _SupervisedTask:
    """Supervisor-side state of one submitted job."""

    task_id: int
    fn: Callable
    payload: Any
    tag: Any
    timeout: float | None
    attempts: int = 0
    deadline: float | None = None
    last_error: tuple[str, str] | None = None


class SupervisedExecutor:
    """A process pool that survives the faults its workers suffer.

    The drop-in execution engine of both campaign drivers.  Contract
    differences from ``ProcessPoolExecutor`` are exactly the resilience
    semantics:

    * a worker crash (SIGKILL, segfault, OOM) respawns the worker and
      resubmits its in-flight job instead of breaking the pool;
    * a job exceeding its wall-clock ``timeout`` gets its worker killed
      and is retried;
    * every failure mode — crash, timeout, raised exception — retries
      up to ``policy.max_attempts`` with seeded exponential backoff,
      then surfaces as a :class:`JobFailure` event (``policy.strict``
      raises :class:`CampaignExecutionError` at the first one);
    * results arrive as ``(tag, value, failure)`` events from
      :meth:`next_events`, in completion order — callers own ordering,
      exactly as they did with futures.

    ``fn`` and ``payload`` of every submission must pickle (they cross
    the pipe even under ``fork``); callers keep their existing
    picklability pre-checks.
    """

    def __init__(self, workers: int, context,
                 initializer: Callable | None = None,
                 initargs: tuple = (),
                 policy: ResilienceConfig | None = None,
                 seed: int = 0):
        self.policy = policy or ResilienceConfig()
        self.seed = seed
        self._context = context
        self._initializer = initializer
        self._initargs = initargs
        self._max_workers = max(1, workers)
        self._workers: list[_Worker] = []
        self._queue: deque[_SupervisedTask] = deque()
        self._delayed: list[tuple[float, int, _SupervisedTask]] = []
        self._outstanding = 0
        self._next_id = 0
        self._closed = False

    # -- submission ------------------------------------------------------------

    def submit(self, fn: Callable, payload, tag=None,
               timeout: float | None = None) -> None:
        """Queue one job; its completion arrives via :meth:`next_events`."""
        if self._closed:
            raise RuntimeError("executor is shut down")
        task = _SupervisedTask(task_id=self._next_id, fn=fn,
                               payload=payload,
                               tag=tag if tag is not None else self._next_id,
                               timeout=timeout if timeout is not None
                               else self.policy.job_timeout)
        self._next_id += 1
        self._outstanding += 1
        self._queue.append(task)

    @property
    def outstanding(self) -> int:
        """Jobs submitted but not yet surfaced as events."""
        return self._outstanding

    # -- completion ------------------------------------------------------------

    def next_events(self, max_wait: float | None = None
                    ) -> list[tuple[Any, Any, JobFailure | None]]:
        """Block until >= 1 job completes; return all completions so far.

        Each event is ``(tag, value, failure)`` with exactly one of
        ``value``/``failure`` meaningful.  ``max_wait`` bounds the wait
        (an empty list can then return — the pipeline driver uses that
        gap for lease heartbeats).  Raises if nothing is outstanding.
        """
        if not self._outstanding:
            raise RuntimeError("no outstanding jobs")
        events: list = []
        wait_until = (time.monotonic() + max_wait
                      if max_wait is not None else None)
        while not events:
            self._dispatch_ready()
            budget = self._wait_budget(wait_until)
            self._collect(events, budget)
            self._reap_timeouts(events)
            if events or self._check_expired(wait_until):
                break
        self._outstanding -= len(events)
        return events

    def drain(self):
        """Yield completion events until every submitted job surfaced."""
        while self._outstanding:
            yield from self.next_events()

    # -- shutdown --------------------------------------------------------------

    def shutdown(self, kill: bool = False) -> None:
        """Stop all workers (``kill`` skips politeness — ^C teardown)."""
        self._closed = True
        for worker in self._workers:
            if kill or worker.task is not None:
                worker.kill()
            else:
                worker.stop()
        self._workers.clear()
        self._queue.clear()
        self._delayed.clear()
        self._outstanding = 0

    def __enter__(self) -> "SupervisedExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(kill=exc_info[0] is not None)

    # -- internals -------------------------------------------------------------

    def _dispatch_ready(self) -> None:
        now = time.monotonic()
        while self._delayed and self._delayed[0][0] <= now:
            self._queue.append(heapq.heappop(self._delayed)[2])
        while self._queue:
            worker = self._idle_worker()
            if worker is None:
                return
            task = self._queue.popleft()
            task.attempts += 1
            task.deadline = (now + task.timeout
                             if task.timeout is not None else None)
            try:
                worker.conn.send(("task", task.task_id, task.fn,
                                  task.payload))
            except (OSError, ValueError):
                # The worker died between spawn and first task; retry
                # the send on a fresh worker without burning an attempt.
                task.attempts -= 1
                self._discard_worker(worker)
                self._queue.appendleft(task)
                continue
            worker.task = task

    def _idle_worker(self) -> _Worker | None:
        for worker in self._workers:
            if worker.task is None:
                return worker
        if len(self._workers) < self._max_workers:
            worker = _Worker(self._context, self._initializer,
                             self._initargs)
            self._workers.append(worker)
            return worker
        return None

    def _wait_budget(self, wait_until: float | None) -> float | None:
        """Seconds to block in ``connection.wait`` this iteration."""
        now = time.monotonic()
        marks = []
        if wait_until is not None:
            marks.append(wait_until)
        if self._delayed:
            marks.append(self._delayed[0][0])
        for worker in self._workers:
            if worker.task is not None and worker.task.deadline is not None:
                marks.append(worker.task.deadline)
        if not marks:
            return None
        return max(0.0, min(marks) - now) + 0.005

    def _collect(self, events: list, budget: float | None) -> None:
        busy = [w for w in self._workers if w.task is not None]
        if not busy:
            if budget:
                time.sleep(min(budget, 0.05))
            return
        conns = {w.conn: w for w in busy}
        try:
            ready = connection.wait(list(conns), timeout=budget)
        except OSError:
            ready = list(conns)
        for conn in ready:
            worker = conns[conn]
            try:
                message = conn.recv()
            except Exception:
                self._on_crash(worker, events)
                continue
            self._on_message(worker, message, events)

    def _on_message(self, worker: _Worker, message, events: list) -> None:
        kind = message[0]
        if kind == "init_err":
            self._discard_worker(worker)
            raise CampaignExecutionError(
                f"worker initialization failed: {message[1]}: "
                f"{message[2]}")
        task = worker.task
        worker.task = None
        if task is None or message[1] != task.task_id:
            return                             # late echo of a killed job
        if kind == "ok":
            events.append((task.tag, message[2], None))
        else:
            task.last_error = (message[2], message[3])
            self._retry_or_quarantine(task, events)

    def _on_crash(self, worker: _Worker, events: list) -> None:
        task = worker.task
        worker.task = None
        self._discard_worker(worker)
        if task is not None:
            task.last_error = ("WorkerCrash",
                               "worker process died mid-job")
            self._retry_or_quarantine(task, events)

    def _reap_timeouts(self, events: list) -> None:
        now = time.monotonic()
        for worker in list(self._workers):
            task = worker.task
            if task is None or task.deadline is None \
                    or now < task.deadline:
                continue
            worker.task = None
            self._discard_worker(worker, kill=True)
            task.last_error = (
                "Timeout", f"exceeded {task.timeout:.3g}s wall clock")
            self._retry_or_quarantine(task, events)

    def _retry_or_quarantine(self, task: _SupervisedTask,
                             events: list) -> None:
        error, message = task.last_error
        if self.policy.strict:
            raise CampaignExecutionError(
                f"job {task.tag!r} failed ({error}: {message}) and "
                f"the campaign is strict")
        if task.attempts >= self.policy.max_attempts:
            events.append((task.tag, None,
                           JobFailure(error=error, message=message,
                                      attempts=task.attempts)))
            return
        delay = _backoff_delay(self.policy, self.seed, task.task_id,
                               task.attempts)
        heapq.heappush(self._delayed,
                       (time.monotonic() + delay, task.task_id, task))

    def _discard_worker(self, worker: _Worker, kill: bool = False) -> None:
        if kill:
            worker.kill()
        else:
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.kill()
        if worker in self._workers:
            self._workers.remove(worker)

    def _check_expired(self, wait_until: float | None) -> bool:
        return (wait_until is not None
                and time.monotonic() >= wait_until)


# -- durable resume journal ----------------------------------------------------

class CampaignJournal:
    """Append-only completion journal: one campaign's durable progress.

    Layout under its directory (inside ``cache_dir``, keyed by the
    campaign fingerprint plus a per-style work key, so two campaigns
    never share a journal):

    * ``meta.json`` — the campaign key; a mismatch on load means the
      journal belongs to different work and is ignored.
    * ``seg-<n>-<pid>.jsonl`` — one flushed batch of completed
      records, written atomically with ``fsync`` (the crash-durability
      contract resume depends on).

    Entries are keyed by *experiment identity* (scenario, tick,
    variable, value, duration, seed), not by slot: completion order is
    nondeterministic, so a crash can leave gaps anywhere in the slot
    sequence, yet every journaled experiment — gap or not — is skipped
    on resume.  Identical duplicate jobs (a seeded draw can repeat a
    fault) are handled as a multiset: each journaled copy satisfies
    one occurrence.

    A truncated or corrupt segment (torn write, bit rot, chaos
    injection) is skipped entry by entry: those experiments simply
    re-execute — the safe direction.  Failure records are *not*
    journaled: a resumed campaign retries what failed, it only skips
    what succeeded.
    """

    def __init__(self, directory: str | Path, campaign_key: str,
                 batch: int = 1):
        self.directory = Path(directory)
        self.campaign_key = campaign_key
        self.batch = max(1, batch)
        self._pending: list[dict] = []
        self._segment = 0
        self._loaded: dict[tuple, deque] = {}
        #: Counters the resume tests assert on: journaled records
        #: reused vs. fresh executions appended this run.
        self.hits = 0
        self.appended = 0
        self.loaded_count = 0

    # -- lifecycle -------------------------------------------------------------

    def start(self, resume: bool) -> None:
        """Open the journal: load entries on resume, else start fresh.

        Starting fresh removes the previous run's segments — a journal
        always describes exactly one campaign execution, so a later
        ``resume`` continues *this* run, not a stale ancestor.
        """
        if resume:
            self._load()
            return
        self._clear_segments()
        self._write_meta()

    @staticmethod
    def record_key(record) -> tuple:
        """The experiment identity a journal entry is matched by.

        ``kind``/``channel`` join the key so an interface fault and a
        value fault can never alias (the synthetic ``kind@channel``
        variable label already separates them; the explicit fields make
        the invariant independent of the labeling convention).
        """
        return (record.scenario, record.injection_tick, record.variable,
                record.value, record.duration_ticks, record.seed,
                getattr(record, "kind", "value"),
                getattr(record, "channel", None))

    @staticmethod
    def job_key(scenario_name: str, fault, seed: int) -> tuple:
        """Identity of a not-yet-run job (mirrors :meth:`record_key`)."""
        return (scenario_name, fault.start_tick, fault.variable,
                fault.value, fault.duration_ticks, seed,
                getattr(fault, "kind", "value"),
                getattr(fault, "channel", None))

    def claim(self, scenario_name: str, fault, seed: int):
        """Pop the journaled record of this job, if one survives.

        Returns the :class:`~repro.core.results.ExperimentRecord` the
        original run produced (the resume path emits it verbatim — the
        merged stream stays bit-for-bit the uninterrupted stream), or
        ``None`` when the job must execute.
        """
        bucket = self._loaded.get(
            self.job_key(scenario_name, fault, seed))
        if not bucket:
            return None
        self.hits += 1
        return bucket.popleft()

    def append(self, record) -> None:
        """Journal one completed experiment (durable at flush)."""
        if record.error is not None:
            return                      # failures are retried on resume
        from .persistence import record_to_dict
        self._pending.append(record_to_dict(record))
        self.appended += 1
        if len(self._pending) >= self.batch:
            self.flush()

    def flush(self) -> None:
        """Write pending entries as one atomic, fsync'd segment.

        An injected/real ``OSError`` (full disk) keeps the entries
        pending — the stream and summary already have the records, so
        the only cost of a failed flush is re-execution after a crash.
        """
        if not self._pending:
            return
        payload = "".join(json.dumps(entry, separators=(",", ":"))
                          + "\n" for entry in self._pending)
        path = (self.directory
                / f"seg-{self._segment:08d}-{os.getpid()}.jsonl")
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            if not (self.directory / "meta.json").exists():
                self._write_meta()
            write_bytes_atomic(path, payload.encode("utf-8"), fsync=True)
        except OSError:
            return
        self._segment += 1
        self._pending.clear()

    def close(self) -> None:
        self.flush()

    # -- internals -------------------------------------------------------------

    def _write_meta(self) -> None:
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            write_bytes_atomic(
                self.directory / "meta.json",
                json.dumps({"campaign_key": self.campaign_key}
                           ).encode("utf-8"), fsync=True)
        except OSError:
            pass

    def _clear_segments(self) -> None:
        if not self.directory.is_dir():
            return
        for path in self.directory.glob("seg-*.jsonl"):
            try:
                path.unlink()
            except OSError:
                pass

    def _load(self) -> None:
        from .persistence import record_from_dict
        meta_path = self.directory / "meta.json"
        try:
            meta = json.loads(meta_path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            meta = None
        if not isinstance(meta, dict) \
                or meta.get("campaign_key") != self.campaign_key:
            # Foreign or unreadable journal: this work never ran here.
            self._clear_segments()
            self._write_meta()
            return
        segments = sorted(self.directory.glob("seg-*.jsonl"))
        for path in segments:
            try:
                lines = path.read_bytes().decode("utf-8",
                                                 errors="replace")
            except OSError:
                continue
            for line in lines.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    record = record_from_dict(json.loads(line))
                except (json.JSONDecodeError, KeyError, TypeError,
                        ValueError):
                    continue            # torn/corrupt entry: re-execute
                self._loaded.setdefault(self.record_key(record),
                                        deque()).append(record)
                self.loaded_count += 1
        self._segment = len(segments)


# -- lease-based scenario claims -----------------------------------------------

def _scenario_digest(name: str) -> str:
    return hashlib.sha256(name.encode("utf-8")).hexdigest()[:16]


class LeaseBoard:
    """Dynamic scenario claims for cooperating hosts in one ``cache_dir``.

    Three file families under the board directory, all named by a
    digest of the scenario:

    * ``lease-<digest>.json`` — a live claim: owner id and expiry.
      Claimed atomically (``O_CREAT|O_EXCL``); refreshed by the
      owner's heartbeats; *stolen* once expired (unlink + re-create —
      the one benign race: two stealers may both run the scenario, and
      publication makes that harmless).
    * ``records-<digest>.jsonl`` — the scenario's completed records,
      published in one atomic rename.  Existence *is* the done marker,
      so a host killed between finishing a scenario and publishing it
      simply leaves the scenario claimable — re-run, never lost, never
      double-counted (the last atomic publish wins with identical
      experiment identities).
    * the records of every scenario merge into the single-host summary
      with ``repro merge '<board>/records-*.jsonl'``.
    """

    def __init__(self, directory: str | Path, style: str,
                 owner: str | None = None, ttl: float = 30.0):
        self.directory = Path(directory)
        self.style = style
        self.ttl = ttl
        self.owner = owner or f"{os.uname().nodename}-{os.getpid()}-" \
                              f"{random.getrandbits(32):08x}"
        self.directory.mkdir(parents=True, exist_ok=True)
        self._held: set[str] = set()
        self._last_heartbeat = 0.0

    # -- claims ----------------------------------------------------------------

    def _lease_path(self, name: str) -> Path:
        return self.directory / f"lease-{_scenario_digest(name)}.json"

    def _records_path(self, name: str) -> Path:
        return self.directory / f"records-{_scenario_digest(name)}.jsonl"

    def is_done(self, name: str) -> bool:
        return self._records_path(name).exists()

    def try_claim(self, name: str) -> bool:
        """Claim one scenario: atomic create, or steal an expired lease."""
        if self.is_done(name):
            return False
        path = self._lease_path(name)
        if self._create_lease(path, name):
            return True
        entry = self._read_lease(path)
        if entry is None:
            # Torn or vanished lease file: treat as stale.
            path.unlink(missing_ok=True)
            return self._create_lease(path, name)
        if entry.get("owner") == self.owner:
            self._held.add(name)
            return True
        if float(entry.get("expires", 0.0)) > time.time():
            return False
        path.unlink(missing_ok=True)    # expired: steal
        return self._create_lease(path, name)

    def _create_lease(self, path: Path, name: str) -> bool:
        payload = json.dumps({
            "scenario": name, "owner": self.owner,
            "expires": time.time() + self.ttl}).encode("utf-8")
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            return False
        try:
            os.write(fd, payload)
        finally:
            os.close(fd)
        self._held.add(name)
        return True

    @staticmethod
    def _read_lease(path: Path) -> dict | None:
        try:
            entry = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        return entry if isinstance(entry, dict) else None

    def heartbeat(self, min_interval: float | None = None) -> None:
        """Refresh the expiry of every held lease (rate-limited).

        Called opportunistically from the driver's event loop; the
        default rate limit (a third of the TTL) keeps the cost at a
        few tiny writes per TTL regardless of event frequency.

        A shared-filesystem flake (``OSError`` on the atomic refresh
        write) must not kill the owning worker: the failure degrades
        to a :class:`RuntimeWarning` and the beat timer is left
        un-armed, so the very next :meth:`heartbeat` call retries the
        failed refresh immediately instead of waiting out the rate
        limit while the lease drifts toward expiry.
        """
        now = time.time()
        interval = (self.ttl / 3.0 if min_interval is None
                    else min_interval)
        if now - self._last_heartbeat < interval:
            return
        failures: list[tuple[str, OSError]] = []
        for name in self._held:
            try:
                write_bytes_atomic(
                    self._lease_path(name),
                    json.dumps({"scenario": name, "owner": self.owner,
                                "expires": now + self.ttl}
                               ).encode("utf-8"))
            except OSError as error:
                failures.append((name, error))
        if failures:
            name, error = failures[0]
            warnings.warn(
                f"lease heartbeat failed for {len(failures)} held "
                f"scenario(s) (e.g. {name!r}: {error}); leases expire "
                f"in <= {self.ttl:.0f}s unless the next beat succeeds",
                RuntimeWarning, stacklevel=2)
            return          # timer stays un-armed: next call retries
        self._last_heartbeat = now

    def release(self, name: str) -> None:
        self._held.discard(name)
        entry = self._read_lease(self._lease_path(name))
        if entry is not None and entry.get("owner") == self.owner:
            self._lease_path(name).unlink(missing_ok=True)

    def release_all(self) -> None:
        for name in list(self._held):
            self.release(name)

    # -- publication -----------------------------------------------------------

    def publish(self, name: str, records) -> None:
        """Atomically publish one finished scenario's records (= done).

        The stream format matches :class:`~repro.core.persistence
        .JsonlRecordSink` (style-tagged JSONL), so the per-scenario
        files merge with ``repro merge`` like any shard streams.
        """
        from .persistence import record_to_dict
        lines = [json.dumps({"_meta": {"style": self.style,
                                       "scenario": name}},
                            separators=(",", ":"))]
        lines.extend(json.dumps(record_to_dict(record),
                                separators=(",", ":"))
                     for record in records)
        write_bytes_atomic(self._records_path(name),
                           ("\n".join(lines) + "\n").encode("utf-8"),
                           fsync=True)

    def published_names(self, names) -> list[str]:
        """The subset of ``names`` whose records are already published."""
        return [name for name in names if self.is_done(name)]

    def record_paths(self, names) -> list[Path]:
        """Published per-scenario stream paths, in campaign order."""
        return [self._records_path(name) for name in names
                if self.is_done(name)]
