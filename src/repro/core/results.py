"""Experiment records and campaign summaries."""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field


class Hazard(enum.Enum):
    """How a fault-injection experiment ended, worst first."""

    COLLISION = "collision"
    OFF_ROAD = "off_road"
    SAFETY_VIOLATION = "safety_violation"   # delta <= 0 at some instant
    NONE = "none"


_SEVERITY = {Hazard.COLLISION: 3, Hazard.OFF_ROAD: 2,
             Hazard.SAFETY_VIOLATION: 1, Hazard.NONE: 0}


def worst_hazard(hazards: list[Hazard]) -> Hazard:
    """The most severe hazard in a list (NONE for an empty list)."""
    if not hazards:
        return Hazard.NONE
    return max(hazards, key=lambda h: _SEVERITY[h])


@dataclass(frozen=True)
class ExperimentRecord:
    """One fault-injection experiment, fully reproducible from its fields."""

    scenario: str
    injection_tick: int
    variable: str
    value: float
    duration_ticks: int
    seed: int
    hazard: Hazard
    landed: bool                 # did the corruption touch a payload?
    pre_delta_long: float        # ground-truth delta at injection time
    pre_delta_lat: float
    min_delta_long: float        # worst delta in the post-injection window
    min_delta_lat: float
    sim_seconds: float           # simulated time covered
    wall_seconds: float          # host time spent

    @property
    def hazardous(self) -> bool:
        """True for any safety hazard."""
        return self.hazard is not Hazard.NONE

    @property
    def pre_injection_safe(self) -> bool:
        """True when the scene was safe before the fault (F_crit premise)."""
        return self.pre_delta_long > 0.0 and self.pre_delta_lat > 0.0


@dataclass
class CampaignSummary:
    """Aggregate statistics of a list of experiment records."""

    records: list[ExperimentRecord] = field(default_factory=list)

    @property
    def total(self) -> int:
        """Number of experiments."""
        return len(self.records)

    @property
    def hazards(self) -> int:
        """Experiments ending in any hazard."""
        return sum(1 for r in self.records if r.hazardous)

    @property
    def hazard_rate(self) -> float:
        """Fraction of experiments ending in a hazard."""
        return self.hazards / self.total if self.total else 0.0

    @property
    def landed(self) -> int:
        """Experiments whose corruption touched a payload."""
        return sum(1 for r in self.records if r.landed)

    @property
    def wall_seconds(self) -> float:
        """Total host time across experiments."""
        return sum(r.wall_seconds for r in self.records)

    def hazard_breakdown(self) -> dict[str, int]:
        """Counts per hazard class."""
        counts = Counter(r.hazard.value for r in self.records)
        return dict(counts)

    def hazards_by_variable(self) -> dict[str, int]:
        """Hazard counts grouped by injected variable (for E3)."""
        counts: Counter = Counter()
        for record in self.records:
            if record.hazardous:
                counts[record.variable] += 1
        return dict(counts)

    def experiments_by_variable(self) -> dict[str, int]:
        """Experiment counts grouped by injected variable."""
        counts: Counter = Counter()
        for record in self.records:
            counts[record.variable] += 1
        return dict(counts)

    def hazardous_scenes(self) -> set[tuple[str, int]]:
        """Distinct (scenario, tick) scenes where hazards manifested."""
        return {(r.scenario, r.injection_tick)
                for r in self.records if r.hazardous}
