"""Experiment records, record sinks, and campaign summaries.

:class:`CampaignSummary` aggregates *incrementally*: every statistic it
exposes (totals, hazard breakdowns, per-variable tables, hazardous
scenes) is maintained by :meth:`CampaignSummary.add` as records arrive,
so streamed out-of-core campaigns can drop each record after feeding it
in and still report the same numbers as an in-memory run.  By default
records are also retained on ``.records`` for compatibility with
persistence and the analysis helpers; ``keep_records=False`` bounds the
summary's memory at O(variables + hazardous scenes) regardless of
campaign size.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass


class Hazard(enum.Enum):
    """How a fault-injection experiment ended, worst first."""

    COLLISION = "collision"
    OFF_ROAD = "off_road"
    SAFETY_VIOLATION = "safety_violation"   # delta <= 0 at some instant
    NONE = "none"


_SEVERITY = {Hazard.COLLISION: 3, Hazard.OFF_ROAD: 2,
             Hazard.SAFETY_VIOLATION: 1, Hazard.NONE: 0}


def worst_hazard(hazards: list[Hazard]) -> Hazard:
    """The most severe hazard in a list (NONE for an empty list)."""
    if not hazards:
        return Hazard.NONE
    return max(hazards, key=lambda h: _SEVERITY[h])


@dataclass(frozen=True)
class ExperimentRecord:
    """One fault-injection experiment, fully reproducible from its fields."""

    scenario: str
    injection_tick: int
    variable: str
    value: float
    duration_ticks: int
    seed: int
    hazard: Hazard
    landed: bool                 # did the corruption touch a payload?
    pre_delta_long: float        # ground-truth delta at injection time
    pre_delta_lat: float
    min_delta_long: float        # worst delta in the post-injection window
    min_delta_lat: float
    sim_seconds: float           # simulated time covered
    wall_seconds: float          # host time spent
    #: Quarantine diagnosis when the experiment could not be executed
    #: ("ErrorClass: detail"); ``None`` for every real outcome.  A
    #: failure record keeps its full fault identity — scenario, tick,
    #: variable, value, duration, seed — so the experiment is exactly
    #: re-runnable, while the outcome fields above are zeroed.
    error: str | None = None
    #: Executions attempted before quarantine (1 on success — retries
    #: that eventually succeed report like first-try successes, keeping
    #: streams bit-for-bit comparable across supervision settings).
    attempts: int = 1
    #: Fault family: ``"value"`` for payload corruptions, or an
    #: interface fault kind (drop/freeze/delay/jitter/hang).  Serialized
    #: only when not ``"value"`` so legacy streams stay byte-identical.
    kind: str = "value"
    #: Target channel of an interface fault; ``None`` for value faults.
    channel: str | None = None
    #: True when the graceful-degradation safe stop engaged during the
    #: run.  ``degraded and not hazardous`` is a *masked* outcome: the
    #: fault landed but degradation contained it.
    degraded: bool = False

    @property
    def failed(self) -> bool:
        """True when the experiment was quarantined, not executed."""
        return self.error is not None

    @property
    def hazardous(self) -> bool:
        """True for any safety hazard."""
        return self.hazard is not Hazard.NONE

    @property
    def masked_by_degradation(self) -> bool:
        """Safe stop engaged and no hazard manifested."""
        return self.degraded and self.hazard is Hazard.NONE

    @property
    def pre_injection_safe(self) -> bool:
        """True when the scene was safe before the fault (F_crit premise)."""
        return self.pre_delta_long > 0.0 and self.pre_delta_lat > 0.0


class ListSink:
    """The default record sink: an in-memory list.

    Any object with an ``add(record)`` method is a valid sink;
    :class:`repro.core.persistence.JsonlRecordSink` streams to disk
    instead for out-of-core campaigns.
    """

    def __init__(self):
        self.records: list[ExperimentRecord] = []

    def add(self, record: ExperimentRecord) -> None:
        self.records.append(record)


class CampaignSummary:
    """Aggregate statistics of a stream (or list) of experiment records.

    Statistics are maintained incrementally by :meth:`add`; constructing
    with ``records=[...]`` simply feeds them through.  With
    ``keep_records=False`` the records themselves are not retained —
    the memory bound streamed campaigns rely on — and ``.records`` stays
    empty while every aggregate still reflects the full stream.
    """

    def __init__(self, records: list[ExperimentRecord] | None = None,
                 keep_records: bool = True):
        self.keep_records = keep_records
        self.records: list[ExperimentRecord] = []
        self._total = 0
        self._hazards = 0
        self._landed = 0
        self._failures = 0
        self._degraded = 0
        self._masked = 0
        self._wall_seconds = 0.0
        self._hazard_counts: Counter = Counter()
        self._hazards_by_variable: Counter = Counter()
        self._experiments_by_variable: Counter = Counter()
        self._hazardous_scenes: set[tuple[str, int]] = set()
        #: Out-of-band annotations (e.g. the ``stage_timings`` block
        #: written when profiling is on).  Not part of the scientific
        #: aggregates: :meth:`same_aggregates` ignores it.
        self.extra_info: dict = {}
        for record in records or []:
            self.add(record)

    def add(self, record: ExperimentRecord) -> None:
        """Fold one record into every aggregate (and retain it if kept).

        Failure records (quarantined jobs) are counted apart from
        executed experiments: they contribute to ``failures`` only,
        never to totals, hazard rates, or per-variable tables — a
        campaign that suffered infrastructure faults reports the same
        science as one that did not, plus a failure count.
        """
        if record.failed:
            self._failures += 1
            if self.keep_records:
                self.records.append(record)
            return
        self._total += 1
        self._wall_seconds += record.wall_seconds
        self._experiments_by_variable[record.variable] += 1
        self._hazard_counts[record.hazard.value] += 1
        if record.landed:
            self._landed += 1
        if record.degraded:
            self._degraded += 1
            if not record.hazardous:
                self._masked += 1
        if record.hazardous:
            self._hazards += 1
            self._hazards_by_variable[record.variable] += 1
            self._hazardous_scenes.add((record.scenario,
                                        record.injection_tick))
        if self.keep_records:
            self.records.append(record)

    def __repr__(self) -> str:
        failed = f", failures={self._failures}" if self._failures else ""
        return (f"CampaignSummary(total={self._total}, "
                f"hazards={self._hazards}{failed}, "
                f"keep_records={self.keep_records})")

    @property
    def failures(self) -> int:
        """Experiments quarantined by supervision instead of executed."""
        return self._failures

    @property
    def total(self) -> int:
        """Number of experiments."""
        return self._total

    @property
    def hazards(self) -> int:
        """Experiments ending in any hazard."""
        return self._hazards

    @property
    def hazard_rate(self) -> float:
        """Fraction of experiments ending in a hazard."""
        return self._hazards / self._total if self._total else 0.0

    @property
    def landed(self) -> int:
        """Experiments whose corruption touched a payload."""
        return self._landed

    @property
    def degraded(self) -> int:
        """Experiments where the safe-stop fallback engaged."""
        return self._degraded

    @property
    def masked(self) -> int:
        """Degraded experiments that ended with no hazard — faults the
        graceful-degradation mode contained."""
        return self._masked

    @property
    def wall_seconds(self) -> float:
        """Total host time across experiments."""
        return self._wall_seconds

    def hazard_breakdown(self) -> dict[str, int]:
        """Counts per hazard class."""
        return dict(self._hazard_counts)

    def hazards_by_variable(self) -> dict[str, int]:
        """Hazard counts grouped by injected variable (for E3)."""
        return dict(self._hazards_by_variable)

    def experiments_by_variable(self) -> dict[str, int]:
        """Experiment counts grouped by injected variable."""
        return dict(self._experiments_by_variable)

    def hazardous_scenes(self) -> set[tuple[str, int]]:
        """Distinct (scenario, tick) scenes where hazards manifested."""
        return set(self._hazardous_scenes)

    @classmethod
    def merge(cls, summaries: "list[CampaignSummary]") -> "CampaignSummary":
        """Fold several summaries into one, aggregate by aggregate.

        The cross-host counterpart of :meth:`add`: each shard of a
        sharded campaign aggregates its own record stream, and merging
        the shard summaries reproduces the unsharded campaign's summary
        (every statistic is a sum, count, or set union, so the fold is
        exact).  Records are retained only when every input retained
        them, concatenated in the given shard order.
        """
        merged = cls(keep_records=all(s.keep_records for s in summaries)
                     if summaries else True)
        for summary in summaries:
            merged._total += summary._total
            merged._hazards += summary._hazards
            merged._landed += summary._landed
            merged._failures += summary._failures
            merged._degraded += summary._degraded
            merged._masked += summary._masked
            merged._wall_seconds += summary._wall_seconds
            merged._hazard_counts.update(summary._hazard_counts)
            merged._hazards_by_variable.update(summary._hazards_by_variable)
            merged._experiments_by_variable.update(
                summary._experiments_by_variable)
            merged._hazardous_scenes |= summary._hazardous_scenes
            timings = summary.extra_info.get("stage_timings")
            if timings:
                target = merged.extra_info.setdefault("stage_timings", {})
                for stage, cell in timings.items():
                    bucket = target.setdefault(stage,
                                               {"seconds": 0.0, "calls": 0})
                    bucket["seconds"] += cell["seconds"]
                    bucket["calls"] += cell["calls"]
            if merged.keep_records:
                merged.records.extend(summary.records)
        return merged

    def same_aggregates(self, other: "CampaignSummary") -> bool:
        """True when every aggregate statistic matches ``other``.

        The equivalence streamed campaigns are held to: a summary that
        dropped its records must still agree with the in-memory one on
        everything it reports.
        """
        return (self.total == other.total
                and self.hazards == other.hazards
                and self.landed == other.landed
                and self.failures == other.failures
                and self.degraded == other.degraded
                and self.masked == other.masked
                and self.hazard_breakdown() == other.hazard_breakdown()
                and self.hazards_by_variable()
                == other.hazards_by_variable()
                and self.experiments_by_variable()
                == other.experiments_by_variable()
                and self.hazardous_scenes() == other.hazardous_scenes())
