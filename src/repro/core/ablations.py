"""Ablation variants of the Bayesian fault-selection engine.

Two variants back the design-choice ablations promised in DESIGN.md:

* :class:`ConditioningFaultInjector` — scores faults by *conditioning*
  on the corrupted value instead of the ``do()`` intervention.  Without
  graph surgery, evidence on the corrupted node leaks *backward* into
  its parents ("the throttle is high, so the gap was probably large"),
  which biases the predicted consequences.  Comparing it against the
  real engine quantifies why the paper insists on causal semantics.
* :class:`DiscreteBayesianFaultInjector` — replaces the linear-Gaussian
  CPDs with discretized tabular CPDs and variable-elimination MAP
  queries, trading fidelity for distribution-free modelling.
"""

from __future__ import annotations

import numpy as np

from ..bayesnet.discretize import Discretizer
from ..bayesnet.dynamic import slice_node
from ..bayesnet.gaussian import GaussianInference
from ..bayesnet.inference import VariableElimination
from ..bayesnet.network import DiscreteBayesianNetwork
from .bayesian_fi import (BN_VARIABLES, BayesianFaultInjector, SceneRow,
                          ads_dbn_template)
from .safety import SafetyConfig
from .simulate import RunResult


class ConditioningFaultInjector(BayesianFaultInjector):
    """The do-calculus ablation: condition instead of intervene.

    Identical to :class:`BayesianFaultInjector` except that the fault
    value is entered as ordinary evidence on the *unmutilated* network,
    so inference also revises beliefs about the fault's causal parents.
    """

    def _engine_for(self, node: str) -> GaussianInference:
        if node not in self._engines:
            # No graph surgery: the original network serves every query.
            self._engines[node] = GaussianInference(self.model)
        return self._engines[node]


class DiscreteBayesianFaultInjector:
    """Tabular-CPD variant of the fault selector.

    The per-slice variables are quantile-discretized; actuation response
    inference runs variable elimination on the unrolled, mutilated
    network.  Physical propagation reuses the continuous engine's logic
    through a delegate :class:`BayesianFaultInjector`, so only the
    counterfactual actuation step differs.
    """

    def __init__(self, network: DiscreteBayesianNetwork,
                 discretizer: Discretizer,
                 delegate: BayesianFaultInjector):
        self.network = network
        self.discretizer = discretizer
        self.delegate = delegate
        self._engines: dict[str, VariableElimination] = {}

    @classmethod
    def train(cls, golden_runs: list[RunResult], n_bins: int = 7,
              safety_config: SafetyConfig | None = None,
              n_slices: int = 3) -> "DiscreteBayesianFaultInjector":
        """Fit both the tabular model and the continuous delegate."""
        delegate = BayesianFaultInjector.train(golden_runs, safety_config,
                                               n_slices)
        template = ads_dbn_template()
        columns: dict[str, list[np.ndarray]] = {v: [] for v in BN_VARIABLES}
        traces = []
        for run in golden_runs:
            arrays = run.trace.as_arrays()
            traces.append({v: arrays[v] for v in BN_VARIABLES})
            for v in BN_VARIABLES:
                columns[v].append(arrays[v])
        pooled = {v: np.concatenate(chunks)
                  for v, chunks in columns.items()}
        discretizer = Discretizer.from_data(pooled, n_bins)
        binned_traces = [discretizer.transform(trace) for trace in traces]
        cardinalities = discretizer.cardinalities()
        network = template.fit_discrete(binned_traces, cardinalities,
                                        n_slices=n_slices)
        return cls(network, discretizer, delegate)

    def _engine_for(self, node: str) -> VariableElimination:
        if node not in self._engines:
            from ..bayesnet.cpd import TabularCPD
            mutilated = self.network.copy()
            for t in (1, 2):
                name = slice_node(node, t)
                mutilated.dag.remove_incoming_edges(name)
                mutilated.cpds[name] = TabularCPD.uniform(
                    name, self.network.cardinality(name))
            self._engines[node] = VariableElimination(mutilated)
        return self._engines[node]

    def infer_actuation(self, scene: SceneRow, node: str,
                        node_value: float) -> dict[str, float]:
        """MAP actuation at slice 1 under ``do(node@1,2 = value)``.

        Values are decoded from bin indices to bin midpoints.
        """
        engine = self._engine_for(node)
        evidence = {}
        for name in BN_VARIABLES:
            evidence[slice_node(name, 0)] = self.discretizer.transform_value(
                name, scene.values[name])
        fault_bin = self.discretizer.transform_value(node, node_value)
        evidence[slice_node(node, 1)] = fault_bin
        evidence[slice_node(node, 2)] = fault_bin
        query = [slice_node(name, 1)
                 for name in ("throttle", "brake", "steering")
                 if name != node]
        assignment = engine.map_query(query, evidence) if query else {}
        result = {}
        for name in ("throttle", "brake", "steering"):
            if name == node:
                result[name] = node_value
            else:
                bin_index = assignment[slice_node(name, 1)]
                result[name] = self.discretizer.midpoint(name, bin_index)
        return result

    def predicted_throttle_response(self, scene: SceneRow, node: str,
                                    node_value: float) -> float:
        """Convenience for tests/benches: the MAP throttle response."""
        return self.infer_actuation(scene, node, node_value)["throttle"]
