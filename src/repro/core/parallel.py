"""Process-parallel execution of fault-injection experiments.

Each experiment is an independent closed-loop simulation, so campaign
validation parallelizes embarrassingly.  ``run_experiments`` fans a list
of (scenario name, fault) jobs over a ``ProcessPoolExecutor`` while
preserving the submission order of the returned records, so a parallel
campaign is record-for-record identical to a serial one (wall-clock
fields aside).

Jobs are executed grouped by scenario (records still return in job
order): grouping keeps a worker's chunk on one scenario's checkpoints,
which is cache-friendly, and it is free because experiments are
independent.

Scenario builders are closures, which do not pickle; workers therefore
require the ``fork`` start method (they inherit the scenario objects —
and the checkpoint store — through the forked address space).  On
platforms without ``fork`` the executor silently falls back to serial
in-process execution.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING

from ..sim.scenario import Scenario
from .checkpoint import CheckpointStore
from .results import ExperimentRecord
from .simulate import (FaultSpec, RunResult, run_scenario,
                       run_scenario_from_checkpoint)

if TYPE_CHECKING:  # avoid a circular import with .campaign
    from .campaign import CampaignConfig

#: Job description: (scenario name, fault to inject).
ExperimentJob = tuple[str, FaultSpec]

#: Worker-process state installed by the pool initializer.
_WORKER_STATE: tuple[dict[str, Scenario], "CampaignConfig",
                     CheckpointStore | None] | None = None


def _to_record(result: RunResult, scenario_name: str, fault: FaultSpec,
               config: "CampaignConfig") -> ExperimentRecord:
    return ExperimentRecord(
        scenario=scenario_name, injection_tick=fault.start_tick,
        variable=fault.variable, value=fault.value,
        duration_ticks=fault.duration_ticks, seed=config.seed,
        hazard=result.hazard, landed=result.landed,
        pre_delta_long=result.pre_delta_long,
        pre_delta_lat=result.pre_delta_lat,
        min_delta_long=result.min_delta_long,
        min_delta_lat=result.min_delta_lat,
        sim_seconds=result.sim_seconds,
        wall_seconds=result.wall_seconds)


def execute_experiment(scenario: Scenario, config: "CampaignConfig",
                       fault: FaultSpec,
                       checkpoints: CheckpointStore | None = None
                       ) -> ExperimentRecord:
    """Run one injection experiment and record the outcome.

    The single source of truth for experiment execution: both the serial
    path (:meth:`repro.core.campaign.Campaign.run_fault`) and the pool
    workers call this, which is what makes parallel and serial campaigns
    produce identical records.

    With a ``checkpoints`` store the run forks from the nearest golden
    snapshot at or before the fault tick, simulating only the fault
    window plus the post-fault horizon; without one (or when the store
    has no usable snapshot) it falls back to full replay from tick 0 —
    the reference oracle.
    """
    checkpoint = (checkpoints.nearest(scenario.name, fault.start_tick)
                  if checkpoints is not None else None)
    if checkpoint is not None and checkpoint.seed == config.seed:
        result = run_scenario_from_checkpoint(
            scenario, checkpoint, ads_config=config.ads, faults=[fault],
            safety_config=config.safety,
            horizon_after_fault=config.horizon_after_fault,
            record_trace=False)
    else:
        result = run_scenario(
            scenario, ads_config=config.ads, seed=config.seed,
            faults=[fault], safety_config=config.safety,
            horizon_after_fault=config.horizon_after_fault,
            record_trace=False)
    return _to_record(result, scenario.name, fault, config)


def _init_worker(scenarios: list[Scenario], config: "CampaignConfig",
                 checkpoints: CheckpointStore | None = None) -> None:
    global _WORKER_STATE
    _WORKER_STATE = ({s.name: s for s in scenarios}, config, checkpoints)


def _run_job(job: ExperimentJob) -> ExperimentRecord:
    assert _WORKER_STATE is not None, "worker pool not initialized"
    by_name, config, checkpoints = _WORKER_STATE
    scenario_name, fault = job
    return execute_experiment(by_name[scenario_name], config, fault,
                              checkpoints)


def _fork_context() -> multiprocessing.context.BaseContext | None:
    if "fork" not in multiprocessing.get_all_start_methods():
        return None
    return multiprocessing.get_context("fork")


def run_experiments(scenarios: list[Scenario], config: "CampaignConfig",
                    jobs: list[ExperimentJob],
                    workers: int | None = None,
                    checkpoints: CheckpointStore | None = None
                    ) -> list[ExperimentRecord]:
    """Execute ``jobs``, optionally across ``workers`` processes.

    Results come back in job order regardless of completion order.
    ``workers`` of ``None``, 0, or 1 runs serially in-process; larger
    values fan out over a process pool (capped at the job count).  A
    ``checkpoints`` store switches every job to checkpoint resume (see
    :func:`execute_experiment`); workers inherit the store through the
    forked address space, so nothing is pickled per job.
    """
    if not jobs:
        return []
    # Group same-scenario jobs into contiguous runs (stable, so records
    # can be scattered back into submission order afterwards).
    order = sorted(range(len(jobs)), key=lambda i: jobs[i][0])
    grouped = [jobs[i] for i in order]
    context = _fork_context() if workers and workers > 1 else None
    if context is None:
        by_name = {s.name: s for s in scenarios}
        outputs = [execute_experiment(by_name[name], config, fault,
                                      checkpoints)
                   for name, fault in grouped]
    else:
        workers = min(workers, len(jobs))
        chunksize = max(1, len(jobs) // (workers * 4))
        with ProcessPoolExecutor(max_workers=workers, mp_context=context,
                                 initializer=_init_worker,
                                 initargs=(scenarios, config,
                                           checkpoints)) as pool:
            outputs = list(pool.map(_run_job, grouped, chunksize=chunksize))
    records: list[ExperimentRecord | None] = [None] * len(jobs)
    for slot, record in zip(order, outputs):
        records[slot] = record
    return records
