"""Process-parallel execution of fault-injection experiments.

Each experiment is an independent closed-loop simulation, so campaign
validation parallelizes embarrassingly — and so does golden-trace
collection, where each scenario's fault-free run (and its checkpoint
ladder) is independent of every other's.  Two fan-out entry points:

* :func:`run_experiments` fans (scenario name, fault) jobs over a
  ``ProcessPoolExecutor`` while preserving the submission order of the
  returned records, so a parallel campaign is record-for-record
  identical to a serial one (wall-clock fields aside).  An ``on_record``
  callback streams records back in submission order *as futures
  complete*, which is what lets campaigns flush records to disk instead
  of accumulating them.
* :func:`collect_golden_runs` shards the golden runs of a scenario set
  across workers, each worker simulating its scenario's fault-free trace
  and capturing the requested checkpoint ladder; results return in
  scenario order, identical to the serial loop.

Both entry points implement the *barrier* orchestration (one pool per
phase).  The streaming per-scenario driver in :mod:`repro.core.pipeline`
builds on the same primitives — :func:`execute_experiment` as the single
source of experiment truth, :func:`_golden_run` for golden simulation,
:func:`_pool_context`/:func:`_picklable` for start-method fallback — so
the two orchestrations cannot drift apart experiment-wise.

Jobs are executed grouped by scenario (records still stream in job
order): grouping keeps a worker's chunk on one scenario's checkpoints,
which is cache-friendly, and it is free because experiments are
independent.

Scenario builders are ``functools.partial`` bindings of module-level
functions, so scenarios pickle and pools work under any start method:
``fork`` is preferred (workers inherit shared state for free), with
``spawn`` as the fallback on platforms without ``fork``.  A checkpoint
store may be passed either as a live :class:`CheckpointStore` or as the
path of a store persisted by :meth:`CheckpointStore.save`; the path form
is what spawn workers and cross-process warm starts use — each worker
loads the ladders from disk instead of depending on fork inheritance.
If the pool's initializer arguments cannot be pickled under a non-fork
start method (e.g. caller-supplied closure scenarios), execution falls
back to serial in-process with a one-line ``RuntimeWarning`` naming the
unpicklable argument.

Execution is *supervised* (:mod:`repro.core.resilience`): pooled jobs
run under per-job wall-clock timeouts with bounded seeded-backoff
retries, a crashed worker (SIGKILL, segfault, OOM) is respawned and its
in-flight job resubmitted, and a job that keeps failing is quarantined
as a structured failure record in its deterministic slot instead of
killing the campaign.  ``CampaignConfig.resilience.strict`` restores
the fail-fast oracle; serial execution applies the same
retry/quarantine policy (timeouts aside — a hang cannot be interrupted
in-process), so serial and pooled campaigns stay record-for-record
equivalent even when a job fails deterministically.
"""

from __future__ import annotations

import multiprocessing
import pickle
import warnings
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from ..sim.scenario import Scenario
from .checkpoint import CheckpointStore
from .resilience import (CampaignExecutionError, ResilienceConfig,
                         SupervisedExecutor, failure_record,
                         run_supervised_serial)
from .results import ExperimentRecord
from .simulate import (FaultSpec, RunResult, run_experiments_batched,
                       run_scenario, run_scenario_from_checkpoint)

if TYPE_CHECKING:  # avoid a circular import with .campaign
    from .campaign import CampaignConfig

#: Job description: (scenario name, fault to inject).
ExperimentJob = tuple[str, FaultSpec]

#: A checkpoint store argument: a live store, the directory of a
#: persisted one (``CheckpointStore.save``, loaded worker-side), or None.
CheckpointSource = CheckpointStore | str | Path | None

#: Worker-process state installed by the pool initializers.
_WORKER_STATE: tuple[dict[str, Scenario], "CampaignConfig",
                     CheckpointStore | None] | None = None
_GOLDEN_STATE: tuple[dict[str, Scenario], "CampaignConfig",
                     str | None] | None = None


def _resolve_checkpoints(checkpoints) -> CheckpointStore | None:
    """Materialize a checkpoint source (store, path, or None) to a store."""
    if checkpoints is None or isinstance(checkpoints, CheckpointStore):
        return checkpoints
    return CheckpointStore.load(checkpoints)


def _to_record(result: RunResult, scenario_name: str, fault: FaultSpec,
               config: "CampaignConfig") -> ExperimentRecord:
    return ExperimentRecord(
        scenario=scenario_name, injection_tick=fault.start_tick,
        variable=fault.variable, value=fault.value,
        duration_ticks=fault.duration_ticks, seed=config.seed,
        hazard=result.hazard, landed=result.landed,
        pre_delta_long=result.pre_delta_long,
        pre_delta_lat=result.pre_delta_lat,
        min_delta_long=result.min_delta_long,
        min_delta_lat=result.min_delta_lat,
        sim_seconds=result.sim_seconds,
        wall_seconds=result.wall_seconds,
        kind=fault.kind, channel=fault.channel,
        degraded=result.degraded)


def execute_experiment(scenario: Scenario, config: "CampaignConfig",
                       fault: FaultSpec,
                       checkpoints: CheckpointStore | None = None
                       ) -> ExperimentRecord:
    """Run one injection experiment and record the outcome.

    The single source of truth for experiment execution: both the serial
    path (:meth:`repro.core.campaign.Campaign.run_fault`) and the pool
    workers call this, which is what makes parallel and serial campaigns
    produce identical records.

    With a ``checkpoints`` store the run forks from the nearest golden
    snapshot at or before the fault tick, simulating only the fault
    window plus the post-fault horizon; without one (or when the store
    has no usable snapshot) it falls back to full replay from tick 0 —
    the reference oracle.
    """
    checkpoint = (checkpoints.nearest(scenario.name, fault.start_tick)
                  if checkpoints is not None else None)
    if checkpoint is not None and checkpoint.seed == config.seed:
        result = run_scenario_from_checkpoint(
            scenario, checkpoint, ads_config=config.ads, faults=[fault],
            safety_config=config.safety,
            horizon_after_fault=config.horizon_after_fault,
            record_trace=False)
    else:
        result = run_scenario(
            scenario, ads_config=config.ads, seed=config.seed,
            faults=[fault], safety_config=config.safety,
            horizon_after_fault=config.horizon_after_fault,
            record_trace=False)
    return _to_record(result, scenario.name, fault, config)


def execute_experiment_batch(scenario: Scenario,
                             config: "CampaignConfig",
                             faults: list[FaultSpec],
                             checkpoints: CheckpointStore | None = None
                             ) -> list[ExperimentRecord]:
    """Run several same-scenario experiments through the batched engine.

    The vectorized sibling of ``len(faults)`` calls to
    :func:`execute_experiment`: lanes share one
    :class:`~repro.sim.batch.BatchWorldState` and advance under the
    fused numpy kernels, with each lane forking from the same nearest
    golden checkpoint its scalar twin would pick (full replay when the
    store has none, or the snapshot's seed does not match).  Records are
    bit-for-bit the scalar records, in ``faults`` order (wall clock
    aside).
    """
    forks = []
    for fault in faults:
        checkpoint = (checkpoints.nearest(scenario.name, fault.start_tick)
                      if checkpoints is not None else None)
        if checkpoint is not None and checkpoint.seed != config.seed:
            checkpoint = None
        forks.append(checkpoint)
    results = run_experiments_batched(
        scenario, [[fault] for fault in faults],
        ads_config=config.ads, safety_config=config.safety,
        seed=config.seed, checkpoints=forks,
        horizon_after_fault=config.horizon_after_fault,
        batch_size=max(2, config.batch_sim), record_trace=False)
    return [_to_record(result, scenario.name, fault, config)
            for result, fault in zip(results, faults)]


def _batch_chunks(jobs: list[ExperimentJob], order: list[int],
                  batch_sim: int) -> list[tuple[str, list[int]]]:
    """Grouped-order slots cut into same-scenario runs of <= batch_sim.

    ``order`` is :func:`_grouped_order`'s slot permutation, so each run
    stays on one scenario's checkpoints and fills its lanes from
    consecutive submission slots — the streaming reorder buffer drains
    as fast as it does on the scalar path.
    """
    chunks: list[tuple[str, list[int]]] = []
    for slot in order:
        name = jobs[slot][0]
        if chunks and chunks[-1][0] == name \
                and len(chunks[-1][1]) < batch_sim:
            chunks[-1][1].append(slot)
        else:
            chunks.append((name, [slot]))
    return chunks


def _init_worker(scenarios: list[Scenario], config: "CampaignConfig",
                 checkpoints: CheckpointSource = None) -> None:
    global _WORKER_STATE
    _WORKER_STATE = ({s.name: s for s in scenarios}, config,
                     _resolve_checkpoints(checkpoints))


def _run_job(job: ExperimentJob) -> ExperimentRecord:
    assert _WORKER_STATE is not None, "worker pool not initialized"
    by_name, config, checkpoints = _WORKER_STATE
    scenario_name, fault = job
    return execute_experiment(by_name[scenario_name], config, fault,
                              checkpoints)


def _run_job_batch(chunk: tuple[str, tuple[FaultSpec, ...]]
                   ) -> list[ExperimentRecord]:
    """One same-scenario batch as a single pool task.

    Falls back to the per-fault scalar path inside the worker if the
    batched engine raises, so a batch poisoned by one odd experiment
    degrades to scalar execution instead of quarantining its chunk
    mates along with it.
    """
    assert _WORKER_STATE is not None, "worker pool not initialized"
    by_name, config, checkpoints = _WORKER_STATE
    scenario_name, faults = chunk
    scenario = by_name[scenario_name]
    try:
        return execute_experiment_batch(scenario, config, list(faults),
                                        checkpoints)
    except Exception:
        return [execute_experiment(scenario, config, fault, checkpoints)
                for fault in faults]


def _init_golden_worker(scenarios: list[Scenario],
                        config: "CampaignConfig",
                        trace_spool: str | None = None) -> None:
    global _GOLDEN_STATE
    _GOLDEN_STATE = ({s.name: s for s in scenarios}, config, trace_spool)


def _golden_run(scenario: Scenario, config: "CampaignConfig",
                capture_ticks: list[int] | None,
                trace_spool: str | Path | None = None) -> RunResult:
    """One scenario's fault-free reference run (+ checkpoint ladder).

    With a ``trace_spool`` directory the trace is written to the
    columnar :class:`repro.sim.TraceStore` spool *worker-side* and the
    returned result carries a memory-mapped handle instead of the
    samples — what keeps the parent's golden set O(file handles) and
    makes the pool result pickle tiny.
    """
    result = run_scenario(
        scenario, ads_config=config.ads, seed=config.seed,
        safety_config=config.safety, record_trace=True,
        checkpoint_ticks=capture_ticks)
    if trace_spool is not None:
        from ..sim.trace import TraceStore
        result.trace = TraceStore(trace_spool).put(scenario.name,
                                                   result.trace)
    return result


def _run_golden_job(job: tuple[str, tuple[int, ...] | None]) -> RunResult:
    assert _GOLDEN_STATE is not None, "golden pool not initialized"
    by_name, config, trace_spool = _GOLDEN_STATE
    scenario_name, capture_ticks = job
    return _golden_run(by_name[scenario_name], config,
                       list(capture_ticks) if capture_ticks is not None
                       else None, trace_spool)


def _pool_context(start_method: str | None = None
                  ) -> multiprocessing.context.BaseContext | None:
    """The multiprocessing context to fan out with (None -> run serial).

    ``fork`` is preferred: workers inherit scenarios and checkpoint
    stores through the copied address space, so nothing is pickled per
    worker.  Platforms without ``fork`` use ``spawn``, which requires
    every initializer argument to pickle (scenario builders are
    ``functools.partial`` bindings, so the library's scenarios do).
    """
    methods = multiprocessing.get_all_start_methods()
    if start_method is not None:
        if start_method not in methods:
            return None
        return multiprocessing.get_context(start_method)
    for method in ("fork", "spawn"):
        if method in methods:
            return multiprocessing.get_context(method)
    return None


def _picklable(*values) -> bool:
    try:
        pickle.dumps(values)
        return True
    except Exception:
        return False


def _policy(config: "CampaignConfig") -> ResilienceConfig:
    """The campaign's supervision policy (tolerating configs without one)."""
    return getattr(config, "resilience", None) or ResilienceConfig()


def _warn_serial_fallback(method: str, **named) -> None:
    """One-line warning for the spawn-unpicklable serial fallback.

    Names the offending argument: a silent fallback reads as "the pool
    is slow today" and hides that caller-supplied closures (scenarios,
    configs) cannot cross a non-fork process boundary.
    """
    culprit = next((name for name, value in named.items()
                    if not _picklable(value)), "arguments")
    warnings.warn(
        f"campaign pool disabled: {culprit} cannot be pickled under the "
        f"{method!r} start method; falling back to serial in-process "
        f"execution (results are identical, just not parallel)",
        RuntimeWarning, stacklevel=3)


def _grouped_order(jobs: list[ExperimentJob]) -> list[int]:
    """Submission indices reordered to group same-scenario jobs.

    Groups are ordered by each scenario's first appearance (stable
    within a group), so the earliest-submitted jobs complete early and
    the streaming reorder buffer drains instead of ballooning.
    """
    first_seen: dict[str, int] = {}
    for index, (name, _) in enumerate(jobs):
        first_seen.setdefault(name, index)
    return sorted(range(len(jobs)),
                  key=lambda i: (first_seen[jobs[i][0]], i))


def _run_serial_batched(jobs: list[ExperimentJob],
                        config: "CampaignConfig",
                        run_one: Callable,
                        by_name: dict[str, Scenario],
                        checkpoints: CheckpointStore | None,
                        on_record) -> list[ExperimentRecord] | None:
    """The serial path's batched twin: grouped chunks of fused lanes.

    Execution runs in grouped order (each chunk stays on one scenario's
    checkpoints and fills its lanes from consecutive submission slots);
    emission stays in submission order through the same reorder buffer
    the pooled path uses.  A chunk the batched engine rejects degrades
    to the supervised scalar path job by job, so retry, quarantine, and
    strict semantics match the scalar campaign's exactly.
    """
    order = _grouped_order(jobs)
    records: list[ExperimentRecord | None] | None = \
        None if on_record is not None else [None] * len(jobs)
    pending: dict[int, ExperimentRecord] = {}
    emit_next = 0
    for name, slots in _batch_chunks(jobs, order, config.batch_sim):
        if len(slots) == 1:
            outputs = [run_one(name, jobs[slots[0]][1])]
        else:
            faults = [jobs[slot][1] for slot in slots]
            try:
                outputs = execute_experiment_batch(
                    by_name[name], config, faults, checkpoints)
            except Exception:
                outputs = [run_one(name, fault) for fault in faults]
        for slot, record in zip(slots, outputs):
            if records is not None:
                records[slot] = record
                continue
            pending[slot] = record
            while emit_next in pending:
                on_record(pending.pop(emit_next))
                emit_next += 1
    assert not pending, "batched reorder buffer must drain"
    return records


def run_experiments(scenarios: list[Scenario], config: "CampaignConfig",
                    jobs: list[ExperimentJob],
                    workers: int | None = None,
                    checkpoints: CheckpointSource = None,
                    on_record: Callable[[ExperimentRecord], None]
                    | None = None,
                    start_method: str | None = None
                    ) -> list[ExperimentRecord] | None:
    """Execute ``jobs``, optionally across ``workers`` processes.

    Records come back in job order regardless of completion order.
    ``workers`` of ``None``, 0, or 1 runs serially in-process; larger
    values fan out over a process pool (capped at the job count).

    ``checkpoints`` switches every job to checkpoint resume (see
    :func:`execute_experiment`); it may be a live
    :class:`CheckpointStore` (under ``fork``, workers inherit it for
    free) or the directory of a persisted store, which each worker loads
    from disk — the spawn-safe, cross-process form.

    ``on_record`` streams each record back in job order as soon as it
    (and every earlier job) has completed, and the function returns
    ``None`` — no record list is retained, which is the memory bound
    out-of-core campaigns rely on.  Without it, the full record list is
    returned.  ``start_method`` forces a specific multiprocessing start
    method (tests use ``"spawn"`` to exercise the no-fork path).
    """
    if not jobs:
        return None if on_record is not None else []
    policy = _policy(config)
    context = _pool_context(start_method) if workers and workers > 1 \
        else None
    if context is not None and context.get_start_method() != "fork" \
            and not _picklable(scenarios, config, checkpoints):
        _warn_serial_fallback(context.get_start_method(),
                              scenarios=scenarios, config=config,
                              checkpoints=checkpoints)
        context = None

    if context is None:
        local_store = _resolve_checkpoints(checkpoints)
        by_name = {s.name: s for s in scenarios}

        def run_one(name: str, fault: FaultSpec) -> ExperimentRecord:
            record, failure = run_supervised_serial(
                lambda: execute_experiment(by_name[name], config, fault,
                                           local_store),
                policy, config.seed,
                (name, fault.start_tick, fault.variable, fault.value))
            if failure is not None:
                return failure_record(name, fault, config, failure)
            return record

        if getattr(config, "batch_sim", 0) > 1 and len(jobs) > 1:
            return _run_serial_batched(jobs, config, run_one, by_name,
                                       local_store, on_record)
        if on_record is not None:
            # Serial streaming: execute in submission order, flush each
            # record immediately — nothing is retained here.
            for name, fault in jobs:
                on_record(run_one(name, fault))
            return None
        order = _grouped_order(jobs)
        outputs = [run_one(*jobs[i]) for i in order]
        records: list[ExperimentRecord | None] = [None] * len(jobs)
        for slot, record in zip(order, outputs):
            records[slot] = record
        return records

    order = _grouped_order(jobs)
    # Batched validation submits same-scenario chunks as single tasks
    # (the fused lanes live worker-side); a persistently failing chunk
    # quarantines every job in it — the chunked-execution semantics the
    # pipeline driver already has, since a crash mid-batch cannot be
    # attributed to one lane.  Engine-level rejections never get that
    # far: the worker degrades them to scalar execution in place.
    if getattr(config, "batch_sim", 0) > 1 and len(jobs) > 1:
        submissions = [
            (_run_job_batch,
             (name, tuple(jobs[slot][1] for slot in slots)), tuple(slots))
            for name, slots in _batch_chunks(jobs, order,
                                             config.batch_sim)]
    else:
        submissions = [(_run_job, jobs[slot], slot) for slot in order]
    workers = min(workers, len(submissions))
    records = None if on_record is not None else [None] * len(jobs)
    # Stream in submission order while supervised completions arrive in
    # any order: park out-of-order records in a reorder buffer and
    # flush every contiguous run as its head completes.  Grouped
    # submission keeps the buffer small in the common case.  A
    # KeyboardInterrupt propagates through the context manager, which
    # kills the pool outright — the contiguous prefix already reached
    # ``on_record``, and journaled/cached state stays consistent for a
    # later ``--resume``.
    pending: dict[int, ExperimentRecord] = {}
    emit_next = 0
    with SupervisedExecutor(workers, context, initializer=_init_worker,
                            initargs=(scenarios, config, checkpoints),
                            policy=policy, seed=config.seed) as pool:
        for fn, payload, tag in submissions:
            timeout = None
            if isinstance(tag, tuple) and policy.job_timeout is not None:
                timeout = policy.job_timeout * len(tag)
            pool.submit(fn, payload, tag=tag, timeout=timeout)
        for tag, value, failure in pool.drain():
            slots = list(tag) if isinstance(tag, tuple) else [tag]
            if failure is None:
                outputs = list(value) if isinstance(tag, tuple) \
                    else [value]
            else:
                outputs = [failure_record(jobs[slot][0], jobs[slot][1],
                                          config, failure)
                           for slot in slots]
            for slot, record in zip(slots, outputs):
                if records is not None:
                    records[slot] = record
                    continue
                pending[slot] = record
                while emit_next in pending:
                    on_record(pending.pop(emit_next))
                    emit_next += 1
    if records is not None:
        return records
    assert not pending, "reorder buffer must drain"
    return None


def collect_golden_runs(scenarios: list[Scenario],
                        config: "CampaignConfig",
                        capture_ticks: dict[str, list[int] | None]
                        | None = None,
                        workers: int | None = None,
                        start_method: str | None = None,
                        trace_spool: str | Path | None = None
                        ) -> dict[str, RunResult]:
    """Fault-free reference runs of ``scenarios``, optionally sharded.

    Each scenario's golden run is independent, so collection fans over
    the process pool the same way validation does; results return keyed
    by scenario name with the mapping's insertion order matching
    ``scenarios`` — identical to the serial loop.  ``capture_ticks``
    maps scenario names to the checkpoint ladders to capture during the
    run (absent/None means capture nothing); the returned
    :class:`RunResult` objects carry the captured checkpoints, which
    pickle back to the parent across any start method.  ``trace_spool``
    switches the results to out-of-core traces: each worker (or the
    serial loop) spools its trace to the columnar store under that
    directory and the results carry memory-mapped handles — values
    bit-for-bit identical to the in-RAM traces.
    """
    capture_ticks = capture_ticks or {}
    spool = str(trace_spool) if trace_spool is not None else None
    jobs = [(s.name, tuple(capture_ticks[s.name])
             if capture_ticks.get(s.name) is not None else None)
            for s in scenarios]
    context = _pool_context(start_method) \
        if workers and workers > 1 and len(scenarios) > 1 else None
    if context is not None and context.get_start_method() != "fork" \
            and not _picklable(scenarios, config):
        _warn_serial_fallback(context.get_start_method(),
                              scenarios=scenarios, config=config)
        context = None
    if context is None:
        runs = [_golden_run(s, config,
                            list(ticks) if ticks is not None else None,
                            spool)
                for s, (_, ticks) in zip(scenarios, jobs)]
        return {s.name: run for s, run in zip(scenarios, runs)}
    # Pooled collection is supervised like validation — a worker killed
    # mid-simulation respawns and its scenario re-runs — but a golden
    # run that keeps failing raises even in non-strict campaigns: every
    # downstream stage (ticks, mining, checkpoints) needs the trace, so
    # there is no slot a failure record could meaningfully occupy.
    workers = min(workers, len(scenarios))
    policy = _policy(config)
    by_name: dict[str, RunResult] = {}
    with SupervisedExecutor(workers, context,
                            initializer=_init_golden_worker,
                            initargs=(scenarios, config, spool),
                            policy=policy, seed=config.seed) as pool:
        for job in jobs:
            pool.submit(_run_golden_job, job, tag=job[0])
        for name, run, failure in pool.drain():
            if failure is not None:
                raise CampaignExecutionError(
                    f"golden run of {name!r} failed after "
                    f"{failure.attempts} attempt(s) "
                    f"({failure.error}: {failure.message})")
            by_name[name] = run
    return {s.name: by_name[s.name] for s in scenarios}
