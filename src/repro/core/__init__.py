"""Core library: DriveFI's safety model, fault models, and Bayesian FI."""

from .ablations import (ConditioningFaultInjector,
                        DiscreteBayesianFaultInjector)
from .bayesian_fi import (BN_VARIABLES, KINEMATIC_NODES, MINED_VARIABLES,
                          NODE_MAPPING, BayesianFaultInjector,
                          CandidateFault, MinedVariable, MiningReport,
                          SceneRow, ads_dbn_template, scene_rows_from_trace)
from .campaign import (BayesianCampaignResult, Campaign, CampaignConfig)
from .checkpoint import Checkpoint, CheckpointStore
from .parallel import (collect_golden_runs, execute_experiment,
                       run_experiments)
from .pipeline import (CampaignPipeline, MiningPlan, PipelineProgress,
                       PipelineResult, StagePlan)
from .fault_models import (DEFAULT_VARIABLES, KERNEL_VARIABLE_MAP,
                           ArchFaultOutcome, ArchitecturalFaultModel,
                           minmax_fault_grid, random_fault)
from .results import (CampaignSummary, ExperimentRecord, Hazard, ListSink,
                      worst_hazard)
from .safety import (SafetyConfig, SafetyPotential, StoppingDisplacement,
                     longitudinal_envelope, safety_potential,
                     steering_excursion, stopping_displacement,
                     world_safety_potential)
from .simulate import (TRACE_COLUMNS, FaultSpec, RunResult, run_scenario,
                       run_scenario_from_checkpoint)

__all__ = [
    "SafetyConfig",
    "SafetyPotential",
    "StoppingDisplacement",
    "stopping_displacement",
    "longitudinal_envelope",
    "safety_potential",
    "steering_excursion",
    "world_safety_potential",
    "Hazard",
    "worst_hazard",
    "ExperimentRecord",
    "CampaignSummary",
    "FaultSpec",
    "RunResult",
    "run_scenario",
    "run_scenario_from_checkpoint",
    "Checkpoint",
    "CheckpointStore",
    "TRACE_COLUMNS",
    "minmax_fault_grid",
    "random_fault",
    "DEFAULT_VARIABLES",
    "ArchitecturalFaultModel",
    "ArchFaultOutcome",
    "KERNEL_VARIABLE_MAP",
    "ads_dbn_template",
    "BayesianFaultInjector",
    "ConditioningFaultInjector",
    "DiscreteBayesianFaultInjector",
    "MinedVariable",
    "CandidateFault",
    "MiningReport",
    "SceneRow",
    "scene_rows_from_trace",
    "BN_VARIABLES",
    "KINEMATIC_NODES",
    "MINED_VARIABLES",
    "NODE_MAPPING",
    "Campaign",
    "CampaignConfig",
    "BayesianCampaignResult",
    "execute_experiment",
    "run_experiments",
    "collect_golden_runs",
    "ListSink",
    "CampaignPipeline",
    "StagePlan",
    "MiningPlan",
    "PipelineProgress",
    "PipelineResult",
]
