"""Interface fault models: timing/message faults at module boundaries.

Fault model (d), beyond the paper: the value-corruption models attack
*what* a module says; these attack *whether and when it says it* —
dropped, frozen, delayed, and reordered messages, plus hung modules,
injected at the five typed boundaries of the ADS pipeline (see
:mod:`repro.ads.channels` for delivery semantics).

Interface faults reuse :class:`~repro.core.simulate.FaultSpec` so they
flow through every campaign style, both drivers, sharding, leases, the
completion journal, and the record streams without new plumbing: the
``kind``/``channel`` fields mark the fault family, and ``variable`` is
the synthetic label ``"<kind>@<channel>"`` (which keeps journal keys,
supervised-executor keys, and per-variable hazard tables distinguishing
them for free).  ``value`` carries the integer fault parameter — queue
depth for ``delay``, reorder window for ``jitter``, unused otherwise.
"""

from __future__ import annotations

import numpy as np

from ..ads.channels import (CHANNELS, CRITICAL_CHANNELS,
                            DEFAULT_INTERFACE_PARAMS, INTERFACE_KINDS,
                            DegradationConfig)
from .simulate import FaultSpec

__all__ = [
    "CHANNELS",
    "CRITICAL_CHANNELS",
    "DEFAULT_INTERFACE_PARAMS",
    "INTERFACE_KINDS",
    "DegradationConfig",
    "interface_fault",
    "interface_fault_grid",
    "random_interface_fault",
    "validate_interface_channel",
    "validate_interface_kind",
]


def validate_interface_kind(kind: str) -> str:
    if kind not in INTERFACE_KINDS:
        raise ValueError(f"unknown interface fault kind {kind!r}; "
                         f"expected one of {list(INTERFACE_KINDS)}")
    return kind


def validate_interface_channel(channel: str) -> str:
    if channel not in CHANNELS:
        raise ValueError(f"unknown channel {channel!r}; "
                         f"expected one of {list(CHANNELS)}")
    return channel


def interface_fault(kind: str, channel: str, start_tick: int,
                    duration_ticks: int = 2,
                    param: int | None = None) -> FaultSpec:
    """One interface fault as a campaign-ready :class:`FaultSpec`."""
    validate_interface_kind(kind)
    validate_interface_channel(channel)
    if param is None:
        param = DEFAULT_INTERFACE_PARAMS[kind]
    return FaultSpec(variable=f"{kind}@{channel}", value=float(param),
                     start_tick=int(start_tick),
                     duration_ticks=int(duration_ticks),
                     kind=kind, channel=channel)


def interface_fault_grid(injection_ticks: list[int],
                         kinds: tuple | None = None,
                         channels: tuple | None = None,
                         duration_ticks: int = 2) -> list[FaultSpec]:
    """Exhaustive companion to ``minmax_fault_grid``: every kind x
    channel x tick, with each kind's default parameter."""
    grid = []
    for tick in injection_ticks:
        for kind in kinds or INTERFACE_KINDS:
            for channel in channels or CHANNELS:
                grid.append(interface_fault(kind, channel, tick,
                                            duration_ticks=duration_ticks))
    return grid


def random_interface_fault(rng: np.random.Generator,
                           injection_ticks: list[int],
                           kinds: tuple | None = None,
                           channels: tuple | None = None,
                           duration_ticks: int = 2) -> FaultSpec:
    """Randomized interface fault: uniform kind, channel, and tick
    (mirrors ``random_fault``'s draw order)."""
    kinds = tuple(kinds or INTERFACE_KINDS)
    channels = tuple(channels or CHANNELS)
    kind = kinds[int(rng.integers(len(kinds)))]
    channel = channels[int(rng.integers(len(channels)))]
    tick = int(injection_ticks[int(rng.integers(len(injection_ticks)))])
    return interface_fault(kind, channel, tick,
                           duration_ticks=duration_ticks)
