"""Closed-loop execution: world + ADS + optional faults + safety monitor.

This is the experiment engine shared by golden-trace collection, random
and exhaustive campaigns, and the validation step of Bayesian FI.  Two
entry points share one tick loop:

* :func:`run_scenario` — cold start from tick 0 (golden runs, and the
  full-replay reference oracle for injection experiments).  It can
  capture :class:`~repro.core.checkpoint.Checkpoint` snapshots at
  requested ticks as it goes.
* :func:`run_scenario_from_checkpoint` — restore a golden checkpoint,
  arm the fault, and simulate only the fault window plus the post-fault
  horizon.  Because the fault-free prefix is bit-identical to the golden
  run, the resumed suffix reproduces full replay exactly.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from ..ads.batch import BatchADSState, can_fuse
from ..ads.messages import ActuationCommand
from ..ads.runtime import ADSConfig, ADSPipeline
from ..sim.batch import BatchWorldState
from ..sim.collision import SENSOR_RANGE
from ..sim.scenario import Scenario
from ..sim.trace import Trace
from ..sim.world import World
from .checkpoint import Checkpoint
from .results import Hazard
from .safety import SafetyConfig, safety_potential, world_safety_potential

#: Signals recorded at every planner tick of a run.  The Bayesian network
#: trains on the belief/actuation subset; the ``gt_*`` and ``lat_free*``
#: columns are the sensor-level ground truth the safety model consumes
#: (the paper: "d_safe is computed directly from the sensors").
TRACE_COLUMNS = ("time", "tick", "x", "v", "gap", "closing", "lat",
                 "lat_free", "lat_free_up", "lat_free_down", "gt_gap",
                 "gt_lead_v", "throttle", "brake", "steering", "delta_long",
                 "delta_lat")

#: Sentinel for ``gt_lead_v`` when the corridor ahead is clear.
NO_LEAD = -1.0


@dataclass(frozen=True)
class FaultSpec:
    """A scheduled corruption of one ADS variable or message channel.

    ``kind`` is ``"value"`` for the classic in-place payload corruption
    (``variable`` names a registry entry, ``value`` the corrupted
    reading).  Interface faults set ``kind`` to one of
    ``repro.ads.channels.INTERFACE_KINDS`` and ``channel`` to a stage
    boundary; ``variable`` then carries the synthetic ``"kind@channel"``
    label and ``value`` the integer fault parameter (queue depth /
    reorder window).  The extra fields default away so existing
    value-fault streams, caches, and journals are untouched.
    """

    variable: str
    value: float
    start_tick: int
    duration_ticks: int = 2
    kind: str = "value"
    channel: str | None = None


@dataclass
class RunResult:
    """Everything observed during one closed-loop run."""

    scenario: str
    seed: int
    trace: Trace
    hazard: Hazard
    collided: bool
    went_off_road: bool
    min_delta_long: float
    min_delta_lat: float
    pre_delta_long: float      # delta at first fault tick (golden: at start)
    pre_delta_lat: float
    landed: bool               # any armed fault touched a payload
    degraded: bool = False     # safe-stop fallback engaged at least once
    sim_seconds: float = 0.0
    wall_seconds: float = 0.0
    faults: list[FaultSpec] = field(default_factory=list)
    #: Snapshots captured during the run (``checkpoint_ticks`` requests),
    #: keyed by tick.  ``None`` when capture was not requested.
    checkpoints: dict[int, Checkpoint] | None = None


def _arm_faults(pipeline: ADSPipeline, faults: list[FaultSpec]) -> None:
    """Arm value faults on the variable registry and interface faults on
    the channel bus (shared by cold-start and checkpoint-resumed runs)."""
    for fault in faults:
        kind = getattr(fault, "kind", "value")
        if kind == "value":
            pipeline.arm_fault(fault.variable, fault.value,
                               fault.start_tick, fault.duration_ticks)
        else:
            pipeline.arm_channel_fault(kind, fault.channel,
                                       fault.start_tick,
                                       fault.duration_ticks,
                                       param=int(fault.value))


def _fault_schedule(faults: list[FaultSpec],
                    horizon_after_fault: float | None,
                    dt: float) -> tuple[int, int | None]:
    """(monitor_from, stop_after) for a fault list (shared by both paths)."""
    monitor_from = min((f.start_tick for f in faults), default=0)
    stop_after: int | None = None
    if faults and horizon_after_fault is not None:
        last_end = max(f.start_tick + f.duration_ticks for f in faults)
        stop_after = last_end + int(round(horizon_after_fault / dt))
    return monitor_from, stop_after


def _simulate(scenario: Scenario, world: World, pipeline: ADSPipeline,
              seed: int, faults: list[FaultSpec],
              safety_config: SafetyConfig, n_ticks: int, start_tick: int,
              monitor_from: int, stop_after: int | None, record_trace: bool,
              checkpoint_ticks=None) -> RunResult:
    """The tick loop shared by cold-start and checkpoint-resumed runs.

    ``start_tick`` is 0 for a cold start, or the checkpoint's tick for a
    resumed run (state must already be restored by the caller).  Safety
    is monitored from ``monitor_from`` onward; the ground-truth potential
    is skipped entirely on earlier ticks unless the trace recorder needs
    it, which is what makes the fault-free prefix cheap.
    """
    trace = Trace()
    collided = False
    went_off_road = False
    min_delta_long = float("inf")
    min_delta_lat = float("inf")
    pre_delta_long = float("inf")
    pre_delta_lat = float("inf")
    capture = set(checkpoint_ticks or ())
    checkpoints: dict[int, Checkpoint] | None = (
        {} if checkpoint_ticks is not None else None)
    wall_start = time.perf_counter()

    for tick in range(start_tick, n_ticks):
        if tick in capture:
            checkpoints[tick] = Checkpoint(
                scenario=scenario.name, seed=seed, tick=tick,
                world=world.snapshot(), pipeline=pipeline.snapshot())
        is_planning_tick = pipeline.is_planning_tick
        command = pipeline.tick(world)
        world.step(command.throttle, command.brake, command.steering,
                   pipeline.config.control_period)

        # The potential is consumed from the first fault tick onward
        # (plus the trace recorder on planning ticks); before that the
        # run is provably fault-free, so the RK4 stop integration and
        # clearance scans are skipped.
        recording = record_trace and is_planning_tick
        if tick >= monitor_from or recording:
            potential = world_safety_potential(world, safety_config)
        else:
            potential = None
        if tick == monitor_from:
            pre_delta_long = potential.longitudinal
            pre_delta_lat = potential.lateral
        if tick >= monitor_from:
            min_delta_long = min(min_delta_long, potential.longitudinal)
            min_delta_lat = min(min_delta_lat, potential.lateral)
            if world.in_collision():
                collided = True
            if world.off_road():
                went_off_road = True

        if recording:
            plan = pipeline.last_plan
            model = pipeline.last_model
            gap = plan.gap if plan is not None else SENSOR_RANGE
            closing = plan.closing_speed if plan is not None else 0.0
            lat = model.lane_offset if model is not None else 0.0
            # A 1 m corridor margin captures impending entrants (a body
            # mid-cut-in), which a tracker with lateral velocity would
            # already treat as lead.
            lead = world.lead_obstacle(extra_margin=1.0)
            if lead is None:
                gt_gap, gt_lead_v = SENSOR_RANGE, NO_LEAD
            else:
                gt_gap = ((lead.x - world.ego.state.x)
                          - (world.ego.params.length + lead.length) / 2.0)
                gt_lead_v = lead.v
            trace.record({
                "time": world.time,
                "tick": float(tick),
                "x": world.ego.state.x,
                "v": world.ego.state.v,
                "gap": gap,
                "closing": closing,
                "lat": lat,
                "lat_free": world.lateral_clearance(),
                "lat_free_up": world.lateral_clearance_toward(+1),
                "lat_free_down": world.lateral_clearance_toward(-1),
                "gt_gap": gt_gap,
                "gt_lead_v": gt_lead_v,
                "throttle": command.throttle,
                "brake": command.brake,
                "steering": command.steering,
                "delta_long": potential.longitudinal,
                "delta_lat": potential.lateral,
            })
        if collided:
            break
        if stop_after is not None and tick >= stop_after:
            break

    wall_seconds = time.perf_counter() - wall_start
    if collided:
        hazard = Hazard.COLLISION
    elif went_off_road:
        hazard = Hazard.OFF_ROAD
    elif min_delta_long <= 0.0:
        # The longitudinal potential is the robust counterfactual
        # criterion (collision is inevitable if the lead brakes).  The
        # lateral potential is recorded but not a hazard class by itself:
        # it inherits steering jitter through the frozen-steering
        # assumption, so lateral hazards are judged by the physical
        # outcomes above (off-road, collision).
        hazard = Hazard.SAFETY_VIOLATION
    else:
        hazard = Hazard.NONE
    return RunResult(
        scenario=scenario.name, seed=seed, trace=trace, hazard=hazard,
        collided=collided, went_off_road=went_off_road,
        min_delta_long=min_delta_long, min_delta_lat=min_delta_lat,
        pre_delta_long=pre_delta_long, pre_delta_lat=pre_delta_lat,
        landed=pipeline.fault_landed,
        degraded=pipeline.degraded_ticks > 0,
        sim_seconds=world.time, wall_seconds=wall_seconds, faults=faults,
        checkpoints=checkpoints)


def run_scenario(scenario: Scenario, ads_config: ADSConfig | None = None,
                 seed: int = 0, faults: list[FaultSpec] | None = None,
                 safety_config: SafetyConfig | None = None,
                 duration: float | None = None,
                 horizon_after_fault: float | None = 8.0,
                 record_trace: bool = True,
                 checkpoint_ticks=None) -> RunResult:
    """Run one scenario under ADS control, with optional fault injection.

    Safety is monitored from the first fault tick onward (or the whole
    run when fault-free).  The run ends early at a collision, at
    ``horizon_after_fault`` seconds past the last fault window, or at the
    scenario duration.  ``checkpoint_ticks`` requests state snapshots at
    those ticks (taken just before the tick executes), returned on
    ``RunResult.checkpoints``.
    """
    ads_config = ads_config or ADSConfig()
    safety_config = safety_config or SafetyConfig()
    faults = list(faults or [])
    world = scenario.make_world()
    pipeline = ADSPipeline(ads_config, seed=seed)
    _arm_faults(pipeline, faults)

    dt = ads_config.control_period
    total_seconds = duration if duration is not None else scenario.duration
    n_ticks = int(round(total_seconds / dt))
    monitor_from, stop_after = _fault_schedule(faults, horizon_after_fault,
                                               dt)
    return _simulate(scenario, world, pipeline, seed, faults, safety_config,
                     n_ticks, 0, monitor_from, stop_after, record_trace,
                     checkpoint_ticks)


def run_scenario_from_checkpoint(
        scenario: Scenario, checkpoint: Checkpoint,
        ads_config: ADSConfig | None = None,
        faults: list[FaultSpec] | None = None,
        safety_config: SafetyConfig | None = None,
        duration: float | None = None,
        horizon_after_fault: float | None = 8.0,
        record_trace: bool = False) -> RunResult:
    """Fork an injection run from its golden prefix.

    Restores the checkpointed world + ADS state, arms the faults, and
    simulates only from ``checkpoint.tick`` to the end of the post-fault
    horizon.  Every fault must start at or after the checkpoint tick —
    earlier ticks are already history in the restored state.  The
    returned :class:`RunResult` is field-for-field identical to
    :func:`run_scenario` with the same faults (wall clock aside).
    """
    faults = list(faults or [])
    if not faults:
        raise ValueError("checkpoint resume needs at least one fault; "
                         "use run_scenario for fault-free runs")
    if checkpoint.scenario != scenario.name:
        raise ValueError(f"checkpoint is for {checkpoint.scenario!r}, "
                         f"not {scenario.name!r}")
    earliest = min(f.start_tick for f in faults)
    if earliest < checkpoint.tick:
        raise ValueError(
            f"fault at tick {earliest} precedes checkpoint tick "
            f"{checkpoint.tick}; resume cannot rewind")

    ads_config = ads_config or ADSConfig()
    safety_config = safety_config or SafetyConfig()
    world = scenario.make_world()
    pipeline = ADSPipeline(ads_config, seed=checkpoint.seed)
    world.restore(checkpoint.world)
    pipeline.restore(checkpoint.pipeline)
    _arm_faults(pipeline, faults)

    dt = ads_config.control_period
    total_seconds = duration if duration is not None else scenario.duration
    n_ticks = int(round(total_seconds / dt))
    monitor_from, stop_after = _fault_schedule(faults, horizon_after_fault,
                                               dt)
    return _simulate(scenario, world, pipeline, checkpoint.seed, faults,
                     safety_config, n_ticks, checkpoint.tick, monitor_from,
                     stop_after, record_trace)


class _BatchLane:
    """Book-keeping for one experiment occupying one batch lane."""

    def __init__(self, index: int, world: World, pipeline: ADSPipeline,
                 seed: int, faults: list[FaultSpec], tick: int, n_ticks: int,
                 monitor_from: int, stop_after: int | None):
        self.index = index
        self.world = world
        self.pipeline = pipeline
        self.seed = seed
        self.faults = faults
        self.tick = tick
        self.n_ticks = n_ticks
        self.monitor_from = monitor_from
        self.stop_after = stop_after
        self.trace = Trace()
        self.collided = False
        self.went_off_road = False
        self.min_delta_long = float("inf")
        self.min_delta_lat = float("inf")
        self.pre_delta_long = float("inf")
        self.pre_delta_lat = float("inf")
        self.wall_start = time.perf_counter()
        self.is_planning = False
        self.command = None
        #: True when this lane runs on the fused ADS path (set by the
        #: batched driver from :func:`repro.ads.batch.can_fuse`).
        self.fused = False

    def result(self, scenario_name: str) -> RunResult:
        if self.collided:
            hazard = Hazard.COLLISION
        elif self.went_off_road:
            hazard = Hazard.OFF_ROAD
        elif self.min_delta_long <= 0.0:
            hazard = Hazard.SAFETY_VIOLATION
        else:
            hazard = Hazard.NONE
        return RunResult(
            scenario=scenario_name, seed=self.seed, trace=self.trace,
            hazard=hazard, collided=self.collided,
            went_off_road=self.went_off_road,
            min_delta_long=self.min_delta_long,
            min_delta_lat=self.min_delta_lat,
            pre_delta_long=self.pre_delta_long,
            pre_delta_lat=self.pre_delta_lat,
            landed=self.pipeline.fault_landed,
            degraded=self.pipeline.degraded_ticks > 0,
            sim_seconds=self.world.time,
            wall_seconds=time.perf_counter() - self.wall_start,
            faults=self.faults, checkpoints=None)


def _prepare_lane(scenario: Scenario, index: int, faults: list[FaultSpec],
                  checkpoint: Checkpoint | None, ads_config: ADSConfig,
                  seed: int, duration: float | None,
                  horizon_after_fault: float | None) -> _BatchLane:
    """Build one lane exactly the way the scalar entry points do."""
    faults = list(faults)
    world = scenario.make_world()
    if checkpoint is not None:
        if not faults:
            raise ValueError("checkpoint resume needs at least one fault; "
                             "use run_scenario for fault-free runs")
        if checkpoint.scenario != scenario.name:
            raise ValueError(f"checkpoint is for {checkpoint.scenario!r}, "
                             f"not {scenario.name!r}")
        earliest = min(f.start_tick for f in faults)
        if earliest < checkpoint.tick:
            raise ValueError(
                f"fault at tick {earliest} precedes checkpoint tick "
                f"{checkpoint.tick}; resume cannot rewind")
        lane_seed = checkpoint.seed
        start_tick = checkpoint.tick
    else:
        lane_seed = seed
        start_tick = 0
    pipeline = ADSPipeline(ads_config, seed=lane_seed)
    if checkpoint is not None:
        world.restore(checkpoint.world)
        pipeline.restore(checkpoint.pipeline)
    _arm_faults(pipeline, faults)
    dt = ads_config.control_period
    total_seconds = duration if duration is not None else scenario.duration
    n_ticks = int(round(total_seconds / dt))
    monitor_from, stop_after = _fault_schedule(faults, horizon_after_fault,
                                               dt)
    return _BatchLane(index, world, pipeline, lane_seed, faults, start_tick,
                      n_ticks, monitor_from, stop_after)


def run_experiments_batched(scenario: Scenario, fault_lists,
                            ads_config: ADSConfig | None = None,
                            safety_config: SafetyConfig | None = None,
                            seed: int = 0, checkpoints=None,
                            duration: float | None = None,
                            horizon_after_fault: float | None = 8.0,
                            batch_size: int = 8,
                            record_trace: bool = False) -> list[RunResult]:
    """Run K fault experiments of one scenario over a lane batch.

    The vectorized sibling of K calls to :func:`run_scenario` /
    :func:`run_scenario_from_checkpoint`: up to ``batch_size``
    experiments occupy lanes of one :class:`BatchWorldState`; physics
    and ground-truth safety signals advance in fused numpy kernels
    while each lane's :class:`ADSPipeline` ticks per lane.  Lanes retire
    as their runs end (collision, post-fault horizon, or scenario end)
    and pending experiments take their place.  Results are bit-for-bit
    the scalar results, in submission order (wall clock aside).

    ``fault_lists`` is one fault list per experiment; ``checkpoints``
    optionally aligns a golden :class:`Checkpoint` (or ``None``) with
    each, forking that lane from the prefix instead of replaying it.
    Checkpoint capture is not supported here — golden collection stays
    on the scalar path.
    """
    ads_config = ads_config or ADSConfig()
    safety_config = safety_config or SafetyConfig()
    fault_lists = [list(faults) for faults in fault_lists]
    if checkpoints is None:
        checkpoints = [None] * len(fault_lists)
    if len(checkpoints) != len(fault_lists):
        raise ValueError("checkpoints must align with fault_lists")
    if not fault_lists:
        return []

    results: list[RunResult | None] = [None] * len(fault_lists)
    pending = list(range(len(fault_lists)))
    dt = ads_config.control_period
    n_lanes = max(1, min(int(batch_size), len(fault_lists)))

    def next_lane() -> _BatchLane | None:
        """Prepare the next pending experiment, finalizing any run whose
        window is already over (zero loop iterations in the scalar path
        — same early-exit RunResult)."""
        while pending:
            index = pending.pop(0)
            lane = _prepare_lane(scenario, index, fault_lists[index],
                                 checkpoints[index], ads_config, seed,
                                 duration, horizon_after_fault)
            if lane.tick < lane.n_ticks:
                return lane
            results[index] = lane.result(scenario.name)
        return None

    slots: list[_BatchLane | None] = []
    for _ in range(n_lanes):
        slots.append(next_lane())
    live = [lane for lane in slots if lane is not None]
    if not live:
        return results
    batch = BatchWorldState([lane.world for lane in live],
                            reference=scenario.make_world())
    # Re-map: slot s of the batch holds slots[s]; trailing empty slots
    # (fewer experiments than lanes) start deactivated.
    slots = live
    for extra in range(len(slots), batch.n_lanes):
        batch.deactivate(extra)
    ads = BatchADSState(batch, ads_config)
    for slot, lane in enumerate(slots):
        lane.fused = can_fuse(lane.pipeline)
        if lane.fused:
            ads.attach(slot, lane.pipeline)

    while any(lane is not None for lane in slots):
        # 1. ADS: lanes whose armed faults the fused path cannot
        #    represent (interface faults, restored bus residue, tight
        #    degradation TTLs) peel to their scalar pipelines on the
        #    (synced) scalar worlds; everything else advances through
        #    one fused BatchADSState tick, which also maps the executed
        #    commands to kernel control inputs.
        for slot, lane in enumerate(slots):
            if lane is None or lane.fused:
                continue
            lane.is_planning = lane.pipeline.is_planning_tick
            lane.command = lane.pipeline.tick(lane.world)
            batch.set_controls(slot, lane.command.throttle,
                               lane.command.brake, lane.command.steering,
                               dt)
        ads.tick_all()
        # 2. One fused physics step for every lane.  Only peeled lanes
        #    scatter back eagerly (their next scalar tick reads the
        #    World); fused lanes stay array-resident and scatter on
        #    demand (collision confirm, trace recording, retirement).
        batch.step(dt)
        peeled = [slot for slot, lane in enumerate(slots)
                  if lane is not None and not lane.fused]
        if peeled:
            batch.scatter(peeled)
        # 3. Batched ground-truth signals.
        gap, lead_speed, lateral_free = batch.safety_inputs()
        collided = batch.collided_mask()
        off_road = batch.off_road_mask()
        # 4. Per-lane monitoring, recording, and retirement.
        for slot, lane in enumerate(slots):
            if lane is None:
                continue
            if lane.fused:
                lane.is_planning = bool(ads.planned[slot])
            tick = lane.tick
            recording = record_trace and lane.is_planning
            if tick >= lane.monitor_from or recording:
                speed = float(lead_speed[slot])
                if lane.fused:
                    v = float(batch.ego[slot, 2])
                    theta = float(batch.ego[slot, 3])
                    phi = float(batch.ego[slot, 4])
                else:
                    state = lane.world.ego.state
                    v, theta, phi = state.v, state.theta, state.phi
                potential = safety_potential(
                    v=v, theta=theta, phi=phi,
                    gap=float(gap[slot]),
                    lead_speed=None if math.isnan(speed) else speed,
                    lateral_free=float(lateral_free[slot]),
                    config=safety_config)
            else:
                potential = None
            if tick == lane.monitor_from:
                lane.pre_delta_long = potential.longitudinal
                lane.pre_delta_lat = potential.lateral
            if tick >= lane.monitor_from:
                lane.min_delta_long = min(lane.min_delta_long,
                                          potential.longitudinal)
                lane.min_delta_lat = min(lane.min_delta_lat,
                                         potential.lateral)
                if collided[slot]:
                    lane.collided = True
                if off_road[slot]:
                    lane.went_off_road = True
            if recording:
                if lane.fused:
                    batch.scatter([slot])
                    lane.command = ActuationCommand(
                        float(ads.cmd_throttle[slot]),
                        float(ads.cmd_brake[slot]),
                        float(ads.cmd_steering[slot]))
                    if ads.plan_valid[slot]:
                        plan_gap = float(ads.plan_gap[slot])
                        closing = float(ads.plan_closing[slot])
                    else:
                        plan_gap, closing = SENSOR_RANGE, 0.0
                    model = ads.models[slot]
                else:
                    plan = lane.pipeline.last_plan
                    plan_gap = (plan.gap if plan is not None
                                else SENSOR_RANGE)
                    closing = (plan.closing_speed if plan is not None
                               else 0.0)
                    model = lane.pipeline.last_model
                lat = model.lane_offset if model is not None else 0.0
                _record_tick(lane, tick, potential, plan_gap, closing, lat)
            lane.tick = tick + 1
            if (lane.collided
                    or (lane.stop_after is not None
                        and tick >= lane.stop_after)
                    or lane.tick >= lane.n_ticks):
                if lane.fused:
                    batch.scatter([slot])
                    ads.deactivate(slot)
                results[lane.index] = lane.result(scenario.name)
                slots[slot] = next_lane()
                if slots[slot] is None:
                    batch.deactivate(slot)
                else:
                    fresh = slots[slot]
                    batch.attach(slot, fresh.world)
                    fresh.fused = can_fuse(fresh.pipeline)
                    if fresh.fused:
                        ads.attach(slot, fresh.pipeline)
    return results


def _record_tick(lane: _BatchLane, tick: int, potential, gap: float,
                 closing: float, lat: float) -> None:
    """The trace-recording block of ``_simulate``, per batch lane (rare
    path: validation runs record no traces).  The belief-side columns
    (``gap``/``closing``/``lat``/``lane.command``) come from the caller,
    which reads them from the scalar pipeline or the fused arrays."""
    world = lane.world
    command = lane.command
    lead = world.lead_obstacle(extra_margin=1.0)
    if lead is None:
        gt_gap, gt_lead_v = SENSOR_RANGE, NO_LEAD
    else:
        gt_gap = ((lead.x - world.ego.state.x)
                  - (world.ego.params.length + lead.length) / 2.0)
        gt_lead_v = lead.v
    lane.trace.record({
        "time": world.time,
        "tick": float(tick),
        "x": world.ego.state.x,
        "v": world.ego.state.v,
        "gap": gap,
        "closing": closing,
        "lat": lat,
        "lat_free": world.lateral_clearance(),
        "lat_free_up": world.lateral_clearance_toward(+1),
        "lat_free_down": world.lateral_clearance_toward(-1),
        "gt_gap": gt_gap,
        "gt_lead_v": gt_lead_v,
        "throttle": command.throttle,
        "brake": command.brake,
        "steering": command.steering,
        "delta_long": potential.longitudinal,
        "delta_lat": potential.lateral,
    })
