"""Streaming per-scenario campaign pipeline with cross-host sharding.

The paper's workflow is inherently per-scenario — collect a golden run,
mine its scene rows, validate the mined faults — yet the barrier
orchestration in :mod:`repro.core.campaign` runs it as three global
phases (all golden runs, then all mining, then all validation), so one
slow scenario stalls every other scenario's downstream work.  This
module replaces the barriers with a dataflow driver:

* :class:`CampaignPipeline` flows each scenario independently through
  golden -> checkpoint-ladder -> mining -> validation stages over a
  single shared process pool, emitting records to the sink as they
  complete.  Validation of an early scenario overlaps golden collection
  of a late one, and (for Bayesian campaigns) mining of scenario B
  overlaps validation of scenario A.
* All four campaign styles are expressed as declarative
  :class:`StagePlan` values built by :class:`~repro.core.campaign
  .Campaign` — the driver knows stages, not styles.

Equivalence guarantee
---------------------
A pipelined campaign emits a record stream **bit-for-bit identical to
the barrier path** (``pipeline=False``, the reference oracle), order
included: every record is produced by the same
:func:`~repro.core.parallel.execute_experiment` call with the same
fault and checkpoint ladder, and an ordered emitter releases records in
the barrier path's deterministic job order (scenario-major grid order
for exhaustive campaigns, seeded draw order for random/architectural,
sorted-candidate order for Bayesian) no matter when they complete.
Execution order is opportunistic; emission order is not.

Two documented barriers remain inside otherwise-streaming plans, both
inherent to the semantics: seeded random/architectural draws interleave
scenarios, so their *job generation* (not validation) waits for every
tick list; and Bayesian training fits one model over every golden
trace.  A ``top_k`` cut ranks candidates across scenarios, so dispatch
then waits for the global merge; without it validation starts the
moment a scenario is mined.

Cross-host sharding
-------------------
``CampaignConfig.shard_index/shard_count`` partitions the campaign
round-robin by scenario index; each shard is an independent process
(host) that writes its own record stream and its own golden/checkpoint
caches under ``cache_dir``, and ``repro merge`` (:func:`repro.core
.persistence.merge_record_shards`) folds the shard streams into a
summary equal to the unsharded run.  Per style:

* random / exhaustive / architectural — a shard simulates golden runs
  only for the scenarios it owns and validates only its own jobs.  The
  global seeded draw is reproduced locally from *schedule-derived* tick
  lists (:meth:`Campaign.schedule_injection_ticks`); for every scenario
  a shard does simulate, the driver asserts the golden trace reached
  exactly the scheduled ticks, so the shard union provably equals the
  unsharded job set.
* bayesian — training needs every golden trace, so each shard collects
  the full golden set and mines globally (mining is the cheap stage);
  only checkpoint ladders and validation — the expensive stage — are
  partitioned.  Architectural outcome counts are likewise global (every
  shard reproduces the same draw sequence).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from ..sim.scenario import Scenario
from .checkpoint import CheckpointStore
from .parallel import (ExperimentJob, _golden_run, _policy, _pool_context,
                       _picklable, _warn_serial_fallback,
                       execute_experiment, execute_experiment_batch)
from .resilience import (CampaignExecutionError, LeaseBoard,
                         SupervisedExecutor, failure_record,
                         run_supervised_serial)
from .results import CampaignSummary, ExperimentRecord

if TYPE_CHECKING:  # avoid a circular import with .campaign
    from .bayesian_fi import CandidateFault
    from .campaign import Campaign, CampaignConfig
    from .simulate import RunResult


@dataclass(frozen=True)
class StagePlan:
    """Declarative description of one campaign style for the driver.

    Exactly one of the three job sources is set:

    * ``per_scenario_jobs(ctx, scenario)`` — jobs derived from one
      scenario's golden run alone; called the moment that run is in,
      so validation streams scenario by scenario.
    * ``global_jobs(ctx)`` — jobs whose generation needs every tick
      list (seeded draws, capped grids); called once the golden stage
      completes.
    * ``miner`` — the Bayesian train/mine/merge flow.

    ``golden_scope`` is ``"owned"`` when a shard only needs its own
    scenarios' golden runs, ``"all"`` when the plan reads every trace
    (Bayesian training).

    ``work_key`` digests the plan parameters that shape the job set;
    together with the config fingerprint it names the resume journal
    and the lease board, so two differently-parameterized campaigns
    sharing a ``cache_dir`` never cross-talk.
    """

    style: str
    golden_scope: str = "owned"
    per_scenario_jobs: Callable | None = None
    global_jobs: Callable | None = None
    miner: "MiningPlan | None" = None
    work_key: str = ""


@dataclass(frozen=True)
class MiningPlan:
    """The Bayesian stages, expressed as driver hooks.

    ``prepare(ctx)`` runs once all goldens are in and returns ready job
    entries on a candidate-cache hit, else ``None``;
    ``mine_scenario(ctx, scenario)`` returns one scenario's unsorted
    candidates; ``finalize(ctx)`` merges, ranks, and returns the
    ordered ``(identity, job)`` entries; ``job_of`` maps a candidate to
    its validation job.  ``eager_dispatch`` allows validation of a
    scenario's candidates before the global merge (sound only without a
    cross-scenario ``top_k`` cut).

    ``fold(ctx, scenario, run)``, when set, streams *training* over
    golden collection: the driver calls it in campaign scenario order
    as each scenario's golden run lands (an out-of-order completion
    waits for its predecessors, keeping the accumulation
    deterministic), so by the time ``prepare`` runs, training is a
    finalization instead of a whole-dataset barrier.
    """

    prepare: Callable
    mine_scenario: Callable
    finalize: Callable
    job_of: Callable
    eager_dispatch: bool = True
    fold: Callable | None = None


@dataclass(frozen=True)
class PipelineProgress:
    """One progress event: ``stage`` is golden/mined/validated."""

    stage: str
    scenario: str | None
    done: int
    total: int | None


@dataclass
class PipelineResult:
    """What one pipeline run produced: the summary plus style extras."""

    summary: CampaignSummary
    extras: dict


# -- worker-process side -------------------------------------------------------
#
# One pool serves golden collection and validation, so workers exist
# before any checkpoint ladder does.  Ladders reach workers through a
# spool directory (the persisted-store layout of CheckpointStore): the
# driver saves each scenario's ladder before dispatching its first
# validation chunk, and workers load lazily per scenario.  A load that
# loses a race falls back to full replay — bit-identical, just slower.

_PIPELINE_STATE: "_WorkerState | None" = None


class _WorkerState:
    def __init__(self, scenarios: list[Scenario], config: "CampaignConfig",
                 spool: str | None, trace_spool: str | None = None):
        self.by_name = {s.name: s for s in scenarios}
        self.config = config
        self.spool = Path(spool) if spool is not None else None
        self.trace_spool = trace_spool
        self.store = CheckpointStore()
        self.loaded: set[str] = set()

    def checkpoints_for(self, scenario: str) -> CheckpointStore | None:
        if self.spool is None:
            return None
        if scenario not in self.loaded:
            self.loaded.add(scenario)
            self.store.load_scenario(self.spool, scenario)
        return self.store if self.store.has_scenario(scenario) else None


def _init_pipeline_worker(scenarios: list[Scenario],
                          config: "CampaignConfig",
                          spool: str | None,
                          trace_spool: str | None = None) -> None:
    global _PIPELINE_STATE
    _PIPELINE_STATE = _WorkerState(scenarios, config, spool, trace_spool)


def _pipeline_golden_job(job: tuple[str, tuple[int, ...] | None]
                         ) -> "RunResult":
    assert _PIPELINE_STATE is not None, "pipeline pool not initialized"
    name, capture = job
    return _golden_run(_PIPELINE_STATE.by_name[name],
                       _PIPELINE_STATE.config,
                       list(capture) if capture is not None else None,
                       _PIPELINE_STATE.trace_spool)


def _pipeline_validate_chunk(chunk) -> list:
    """Run one scenario's chunk of experiments; returns (key, record)s.

    With ``config.batch_sim > 1`` the chunk's experiments step as fused
    lanes of one :class:`~repro.sim.batch.BatchWorldState`
    (:func:`~repro.core.parallel.execute_experiment_batch`); an
    engine-level rejection degrades to the scalar loop in place, so the
    supervised retry/quarantine machinery above never sees the
    difference.  Records are bit-for-bit the scalar path's.
    """
    assert _PIPELINE_STATE is not None, "pipeline pool not initialized"
    name, items = chunk
    state = _PIPELINE_STATE
    scenario = state.by_name[name]
    checkpoints = state.checkpoints_for(name)
    if getattr(state.config, "batch_sim", 0) > 1 and len(items) > 1:
        try:
            records = execute_experiment_batch(
                scenario, state.config, [fault for _, fault in items],
                checkpoints)
        except Exception:
            pass
        else:
            return [(key, record)
                    for (key, _), record in zip(items, records)]
    return [(key, execute_experiment(scenario, state.config, fault,
                                     checkpoints))
            for key, fault in items]


# -- driver side ---------------------------------------------------------------

class _OrderedEmitter:
    """Releases records in the barrier path's deterministic order.

    Execution completes in any order and some slots are only known
    late (a scenario's slot base resolves when every earlier scenario's
    job count is in; a mined candidate's slot resolves at the global
    merge), so records are staged by an opaque key until their slot is
    assigned, then drained in slot order.
    """

    def __init__(self, consume: Callable[[ExperimentRecord], None]):
        self._consume = consume
        self._slots: dict = {}
        self._staged: dict = {}
        self._ready: dict[int, ExperimentRecord] = {}
        self._next = 0
        self.total: int | None = None

    def assign(self, key, slot: int) -> None:
        self._slots[key] = slot
        if key in self._staged:
            self._ready[slot] = self._staged.pop(key)
            self._drain()

    def stage(self, key, record: ExperimentRecord) -> None:
        slot = self._slots.get(key)
        if slot is None:
            self._staged[key] = record
        else:
            self._ready[slot] = record
            self._drain()

    def set_total(self, total: int) -> None:
        self.total = total

    @property
    def complete(self) -> bool:
        return self.total is not None and self._next == self.total

    def _drain(self) -> None:
        while self._next in self._ready:
            self._consume(self._ready.pop(self._next))
            self._next += 1


@dataclass
class PipelineContext:
    """What plan hooks see: collected goldens, mined candidates, extras."""

    campaign: "Campaign"
    sharded: bool
    golden: dict[str, "RunResult"] = field(default_factory=dict)
    mined: dict[str, "list[CandidateFault]"] = field(default_factory=dict)
    extras: dict = field(default_factory=dict)
    _ticks: dict = field(default_factory=dict)

    def injection_ticks(self, name: str, stride: int = 1,
                        require: bool = False) -> list[int]:
        """Eligible ticks of a scenario, golden-derived when available.

        Scenarios whose golden run this shard collected use the trace's
        ticks — the barrier path's source.  Foreign scenarios (sharded
        job generation only) use the schedule-derived list; for every
        collected scenario under sharding the two are asserted equal,
        so the shard union provably matches the unsharded draw.
        """
        campaign = self.campaign
        cached = self._ticks.get(name)
        if cached is None:
            scenario = campaign._by_name[name]
            run = self.golden.get(name)
            if run is not None:
                cached = campaign.eligible_ticks_from_trace(
                    run, scenario.duration)
                if self.sharded:
                    schedule = campaign.schedule_injection_ticks(scenario)
                    if cached != schedule:
                        raise RuntimeError(
                            f"golden run of {name!r} ended early: its "
                            f"trace ticks differ from the schedule, so "
                            f"shards cannot reproduce the global fault "
                            f"draw; run this campaign unsharded")
            else:
                cached = campaign.schedule_injection_ticks(scenario)
            self._ticks[name] = cached
        if require and not cached:
            raise campaign._no_ticks_error(name)
        return cached[::stride] if stride != 1 else cached


class CampaignPipeline:
    """The streaming driver: one shared pool, per-scenario dataflow.

    Not reentrant — build one per :meth:`run`.  ``workers`` of ``None``,
    0, or 1 executes the same dataflow serially in-process (the
    degenerate pipeline), which is also the fallback when no process
    pool can be built (e.g. spawn-only platforms with unpicklable
    caller-supplied scenarios).
    """

    def __init__(self, campaign: "Campaign", workers: int | None = None,
                 record_sink=None, on_progress=None,
                 start_method: str | None = None):
        self.campaign = campaign
        self.config = campaign.config
        self.workers = workers
        self.record_sink = record_sink
        self.on_progress = on_progress
        self.start_method = start_method

    # -- public entry ----------------------------------------------------------

    def run(self, plan: StagePlan) -> PipelineResult:
        if self.config.resilience.lease_mode:
            return self._run_leased(plan)
        return self._run_once(plan)

    def _run_leased(self, plan: StagePlan) -> PipelineResult:
        """Dynamic multi-host mode: claim scenarios via TTL leases.

        Every cooperating host runs the same campaign against a shared
        ``cache_dir``; a :class:`~repro.core.resilience.LeaseBoard`
        hands each host an exclusive, heartbeat-renewed claim on a
        subset of scenarios per round.  A host that dies stops renewing
        its leases, so its scenarios are re-claimed by survivors — the
        dynamic replacement for static ``shard_index`` partitioning.
        Each round publishes its per-scenario record files atomically
        (publication doubles as the done marker); the returned summary
        is folded from the full published set, so every surviving host
        reports the global aggregates and ``repro merge`` over the
        board's record files reproduces the single-host stream.
        """
        from .persistence import iter_records_jsonl
        campaign = self.campaign
        res = self.config.resilience
        if campaign.cache_dir is None:
            raise ValueError(
                "lease mode needs a cache_dir shared by the "
                "cooperating hosts")
        if self.config.shard_count > 1:
            raise ValueError(
                "lease mode replaces static sharding; run with "
                "shard_count=1")
        board = LeaseBoard(campaign._lease_board_dir(plan.work_key),
                           style=plan.style, ttl=res.lease_ttl)
        names = [s.name for s in campaign.scenarios]
        extras: dict = {}
        rounds = 0
        while True:
            claimable = [name for name in names if board.try_claim(name)]
            if claimable:
                owned = [campaign._by_name[name] for name in claimable]
                try:
                    result = self._run_once(plan, owned=owned, board=board)
                except BaseException:
                    board.release_all()
                    raise
                rounds += 1
                extras = result.extras
                for name in claimable:
                    board.publish(name, self._lease_records.get(name, []))
                    board.release(name)
            elif all(board.is_done(name) for name in names):
                break
            else:
                time.sleep(res.lease_poll)
        if rounds == 0 and (plan.miner is not None
                            or plan.global_jobs is not None):
            # This host claimed nothing, but style extras (fitted
            # injector, outcome counts) are derived from the golden
            # set, not from owned validation work — run an empty-owned
            # round to reproduce them.
            extras = self._run_once(plan, owned=[], board=board).extras
        summary = CampaignSummary(keep_records=False)
        for path in board.record_paths(names):
            for record in iter_records_jsonl(path):
                summary.add(record)
        return PipelineResult(summary=summary, extras=extras)

    def _run_once(self, plan: StagePlan,
                  owned: "list[Scenario] | None" = None,
                  board: LeaseBoard | None = None) -> PipelineResult:
        campaign = self.campaign
        self.plan = plan
        self.board = board
        self.sharded = self.config.shard_count > 1 or board is not None
        if owned is None:
            owned = campaign.owned_scenarios()
        self._owned_names = {s.name for s in owned}
        self._owned_order = [s.name for s in owned]
        if plan.golden_scope == "all":
            self._targets = list(campaign.scenarios)
        else:
            self._targets = owned
        self._targets_all = len(self._targets) == len(campaign.scenarios)
        self.ctx = PipelineContext(campaign=campaign, sharded=self.sharded)

        self._summary = CampaignSummary(
            keep_records=self.record_sink is None)
        self._emitter = _OrderedEmitter(self._consume)
        self._emitted = 0
        self._golden_done = 0
        self._fold_next = 0
        store = campaign.golden_trace_store()
        self._trace_spool = store.root if store is not None else None
        self._checkpoints_ready: set[str] = set()
        self._dispatched_keys: set = set()
        self._fresh_ladders: set[str] = set()
        self._lease_records: dict[str, list[ExperimentRecord]] = {}
        # per-scenario block -> slot-base bookkeeping
        self._blocks: dict[int, int] = {}
        self._next_block = 0
        self._base = 0

        self._pool = None
        self._spool = (campaign._ladder_spool_dir()
                       if self.config.use_checkpoints else None)
        self._journal = (None if board is not None
                         else campaign._open_journal(plan.work_key))
        interrupted = False
        try:
            warm, to_simulate = self._prepare_golden()
            self._start_pool()
            if not self._targets:
                self._on_goldens_complete()
            for name in warm:                      # scenario order
                self._handle_golden(name, self.ctx.golden[name])
            for name, capture in to_simulate:
                self._submit_golden(name, capture)
            self._event_loop()
        except BaseException:
            # On interrupt or failure, kill workers rather than wait
            # for in-flight chunks; the journal keeps the completed
            # prefix, so --resume continues where the stream stopped.
            interrupted = True
            raise
        finally:
            if self._pool is not None:
                self._pool.shutdown(kill=interrupted)
            if self._journal is not None:
                self._journal.close()
        self._finish()
        return PipelineResult(summary=self._summary, extras=self.ctx.extras)

    # -- golden stage ----------------------------------------------------------

    def _prepare_golden(self):
        """Split golden targets into warm (already available) and to-run.

        Warm sources, in order: golden runs already on the campaign
        object, then the golden-trace cache under ``cache_dir`` (the
        full-set file, or this shard's subset file when the plan only
        needs owned scenarios).  The cache is all-or-nothing, matching
        the barrier path.
        """
        campaign = self.campaign
        self._fresh_golden = False
        names = [s.name for s in self._targets]
        if campaign._golden is not None:
            self.ctx.golden.update(
                {name: campaign._golden[name] for name in names})
            return names, []
        memo = campaign._golden_shard
        if memo is not None and all(name in memo for name in names):
            self.ctx.golden.update({name: memo[name] for name in names})
            return names, []
        loaded = self._load_golden_cache()
        if loaded is not None:
            self.ctx.golden.update(loaded)
            return names, []
        self._fresh_golden = True
        to_simulate = []
        for scenario in self._targets:
            capture = None
            if self.config.use_checkpoints \
                    and scenario.name in self._owned_names \
                    and not campaign.checkpoints.has_scenario(scenario.name):
                capture = campaign._capture_ticks(scenario)
            to_simulate.append((scenario.name, capture))
        return [], to_simulate

    def _load_golden_cache(self):
        campaign = self.campaign
        if self._targets_all:
            return campaign._load_golden_cache()
        return campaign._load_golden_cache_for(
            [s.name for s in self._targets], sharded=True)

    def _submit_golden(self, name: str, capture: list[int] | None) -> None:
        if self._pool is None:
            run, failure = run_supervised_serial(
                lambda: _golden_run(self.campaign._by_name[name],
                                    self.config, capture,
                                    self._trace_spool),
                _policy(self.config), self.config.seed, ("golden", name))
            if failure is not None:
                raise CampaignExecutionError(
                    f"golden run of scenario {name!r} failed after "
                    f"{failure.attempts} attempt(s): {failure.error}: "
                    f"{failure.message}")
            self._handle_golden(name, run)
        else:
            job = (name, tuple(capture) if capture is not None else None)
            self._pool.submit(_pipeline_golden_job, job,
                              tag=("golden", name))

    def _handle_golden(self, name: str, run: "RunResult") -> None:
        campaign = self.campaign
        self.ctx.golden[name] = run
        if run.checkpoints:
            store = campaign.checkpoints
            resident = store.has_scenario(name)
            store.add_all(run.checkpoints)
            self._fresh_ladders.add(name)
            if self._spool is not None:
                # Spill the fresh ladder the moment it lands and drop
                # it (plus the RunResult's reference) from memory:
                # driver-resident ladder state stays O(one scenario)
                # instead of O(campaign).  Dispatch reloads from the
                # spool; when cache_dir is set the spool *is* the
                # persistent checkpoint cache, so this eager save also
                # replaces the batch persistence pass.  Ladders the
                # campaign already held in memory (barrier-collected)
                # stay resident — they belong to the caller, not us.
                store.save_scenario(self._spool, name)
                self._checkpoints_ready.add(name)
                if not resident:
                    store.drop_scenario(name)
                    run.checkpoints = []
        if self.board is not None:
            self.board.heartbeat()
        self._golden_done += 1
        self._progress("golden", name, self._golden_done,
                       len(self._targets))
        self._fold_completed()
        if self.plan.per_scenario_jobs is not None \
                and name in self._owned_names:
            jobs = self.plan.per_scenario_jobs(self.ctx,
                                               campaign._by_name[name])
            self._add_block(name, jobs)
        if self._golden_done == len(self._targets):
            self._on_goldens_complete()

    def _fold_completed(self) -> None:
        """Stream completed goldens into the miner's training fold.

        Folds advance through ``self._targets`` in campaign scenario
        order, consuming the longest completed prefix — training work
        happens while later goldens still simulate, yet the
        accumulation order (and therefore the fitted model) is exactly
        the barrier path's.  Emits one ``train`` progress event per
        folded trace.
        """
        miner = self.plan.miner
        if miner is None or miner.fold is None:
            return
        total = len(self._targets)
        while self._fold_next < total:
            scenario = self._targets[self._fold_next]
            run = self.ctx.golden.get(scenario.name)
            if run is None:
                return
            miner.fold(self.ctx, scenario, run)
            self._fold_next += 1
            self._progress("train", scenario.name, self._fold_next,
                           total)

    def _on_goldens_complete(self) -> None:
        # Reinstate campaign scenario order (completion order is not
        # deterministic) before any hook that iterates the dict.
        ordered = {s.name: self.ctx.golden[s.name] for s in self._targets}
        self.ctx.golden = ordered
        self._persist_golden()
        plan = self.plan
        if plan.global_jobs is not None:
            jobs = plan.global_jobs(self.ctx)
            owned_jobs = [(name, fault) for name, fault in jobs
                          if name in self._owned_names]
            self._emitter.set_total(len(owned_jobs))
            groups: dict[str, list] = {}
            for slot, (name, fault) in enumerate(owned_jobs):
                self._emitter.assign(slot, slot)
                groups.setdefault(name, []).append((slot, fault))
            for name, items in groups.items():
                self._dispatch(name, items)
        elif plan.miner is not None:
            self._run_mining()
        elif not self._owned_order:
            self._emitter.set_total(0)

    def _persist_golden(self) -> None:
        campaign = self.campaign
        campaign._pin_spool(self.ctx.golden)
        if self._targets_all:
            if campaign._golden is None:
                campaign._golden = dict(self.ctx.golden)
                if self._fresh_golden:
                    campaign._save_golden_cache()
            return
        merged = dict(campaign._golden_shard or {})
        merged.update(self.ctx.golden)
        campaign._golden_shard = merged
        if not self._fresh_golden or self.board is not None:
            # Lease rounds own a different subset each time, so the
            # statically-partitioned per-shard cache file would go
            # stale; leased runs rely on the in-memory memo and the
            # full-set cache instead.
            return
        path = campaign._golden_cache_path(sharded=True)
        if path is not None:
            from .persistence import save_golden_traces
            path.parent.mkdir(parents=True, exist_ok=True)
            save_golden_traces(self.ctx.golden, path,
                               campaign._fingerprint(),
                               trace_store=campaign.golden_trace_store())

    # -- per-scenario job streaming --------------------------------------------

    def _add_block(self, name: str, jobs: list[ExperimentJob]) -> None:
        """Register one scenario's job block; dispatch now, emit in order.

        Blocks occupy consecutive slot ranges in owned-scenario order
        (the barrier path's job order).  Execution starts immediately;
        slots — and therefore emission — resolve as soon as every
        earlier block's size is known.
        """
        index = self._owned_order.index(name)
        self._blocks[index] = len(jobs)
        self._dispatch(name, [((index, j), fault)
                              for j, (_, fault) in enumerate(jobs)])
        while self._next_block in self._blocks:
            size = self._blocks[self._next_block]
            for j in range(size):
                self._emitter.assign((self._next_block, j), self._base + j)
            self._base += size
            self._next_block += 1
        if self._next_block == len(self._owned_order):
            self._emitter.set_total(self._base)

    # -- mining stage ----------------------------------------------------------

    def _run_mining(self) -> None:
        plan = self.plan
        campaign = self.campaign
        entries = plan.miner.prepare(self.ctx)
        if entries is None:
            total = len(campaign.scenarios)
            for done, scenario in enumerate(campaign.scenarios, start=1):
                mined = plan.miner.mine_scenario(self.ctx, scenario)
                self.ctx.mined[scenario.name] = mined
                self._progress("mined", scenario.name, done, total)
                if plan.miner.eager_dispatch:
                    items = [((scenario.name, j), plan.miner.job_of(c)[1])
                             for j, c in enumerate(mined)
                             if c.scenario in self._owned_names]
                    if items:
                        self._dispatch(scenario.name, items)
            entries = plan.miner.finalize(self.ctx)
        owned = [(identity, job) for identity, job in entries
                 if job[0] in self._owned_names]
        self._emitter.set_total(len(owned))
        for slot, (identity, _) in enumerate(owned):
            self._emitter.assign(identity, slot)
        groups: dict[str, list] = {}
        for identity, (name, fault) in owned:
            if identity not in self._dispatched_keys:
                groups.setdefault(name, []).append((identity, fault))
        for name, items in groups.items():
            self._dispatch(name, items)

    # -- validation stage ------------------------------------------------------

    def _dispatch(self, name: str, items: list) -> None:
        """Execute ``items`` (``(key, fault)`` pairs) of one scenario."""
        if not items:
            return
        self._dispatched_keys.update(key for key, _ in items)
        if self._journal is not None:
            fresh = []
            for key, fault in items:
                hit = self._journal.claim(name, fault, self.config.seed)
                if hit is not None:
                    self._emitter.stage(key, hit)
                else:
                    fresh.append((key, fault))
            items = fresh
            if not items:
                return
        self._ready_checkpoints(name)
        if self._pool is None:
            self._dispatch_serial(name, items)
            return
        policy = _policy(self.config)
        chunk = max(1, len(items) // (self.workers * 4))
        if getattr(self.config, "batch_sim", 0) > 1:
            # Chunks below the lane count waste the fused kernels;
            # chunk boundaries don't affect record values or emission
            # order (keys carry the slots), so rounding up is free.
            chunk = max(chunk, self.config.batch_sim)
        for start in range(0, len(items), chunk):
            part = tuple(items[start:start + chunk])
            timeout = (policy.job_timeout * len(part)
                       if policy.job_timeout is not None else None)
            self._pool.submit(_pipeline_validate_chunk, (name, list(part)),
                              tag=("validate", name, part),
                              timeout=timeout)

    def _dispatch_serial(self, name: str, items: list) -> None:
        campaign = self.campaign
        scenario = campaign._by_name[name]
        store = campaign.checkpoints
        checkpoints = None
        loaded_here = False
        if self.config.use_checkpoints:
            if not store.has_scenario(name) and self._spool is not None:
                loaded_here = store.load_scenario(self._spool, name)
            if store.has_scenario(name):
                checkpoints = store
        policy = _policy(self.config)
        batch_sim = getattr(self.config, "batch_sim", 0)
        try:
            pending = list(items)
            while pending:
                part, pending = (pending[:batch_sim],
                                 pending[batch_sim:]) \
                    if batch_sim > 1 else (pending[:1], pending[1:])
                records = None
                if len(part) > 1:
                    try:
                        records = execute_experiment_batch(
                            scenario, self.config,
                            [fault for _, fault in part], checkpoints)
                    except Exception:
                        # Degrade to the supervised scalar loop below —
                        # retry, quarantine, and strict semantics stay
                        # the scalar path's.
                        records = None
                if records is not None:
                    for (key, _), record in zip(part, records):
                        self._record_done(key, record)
                    continue
                for key, fault in part:
                    record, failure = run_supervised_serial(
                        lambda: execute_experiment(scenario, self.config,
                                                   fault, checkpoints),
                        policy, self.config.seed,
                        (name, fault.start_tick, fault.variable,
                         fault.value))
                    if failure is not None:
                        record = failure_record(name, fault, self.config,
                                                failure)
                    self._record_done(key, record)
        finally:
            if loaded_here:
                # Serial twin of the worker-side spool protocol: the
                # ladder was reloaded for this dispatch; evict it again
                # so memory stays O(one scenario).
                store.drop_scenario(name)

    def _record_done(self, key, record: ExperimentRecord) -> None:
        if self._journal is not None:
            self._journal.append(record)
        self._emitter.stage(key, record)

    def _ready_checkpoints(self, name: str) -> None:
        """Make a scenario's ladder available in the spool before dispatch.

        Freshly captured ladders are spilled by :meth:`_handle_golden`;
        this covers warm-started scenarios, filling the spool from one
        prefix re-simulation when the persisted cache lacks the ladder.
        All persistence here is per scenario
        (:meth:`CheckpointStore.save_scenario`): incremental and
        index-preserving, so a campaign touching k of n scenarios costs
        O(k) ladder writes and never drops the other n-k persisted
        entries — the barrier path's whole-store save stays confined to
        the batch code.
        """
        if not self.config.use_checkpoints or self._spool is None \
                or name in self._checkpoints_ready:
            return
        self._checkpoints_ready.add(name)
        campaign = self.campaign
        store = campaign.checkpoints
        resident = store.has_scenario(name)
        if not resident:
            if name in store.saved_scenarios(self._spool):
                return              # spilled earlier; workers load lazily
            campaign._ensure_checkpoints([name], save=False)
        store.save_scenario(self._spool, name)
        if not resident:
            store.drop_scenario(name)

    # -- execution engine ------------------------------------------------------

    def _start_pool(self) -> None:
        campaign = self.campaign
        workers = self.workers
        context = _pool_context(self.start_method) \
            if workers and workers > 1 else None
        if context is None:
            return
        if self._spool is not None:
            self._spool.mkdir(parents=True, exist_ok=True)
        initargs = (campaign.scenarios, self.config,
                    str(self._spool) if self._spool is not None else None,
                    str(self._trace_spool)
                    if self._trace_spool is not None else None)
        if context.get_start_method() != "fork" \
                and not _picklable(*initargs):
            _warn_serial_fallback(context.get_start_method(),
                                  scenarios=campaign.scenarios,
                                  config=self.config)
            return
        self._pool = SupervisedExecutor(workers, context,
                                        initializer=_init_pipeline_worker,
                                        initargs=initargs,
                                        policy=_policy(self.config),
                                        seed=self.config.seed)

    def _event_loop(self) -> None:
        while self._pool is not None and self._pool.outstanding:
            events = self._pool.next_events(
                max_wait=0.5 if self.board is not None else None)
            if self.board is not None:
                self.board.heartbeat()
            for tag, value, failure in events:
                if tag[0] == "golden":
                    name = tag[1]
                    if failure is not None:
                        # Golden runs are the oracle every downstream
                        # stage reads; quarantining one would corrupt
                        # the campaign, so a persistent golden failure
                        # is fatal regardless of --strict.
                        raise CampaignExecutionError(
                            f"golden run of scenario {name!r} failed "
                            f"after {failure.attempts} attempt(s): "
                            f"{failure.error}: {failure.message}")
                    self._handle_golden(name, value)
                else:
                    _, name, part = tag
                    if failure is not None:
                        for key, fault in part:
                            self._record_done(
                                key, failure_record(name, fault,
                                                    self.config, failure))
                    else:
                        for key, record in value:
                            self._record_done(key, record)

    def _consume(self, record: ExperimentRecord) -> None:
        self._emitted += 1
        self._summary.add(record)
        if self.board is not None:
            self._lease_records.setdefault(record.scenario,
                                           []).append(record)
        if self.record_sink is not None:
            self.record_sink.add(record)
        self._progress("validated", record.scenario, self._emitted,
                       self._emitter.total)

    def _progress(self, stage, scenario, done, total) -> None:
        if self.on_progress is not None:
            self.on_progress(PipelineProgress(stage=stage,
                                              scenario=scenario,
                                              done=done, total=total))

    def _finish(self) -> None:
        # Freshly captured ladders were already persisted scenario by
        # scenario (the eager spill in _handle_golden writes straight
        # into the checkpoint cache when cache_dir is set), so the only
        # job left is the completeness invariant.
        if not self._emitter.complete:
            raise RuntimeError(
                f"pipeline emitted {self._emitted} of "
                f"{self._emitter.total} records — driver bug")
