"""Small shared I/O helpers for the cache, spool, and journal writers.

Campaign caches are written concurrently — shard processes sharing a
``cache_dir``, a pipeline driver spooling ladders while pool workers
read them — so every cache write goes through write-then-rename: a
reader observes one complete version or another, never a torn file.
A failed read is always treated as a cache miss by the callers, so the
worst outcome of a race is recomputation.

Two details matter for crash tolerance (and are regression-tested):

* Temp names are unique per write (pid **and** a process-local
  counter), and a failed write unlinks its temp file.  A bare
  ``.tmp-<pid>`` would leak on failure and, worse, collide when a pid
  is recycled across a crashed run — two writers of the *same* cache
  path scribbling over one temp file.
* ``fsync=True`` makes the write durable before the rename becomes
  visible: the journal the resume machinery depends on must never
  expose a segment whose bytes are still in the page cache when the
  host loses power.  Caches skip the sync — they are recomputable.

:func:`set_write_fault_hook` is the sanctioned fault-injection port:
the chaos suite uses it to fail cache/journal writes with injected
``OSError`` without monkeypatching every importer of these helpers.
"""

from __future__ import annotations

import itertools
import os
from pathlib import Path
from typing import Callable

#: Process-local uniquifier: two concurrent writers in one process (or
#: a recycled pid across runs, combined with the pid) never share a
#: temp name.
_TMP_COUNTER = itertools.count()

#: Test hook: called as ``hook(path)`` before every atomic write; the
#: chaos harness installs one that raises ``OSError`` (disk full, EIO)
#: with a seeded probability.  ``None`` (production) costs one ``is
#: not None`` check.
_WRITE_FAULT_HOOK: Callable[[Path], None] | None = None


def set_write_fault_hook(hook: Callable[[Path], None] | None) -> None:
    """Install (or clear, with ``None``) the write fault-injection hook."""
    global _WRITE_FAULT_HOOK
    _WRITE_FAULT_HOOK = hook


def write_bytes_atomic(path: Path, payload: bytes,
                       fsync: bool = False) -> None:
    """Write ``payload`` to ``path`` via a same-directory rename.

    The temp file is uniquely named per write and removed again if
    anything fails before the rename, so a crashed or failed write
    never leaves a ``.tmp-*`` for a later writer to collide with.
    ``fsync`` additionally syncs the file (and its directory) before
    and after the rename — the durability journal segments need.
    """
    path = Path(path)
    if _WRITE_FAULT_HOOK is not None:
        _WRITE_FAULT_HOOK(path)
    tmp = path.with_name(
        f"{path.name}.tmp-{os.getpid()}-{next(_TMP_COUNTER)}")
    try:
        with open(tmp, "wb") as handle:
            handle.write(payload)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    if fsync:
        _fsync_directory(path.parent)


def _fsync_directory(directory: Path) -> None:
    """Best-effort directory sync so a rename survives power loss."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return                        # platform without dir-open support
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def write_text_atomic(path: Path, text: str, fsync: bool = False) -> None:
    """Text variant of :func:`write_bytes_atomic` (UTF-8)."""
    write_bytes_atomic(path, text.encode("utf-8"), fsync=fsync)
