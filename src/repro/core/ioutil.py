"""Small shared I/O helpers for the cache and spool writers.

Campaign caches are written concurrently — shard processes sharing a
``cache_dir``, a pipeline driver spooling ladders while pool workers
read them — so every cache write goes through write-then-rename: a
reader observes one complete version or another, never a torn file.
A failed read is always treated as a cache miss by the callers, so the
worst outcome of a race is recomputation.
"""

from __future__ import annotations

import os
from pathlib import Path


def write_bytes_atomic(path: Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` via a same-directory rename."""
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    tmp.write_bytes(payload)
    os.replace(tmp, path)


def write_text_atomic(path: Path, text: str) -> None:
    """Text variant of :func:`write_bytes_atomic` (UTF-8)."""
    write_bytes_atomic(path, text.encode("utf-8"))
