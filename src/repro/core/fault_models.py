"""The three fault models of the paper (Section II-C).

(a) Random, uniform faults in non-ECC processor structures — realized by
    the :mod:`repro.arch` register-bit-flip injector running real ADS
    kernels, with silent corruptions propagated into the matching ADS
    variable.
(b) Random/exhaustive corruption of ADS module outputs with their min or
    max values.
(c) Bayesian-selected corruptions: the same (variable, value) space as
    (b), but chosen by the Bayesian fault injector (see
    :mod:`repro.core.bayesian_fi`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ads.variables import REGISTRY, InjectableVariable, variable_by_name
from ..arch.injector import ArchitecturalInjector, Outcome
from ..arch.kernels import (Kernel, dot_kernel, idm_kernel, kalman_kernel,
                            matmul_kernel, pid_kernel)
from .interface_faults import interface_fault
from .simulate import FaultSpec

#: Variables excluded from output-corruption campaigns by default: gps_x
#: jumps teleport the localization estimate along the road axis, which
#: the planner ignores on a straight highway (pure masking, only cost).
DEFAULT_VARIABLES = tuple(v.name for v in REGISTRY if v.name != "gps_x")


def minmax_fault_grid(injection_ticks: list[int],
                      variable_names: list[str] | None = None,
                      duration_ticks: int = 2) -> list[FaultSpec]:
    """Fault model (b): every variable x {min, max} x every tick."""
    names = list(variable_names or DEFAULT_VARIABLES)
    grid = []
    for tick in injection_ticks:
        for name in names:
            variable = variable_by_name(name)
            for value in variable.corruption_values():
                grid.append(FaultSpec(variable=name, value=float(value),
                                      start_tick=int(tick),
                                      duration_ticks=duration_ticks))
    return grid


def random_fault(rng: np.random.Generator, injection_ticks: list[int],
                 variable_names: list[str] | None = None,
                 duration_ticks: int = 2) -> FaultSpec:
    """Fault model (b), randomized: uniform variable, value, and tick."""
    names = list(variable_names or DEFAULT_VARIABLES)
    name = names[int(rng.integers(len(names)))]
    variable = variable_by_name(name)
    value = float(rng.uniform(variable.min_value, variable.max_value))
    tick = int(injection_ticks[int(rng.integers(len(injection_ticks)))])
    return FaultSpec(variable=name, value=value, start_tick=tick,
                     duration_ticks=duration_ticks)


# -- fault model (a): architectural faults propagated into the ADS ---------

#: Which ADS variable each kernel's output feeds (the module the kernel
#: belongs to).  A silent corruption of the kernel output manifests as a
#: corruption of this variable.
KERNEL_VARIABLE_MAP = {
    "dot16": "detection_x",       # perception front end
    "matmul4": "detection_x",     # perception GEMM
    "kalman": "tracked_gap",      # tracker measurement update
    "pid": "throttle",            # control output
    "idm": "raw_throttle",        # planner longitudinal command
}


@dataclass(frozen=True)
class ArchFaultOutcome:
    """Result of sampling one architectural fault.

    ``fault`` is ``None`` for masked flips and for detectable crashes or
    hangs (the paper notes those are recoverable with the redundant
    systems AVs already carry, so they never reach the actuators).
    """

    kernel: str
    outcome: Outcome
    relative_error: float
    fault: FaultSpec | None


class ArchitecturalFaultModel:
    """Fault model (a): register bit flips in ADS kernels.

    A silent corruption with relative error ``r`` is mapped onto the
    kernel's ADS variable as a deflection of fraction ``min(r, 1)`` from
    the middle of the variable's physical range toward a random extreme:
    tiny numerical errors stay near nominal (and are masked downstream),
    while exponent-bit corruptions saturate at the min/max corruption
    values — the same values fault model (b) uses.
    """

    def __init__(self, kernels: list[Kernel] | None = None):
        self.kernels = kernels or [dot_kernel(16), matmul_kernel(4),
                                   kalman_kernel(), pid_kernel(),
                                   idm_kernel()]
        self._injectors = {k.name: ArchitecturalInjector(k)
                           for k in self.kernels}
        unknown = [k.name for k in self.kernels
                   if k.name not in KERNEL_VARIABLE_MAP]
        if unknown:
            raise ValueError(f"kernels without a variable mapping: "
                             f"{unknown}")

    def sample(self, rng: np.random.Generator, injection_ticks: list[int],
               duration_ticks: int = 2,
               interface_hangs: bool = False) -> ArchFaultOutcome:
        """One architectural injection, mapped to an ADS-level fault.

        With ``interface_hangs`` a HANG outcome — which the default
        model treats as detectable-and-recoverable, so it never reaches
        the ADS — is instead propagated as an interface ``hang`` fault
        on the channel of the kernel's module: the stuck kernel stops
        its module from publishing.  The extra tick draw happens only on
        that path, so the default sampling stream is unchanged.
        """
        kernel = self.kernels[int(rng.integers(len(self.kernels)))]
        result = self._injectors[kernel.name].inject(rng)
        if result.outcome is not Outcome.SDC:
            fault = None
            if interface_hangs and result.outcome is Outcome.HANG:
                variable = variable_by_name(KERNEL_VARIABLE_MAP[kernel.name])
                tick = int(injection_ticks[
                    int(rng.integers(len(injection_ticks)))])
                fault = interface_fault("hang", variable.stage, tick,
                                        duration_ticks=duration_ticks)
            return ArchFaultOutcome(kernel=kernel.name,
                                    outcome=result.outcome,
                                    relative_error=result.relative_error,
                                    fault=fault)
        variable = variable_by_name(KERNEL_VARIABLE_MAP[kernel.name])
        value = self._map_error_to_value(variable, result.relative_error,
                                         rng)
        tick = int(injection_ticks[int(rng.integers(len(injection_ticks)))])
        fault = FaultSpec(variable=variable.name, value=value,
                          start_tick=tick, duration_ticks=duration_ticks)
        return ArchFaultOutcome(kernel=kernel.name, outcome=result.outcome,
                                relative_error=result.relative_error,
                                fault=fault)

    @staticmethod
    def _map_error_to_value(variable: InjectableVariable,
                            relative_error: float,
                            rng: np.random.Generator) -> float:
        middle = (variable.min_value + variable.max_value) / 2.0
        extreme = (variable.max_value if rng.random() < 0.5
                   else variable.min_value)
        fraction = min(relative_error, 1.0)
        return float(middle + fraction * (extreme - middle))
