"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's campaigns:

* ``golden``    — run the scenario library fault-free and print margins
* ``random``    — random output-corruption campaign (fault model b)
* ``arch``      — random architectural campaign (fault model a)
* ``bayesian``  — Bayesian FI: train, mine, validate
* ``exhaustive``— strided sample of the min/max grid
* ``inject``    — one hand-specified fault
* ``scenes``    — the E4 scene-population delta distribution
* ``merge``     — fold sharded campaign record streams into one summary
* ``serve``     — always-on campaign service: HTTP/JSON job submission,
  durable job lifecycle, crash-safe restart, graceful drain

Campaign commands run on the streaming per-scenario pipeline by default
(``--no-pipeline`` keeps the barrier reference path) and shard across
hosts with ``--shard-index/--shard-count``: each shard validates its
partition, streams records to its own ``--record-out`` file, and
``repro merge`` folds the shard streams back together.

Campaigns are supervised: a crashed or stuck worker is respawned and
its job retried, persistent failures are quarantined as structured
failure records (``--strict`` restores fail-fast), a durable completion
journal under ``--cache-dir`` lets ``--resume`` continue a killed
campaign without re-running finished experiments, and ``--lease``
replaces static sharding with dynamic TTL-leased scenario claims.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from .ads.runtime import ADSConfig
from .analysis.metrics import delta_distribution, hazard_table
from .analysis.report import ascii_table
from .core.campaign import Campaign, CampaignConfig
from .core.interface_faults import DegradationConfig, interface_fault
from .core.persistence import (JsonlRecordSink, save_candidates,
                               save_summary)
from .core.resilience import ResilienceConfig
from .core.safety import world_safety_potential
from .core.simulate import FaultSpec
from .sim.scenegen import SceneGenerator


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DriveFI reproduction: Bayesian fault injection")
    sub = parser.add_subparsers(dest="command", required=True)

    cache = argparse.ArgumentParser(add_help=False)
    cache.add_argument("--cache-dir", default=None,
                       help="directory for incremental-campaign caches "
                            "(golden traces, checkpoint ladders, mined "
                            "candidates)")
    cache.add_argument("--no-checkpoints", action="store_true",
                       help="validate by full replay from tick 0 "
                            "(the reference oracle) instead of "
                            "checkpoint resume")
    cache.add_argument("--trace-store", action="store_true",
                       help="spool golden traces out-of-core to "
                            "memory-mapped columnar files (under "
                            "--cache-dir when given, else a temporary "
                            "directory); peak trace memory becomes "
                            "O(largest trace) instead of O(all traces)")
    cache.add_argument("--no-degradation", action="store_true",
                       help="disable the ADS graceful-degradation mode "
                            "(stale-channel detection and safe-stop "
                            "fallback), exposing the brittle oracle "
                            "behavior to interface faults")

    campaign = argparse.ArgumentParser(add_help=False)
    campaign.add_argument("--shard-index", type=int, default=0,
                          help="this host's shard (0-based); shard i "
                               "owns every scenario with index %% "
                               "shard-count == i")
    campaign.add_argument("--shard-count", type=int, default=1,
                          help="total shards the campaign is split "
                               "across (default 1: unsharded)")
    campaign.add_argument("--progress", action="store_true",
                          help="log per-stage progress (golden/mined/"
                               "validated counts) to stderr")
    campaign.add_argument("--no-pipeline", action="store_true",
                          help="run the barrier reference path instead "
                               "of the streaming per-scenario pipeline")
    campaign.add_argument("--strict", action="store_true",
                          help="fail fast on the first experiment error "
                               "instead of retrying and quarantining it "
                               "as a structured failure record")
    campaign.add_argument("--job-timeout", type=float, default=None,
                          metavar="SECONDS",
                          help="wall-clock budget per experiment; a "
                               "worker stuck past it is killed and the "
                               "job retried")
    campaign.add_argument("--max-attempts", type=int, default=3,
                          metavar="N",
                          help="attempts per experiment before it is "
                               "quarantined (default 3)")
    campaign.add_argument("--no-journal", action="store_true",
                          help="skip the durable completion journal "
                               "normally kept under --cache-dir")
    campaign.add_argument("--resume", action="store_true",
                          help="skip experiments the completion journal "
                               "under --cache-dir already records "
                               "(after a crash/SIGKILL, continues where "
                               "the previous run stopped)")
    campaign.add_argument("--lease", action="store_true",
                          help="claim scenarios dynamically via TTL "
                               "leases in the shared --cache-dir "
                               "(multi-host mode without static "
                               "--shard-index partitioning; dead hosts' "
                               "claims expire and are re-run)")
    campaign.add_argument("--lease-ttl", type=float, default=30.0,
                          metavar="SECONDS",
                          help="lease lifetime between heartbeats "
                               "(default 30)")
    campaign.add_argument("--batch-sim", type=int, default=0, metavar="N",
                          help="validate up to N same-scenario "
                               "experiments per fused numpy batch "
                               "(records are bit-for-bit the scalar "
                               "engine's; default 0 keeps the scalar "
                               "reference engine)")
    campaign.add_argument("--profile-stages", action="store_true",
                          help="collect wall-clock counters per ADS "
                               "stage (sensing/perception/world-model/"
                               "planning/actuation) and print them with "
                               "the summary; counters cover this "
                               "process only, so profile with "
                               "--workers 1")

    workers_help = ("processes for golden-run collection and experiment "
                    "validation (default serial)")
    record_out_help = ("stream experiment records to a JSONL file "
                       "(gzip if it ends in .gz) as they complete "
                       "instead of holding them in memory")

    golden_cmd = sub.add_parser("golden", parents=[cache],
                                help="fault-free runs and safety margins")
    golden_cmd.add_argument("--workers", type=int, default=None,
                            help="processes for golden-run collection")

    random_cmd = sub.add_parser("random", parents=[cache, campaign],
                                help="random output corruption")
    random_cmd.add_argument("-n", type=int, default=100,
                            help="number of experiments")
    random_cmd.add_argument("--seed", type=int, default=0)
    random_cmd.add_argument("--workers", type=int, default=None,
                            help=workers_help)
    random_cmd.add_argument("--save", help="write records to a JSON file")
    random_cmd.add_argument("--record-out", default=None,
                            help=record_out_help)
    random_cmd.add_argument("--interface-share", type=float, default=0.0,
                            metavar="FRACTION",
                            help="probability each experiment draws an "
                                 "interface fault (message drop/freeze/"
                                 "delay/jitter/hang at a module boundary) "
                                 "instead of a value corruption "
                                 "(default 0: value faults only)")
    random_cmd.add_argument("--interface-kinds", default=None,
                            metavar="KIND[,KIND...]",
                            help="restrict interface draws to these "
                                 "kinds (default: all five)")
    random_cmd.add_argument("--interface-channels", default=None,
                            metavar="CH[,CH...]",
                            help="restrict interface draws to these "
                                 "channels (default: all)")

    arch_cmd = sub.add_parser("arch", parents=[cache, campaign],
                              help="random architectural faults")
    arch_cmd.add_argument("-n", type=int, default=200,
                          help="number of register flips")
    arch_cmd.add_argument("--seed", type=int, default=0)
    arch_cmd.add_argument("--workers", type=int, default=None,
                          help=workers_help)
    arch_cmd.add_argument("--record-out", default=None,
                          help=record_out_help)
    arch_cmd.add_argument("--interface-hangs", action="store_true",
                          help="drive HANG outcomes into the simulator "
                               "as interface hang faults on the stuck "
                               "kernel's channel instead of counting "
                               "them as recoverable only")

    bayes_cmd = sub.add_parser("bayesian", parents=[cache, campaign],
                               help="mine + validate F_crit")
    bayes_cmd.add_argument("--top-k", type=int, default=None,
                           help="validate only the k most critical")
    bayes_cmd.add_argument("--threshold", type=float, default=0.0,
                           help="predicted-delta mining threshold (m)")
    bayes_cmd.add_argument("--scalar-miner", action="store_true",
                           help="use the scalar reference miner instead "
                                "of the batched engine")
    bayes_cmd.add_argument("--batch-training", action="store_true",
                           help="fit the BN over the whole golden "
                                "dataset at once (the reference oracle) "
                                "instead of streaming per-trace "
                                "sufficient statistics")
    bayes_cmd.add_argument("--workers", type=int, default=None,
                           help=workers_help)
    bayes_cmd.add_argument("--save", help="write candidates to a JSON file")
    bayes_cmd.add_argument("--record-out", default=None,
                           help=record_out_help)
    bayes_cmd.add_argument("--interface-probe", default=None,
                           metavar="KIND[,KIND...]",
                           help="validate each mined candidate alongside "
                                "these interface-fault kinds on the "
                                "candidate variable's channel at the "
                                "same tick")

    grid_cmd = sub.add_parser("exhaustive", parents=[cache, campaign],
                              help="min/max grid sample")
    grid_cmd.add_argument("--stride", type=int, default=25,
                          help="planner ticks between injections")
    grid_cmd.add_argument("--max", type=int, default=None,
                          help="cap on experiments")
    grid_cmd.add_argument("--workers", type=int, default=None,
                          help=workers_help)
    grid_cmd.add_argument("--save", help="write records to a JSON file")
    grid_cmd.add_argument("--record-out", default=None,
                          help=record_out_help)
    grid_cmd.add_argument("--interface-grid", action="store_true",
                          help="append the interface-fault grid (every "
                               "kind x channel x strided tick) to each "
                               "scenario's value grid")

    inject_cmd = sub.add_parser("inject", parents=[cache],
                                help="one specific fault")
    inject_cmd.add_argument("scenario")
    inject_cmd.add_argument("variable",
                            help="ADS variable to corrupt (with --kind: "
                                 "the channel to fault instead)")
    inject_cmd.add_argument("value", type=float,
                            help="corruption value (with --kind: the "
                                 "fault parameter — delay depth or "
                                 "jitter window; 0 uses the default)")
    inject_cmd.add_argument("tick", type=int)
    inject_cmd.add_argument("--duration", type=int, default=4,
                            help="control ticks the corruption persists")
    inject_cmd.add_argument("--kind", default="value",
                            help="fault kind: value (default) or an "
                                 "interface kind (drop, freeze, delay, "
                                 "jitter, hang)")
    inject_cmd.add_argument("--channel", default=None,
                            help="channel for interface kinds "
                                 "(default: the variable positional)")

    scenes_cmd = sub.add_parser("scenes", help="scene delta distribution")
    scenes_cmd.add_argument("-n", type=int, default=7200)
    scenes_cmd.add_argument("--seed", type=int, default=42)

    serve_cmd = sub.add_parser(
        "serve", help="always-on campaign service (HTTP/JSON)")
    serve_cmd.add_argument("--cache-dir", required=True,
                           help="spool root: job journal, completion "
                                "journals, golden caches, record streams "
                                "(the durable state a restarted server "
                                "recovers from)")
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=8732,
                           help="TCP port (0 picks a free one and prints "
                                "it)")
    serve_cmd.add_argument("--max-running", type=int, default=1,
                           help="concurrent campaign runner subprocesses "
                                "(default 1)")
    serve_cmd.add_argument("--max-queue-depth", type=int, default=64,
                           help="global queued-job cap; submissions past "
                                "it get 429 + Retry-After")
    serve_cmd.add_argument("--max-tenant-depth", type=int, default=16,
                           help="per-tenant queued-job cap")
    serve_cmd.add_argument("--min-disk-free-mb", type=int, default=256,
                           help="disk headroom floor under --cache-dir; "
                                "below it the service degrades (running "
                                "jobs finish, new ones get 429, /readyz "
                                "reports 503)")
    serve_cmd.add_argument("--stall-timeout", type=float, default=120.0,
                           metavar="SECONDS",
                           help="seconds without runner progress before "
                                "the watchdog kills and requeues a job")
    serve_cmd.add_argument("--job-max-attempts", type=int, default=3,
                           help="tries per job (crashes and stalls "
                                "included) before it fails")
    serve_cmd.add_argument("--workers", type=int, default=None,
                           help="default per-job validation workers for "
                                "specs that leave workers unset")

    merge_cmd = sub.add_parser(
        "merge", help="fold sharded record streams into one summary")
    merge_cmd.add_argument("shards", nargs="+",
                           help="per-shard --record-out files "
                                "(.jsonl or .jsonl.gz) or shell-glob "
                                "patterns (e.g. 'records-*.jsonl.gz'), "
                                "in shard order")
    merge_cmd.add_argument("--out", default=None,
                           help="also write the merged record stream "
                                "(gzip if it ends in .gz)")
    return parser


def _print_golden(campaign: Campaign) -> None:
    rows = [[name, run.hazard.value, run.min_delta_long, run.min_delta_lat]
            for name, run in campaign.golden_runs().items()]
    print(ascii_table(["scenario", "hazard", "min delta_long",
                       "min delta_lat"], rows))


def _print_summary(summary, label: str) -> None:
    failed = (f", {summary.failures} failed"
              if getattr(summary, "failures", 0) else "")
    print(f"{label}: {summary.hazards}/{summary.total} hazards "
          f"({summary.hazard_rate:.1%}){failed} "
          f"in {summary.wall_seconds:.1f}s")
    if getattr(summary, "degraded", 0):
        print(f"  degradation engaged in {summary.degraded} experiments, "
              f"masked {summary.masked}")
    rows = [[v, n, h, f"{rate:.1%}"]
            for v, n, h, rate in hazard_table(summary)]
    if rows:
        print(ascii_table(["variable", "experiments", "hazards", "rate"],
                          rows))
    timings = getattr(summary, "extra_info", {}).get("stage_timings")
    if timings:
        total = sum(cell["seconds"] for cell in timings.values()) or 1.0
        stage_rows = [[stage, f"{cell['seconds']:.3f}",
                       f"{cell['seconds'] / total:.1%}", cell["calls"]]
                      for stage, cell in timings.items()]
        print(ascii_table(["stage", "seconds", "share", "lane-calls"],
                          stage_rows))


def _split_list(value: str | None) -> tuple[str, ...] | None:
    """A comma-separated CLI list as a tuple (None passes through)."""
    if value is None:
        return None
    return tuple(token.strip() for token in value.split(",")
                 if token.strip())


def _open_sink(args) -> "JsonlRecordSink | None":
    """The streaming record sink requested by ``--record-out`` (or None).

    Sinks are tagged with the campaign style so ``repro merge`` can
    refuse to fold shards of different campaigns into one summary.
    """
    record_out = getattr(args, "record_out", None)
    if record_out is None:
        return None
    if getattr(args, "save", None):
        raise SystemExit("--save holds records in memory and --record-out "
                         "streams them; pick one")
    return JsonlRecordSink(record_out, style=args.command)


def _shard_order(path: str):
    """Sort key keeping ``records-10`` after ``records-9``.

    Digit runs compare numerically, so glob expansion preserves shard
    index order past ten shards — the merge contract is "in shard
    order", and record order of a merged ``--out`` stream depends on
    it.
    """
    import re
    return [int(token) if token.isdigit() else token
            for token in re.split(r"(\d+)", path)]


def _expand_shards(patterns: list[str]) -> list[str]:
    """Shard arguments with shell-glob patterns expanded (shard order).

    A pattern that matches nothing — or a literal shard path that does
    not exist — is a clean one-line error naming the argument: silently
    merging fewer shards than the user pointed at would fabricate a
    smaller campaign, and a missing literal path deserves better than a
    stray errno out of the stream parser.
    """
    import glob as globbing
    import os
    paths: list[str] = []
    for pattern in patterns:
        if globbing.has_magic(pattern):
            matches = sorted(globbing.glob(pattern), key=_shard_order)
            if not matches:
                raise SystemExit(
                    f"error: shard pattern {pattern!r} matches no files")
            paths.extend(matches)
        else:
            if not os.path.exists(pattern):
                raise SystemExit(
                    f"error: shard file {pattern!r} does not exist")
            paths.append(pattern)
    return paths


def _close_sink(sink: "JsonlRecordSink | None") -> None:
    if sink is not None:
        sink.close()
        print(f"{sink.count} records streamed to {sink.path}")


def _progress_printer():
    """A PipelineProgress consumer that logs stage counts to stderr.

    Validated-stage events arrive once per record, so they are thinned
    to roughly 20 lines per campaign (the final count always prints).
    """
    def log(event):
        total = event.total
        if event.stage == "validated" and total:
            step = max(1, total // 20)
            if event.done % step and event.done != total:
                return
        shown = "?" if total is None else total
        scenario = f" ({event.scenario})" if event.scenario else ""
        print(f"[{event.stage}] {event.done}/{shown}{scenario}",
              file=sys.stderr)
    return log


def _campaign_kwargs(args) -> dict:
    """Pipeline/progress keywords shared by the campaign commands."""
    kwargs = {"pipeline": not getattr(args, "no_pipeline", False)}
    if getattr(args, "progress", False):
        kwargs["on_progress"] = _progress_printer()
    return kwargs


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "serve":
        from .service import ServiceConfig
        from .service.server import serve as run_service
        return run_service(ServiceConfig(
            cache_dir=args.cache_dir,
            host=args.host,
            port=args.port,
            max_running=args.max_running,
            max_queue_depth=args.max_queue_depth,
            max_tenant_depth=args.max_tenant_depth,
            min_disk_free_bytes=args.min_disk_free_mb * 1024 * 1024,
            stall_timeout=args.stall_timeout,
            max_attempts=args.job_max_attempts,
            default_workers=args.workers))
    if getattr(args, "shard_count", 1) > 1 \
            and getattr(args, "no_pipeline", False):
        raise SystemExit("--shard-index/--shard-count need the streaming "
                         "driver; drop --no-pipeline")
    if getattr(args, "lease", False):
        if getattr(args, "cache_dir", None) is None:
            raise SystemExit("--lease needs --cache-dir (the directory "
                             "the cooperating hosts share)")
        if getattr(args, "no_pipeline", False):
            raise SystemExit("--lease needs the streaming driver; drop "
                             "--no-pipeline")
        if getattr(args, "shard_count", 1) > 1:
            raise SystemExit("--lease replaces static --shard-count "
                             "partitioning; pick one multi-host mode")
    if getattr(args, "resume", False):
        if getattr(args, "cache_dir", None) is None:
            raise SystemExit("--resume needs --cache-dir (the completion "
                             "journal lives there)")
        if getattr(args, "no_journal", False):
            raise SystemExit("--resume replays the journal that "
                             "--no-journal disables; pick one")
    try:
        resilience = ResilienceConfig(
            job_timeout=getattr(args, "job_timeout", None),
            max_attempts=getattr(args, "max_attempts", 3),
            strict=getattr(args, "strict", False),
            journal=not getattr(args, "no_journal", False),
            resume=getattr(args, "resume", False),
            lease_mode=getattr(args, "lease", False),
            lease_ttl=getattr(args, "lease_ttl", 30.0))
        ads = ADSConfig()
        if getattr(args, "no_degradation", False):
            ads = dataclasses.replace(
                ads, degradation=DegradationConfig(enabled=False))
        config = CampaignConfig(
            ads=ads,
            use_checkpoints=not getattr(args, "no_checkpoints", False),
            shard_index=getattr(args, "shard_index", 0),
            shard_count=getattr(args, "shard_count", 1),
            resilience=resilience,
            batch_sim=getattr(args, "batch_sim", 0),
            profile_stages=getattr(args, "profile_stages", False))
    except ValueError as error:     # e.g. shard_index out of range
        raise SystemExit(f"error: {error}")
    campaign = Campaign(config=config,
                        cache_dir=getattr(args, "cache_dir", None),
                        trace_store=getattr(args, "trace_store", False)
                        or None)

    if args.command == "golden":
        campaign.golden_runs(workers=args.workers)
        _print_golden(campaign)
    elif args.command == "random":
        sink = _open_sink(args)
        try:
            summary = campaign.random_campaign(
                args.n, seed=args.seed, workers=args.workers,
                record_sink=sink,
                interface_share=args.interface_share,
                interface_kinds=_split_list(args.interface_kinds),
                interface_channels=_split_list(args.interface_channels),
                **_campaign_kwargs(args))
        except ValueError as error:    # bad --interface-kinds/-channels
            raise SystemExit(f"error: {error}")
        _print_summary(summary, "random campaign")
        _close_sink(sink)
        if args.save:
            save_summary(summary, args.save)
            print(f"records written to {args.save}")
    elif args.command == "arch":
        sink = _open_sink(args)
        summary, outcomes = campaign.architectural_campaign(
            args.n, seed=args.seed, workers=args.workers, record_sink=sink,
            interface_hangs=args.interface_hangs,
            **_campaign_kwargs(args))
        print(ascii_table(["outcome", "count"],
                          sorted(outcomes.items())))
        _print_summary(summary, "driven SDC experiments")
        _close_sink(sink)
    elif args.command == "bayesian":
        sink = _open_sink(args)
        try:
            result = campaign.bayesian_campaign(
                top_k=args.top_k, threshold=args.threshold,
                use_batched=not args.scalar_miner, workers=args.workers,
                streaming_training=not args.batch_training,
                interface_probe=_split_list(args.interface_probe) or (),
                record_sink=sink, **_campaign_kwargs(args))
        except ValueError as error:    # bad --interface-probe kind
            raise SystemExit(f"error: {error}")
        print(f"scored {result.mining.n_scored} candidate faults over "
              f"{result.mining.n_scenes} scenes in "
              f"{result.mining.wall_seconds:.1f}s")
        _print_summary(result.summary, "validated mined faults")
        print(f"precision: {result.precision:.1%}; total cost "
              f"{result.total_wall_seconds:.1f}s")
        _close_sink(sink)
        if args.save:
            save_candidates(result.candidates, args.save)
            print(f"candidates written to {args.save}")
    elif args.command == "exhaustive":
        sink = _open_sink(args)
        summary = campaign.exhaustive_campaign(
            tick_stride=args.stride, max_experiments=args.max,
            workers=args.workers, record_sink=sink,
            interface_grid=args.interface_grid,
            **_campaign_kwargs(args))
        _print_summary(summary, "grid sample")
        if config.shard_count == 1:
            # grid_size needs every golden trace; a shard only has its
            # own, so the global count is reported by unsharded runs.
            print(f"full grid would be {campaign.grid_size()} experiments")
        _close_sink(sink)
        if args.save:
            save_summary(summary, args.save)
            print(f"records written to {args.save}")
    elif args.command == "merge":
        from .core.persistence import merge_record_shards
        shards = _expand_shards(args.shards)
        try:
            merged = merge_record_shards(shards, out_path=args.out)
        except (ValueError, OSError) as error:
            raise SystemExit(f"error: {error}")
        print(f"merged {len(shards)} shard stream(s)")
        _print_summary(merged, "merged campaign")
        if args.out:
            print(f"merged records written to {args.out}")
    elif args.command == "inject":
        if args.kind != "value":
            channel = args.channel or args.variable
            try:
                fault = interface_fault(
                    args.kind, channel, args.tick,
                    duration_ticks=args.duration,
                    param=int(args.value) if args.value else None)
            except ValueError as error:
                raise SystemExit(f"error: {error}")
        elif args.channel is not None:
            raise SystemExit("error: --channel needs an interface --kind")
        else:
            fault = FaultSpec(args.variable, args.value, args.tick,
                              args.duration)
        try:
            record = campaign.run_fault(args.scenario, fault)
        except KeyError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(ascii_table(["field", "value"], [
            ["outcome", record.hazard.value],
            ["landed", record.landed],
            ["degraded", record.degraded],
            ["min delta_long (m)", record.min_delta_long],
            ["min delta_lat (m)", record.min_delta_lat]]))
    elif args.command == "scenes":
        generator = SceneGenerator(seed=args.seed)
        deltas = [world_safety_potential(
            scene.to_world(road=generator.road)).longitudinal
            for scene in generator.generate(args.n)]
        import numpy as np
        print(ascii_table(["delta_long bin (m)", "scenes"],
                          delta_distribution(np.array(deltas))))
    return 0


if __name__ == "__main__":   # pragma: no cover - exercised via __main__
    raise SystemExit(main())
