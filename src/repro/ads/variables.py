"""Registry of injectable ADS variables (the paper's fault model b targets).

Each entry names one inter-module variable (a field of ``I_t``, ``M_t``,
``S_t``/``W_t``, ``U_A,t`` or ``A_t``), the pipeline stage whose payload
carries it, the physical min/max corruption values used by the min/max
fault model, and a setter that applies a corrupted value to the payload.

Setters return ``True`` when the corruption actually landed; injecting
into, say, the lead track of an empty world model is inherently masked
and returns ``False`` (the paper counts those as masked faults too).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .messages import (ActuationCommand, Detection, PlannerOutput,
                       SensorBundle, WorldModel)

#: Pipeline stage names, in dataflow order.
STAGES = ("sensing", "perception", "world_model", "planning", "actuation")


@dataclass(frozen=True)
class InjectableVariable:
    """One fault-injectable inter-module variable."""

    name: str
    stage: str            # one of STAGES
    group: str            # paper grouping: I_t, M_t, W_t, U_A, A_t
    min_value: float
    max_value: float
    setter: Callable[[object, float], bool]

    def corruption_values(self) -> tuple[float, float]:
        """The (min, max) corruption pair of fault model (b)."""
        return (self.min_value, self.max_value)


# -- setters ---------------------------------------------------------------

def _set_gps_x(bundle: SensorBundle, value: float) -> bool:
    bundle.gps.x = value
    return True


def _set_gps_y(bundle: SensorBundle, value: float) -> bool:
    bundle.gps.y = value
    return True


def _set_imu_speed(bundle: SensorBundle, value: float) -> bool:
    bundle.imu.v = value
    return True


def _set_lane_offset(bundle: SensorBundle, value: float) -> bool:
    bundle.lane_offset = value
    return True


def _nearest_detection(detections: list[Detection]) -> Detection | None:
    ahead = [d for d in detections if d.x >= 0.0]
    if not ahead:
        return None
    return min(ahead, key=lambda d: d.x)


def _set_detection_x(detections: list[Detection], value: float) -> bool:
    detection = _nearest_detection(detections)
    if detection is None:
        return False
    detection.x = value
    return True


def _set_detection_y(detections: list[Detection], value: float) -> bool:
    detection = _nearest_detection(detections)
    if detection is None:
        return False
    detection.y = value
    return True


def _set_tracked_gap(model: WorldModel, value: float) -> bool:
    lead = model.lead_track()
    if lead is None:
        return False
    lead.x = model.ego.x + value
    model.invalidate_lead_cache()   # moving the lead can change selection
    return True


def _set_tracked_speed(model: WorldModel, value: float) -> bool:
    lead = model.lead_track()
    if lead is None:
        return False
    lead.vx = value
    return True


def _set_model_lane_offset(model: WorldModel, value: float) -> bool:
    model.lane_offset = value
    return True


def _set_ego_speed_estimate(model: WorldModel, value: float) -> bool:
    model.ego.v = value
    return True


def _set_planned_speed(plan: PlannerOutput, value: float) -> bool:
    plan.target_speed = value
    return True


def _set_raw_throttle(plan: PlannerOutput, value: float) -> bool:
    plan.throttle = value
    return True


def _set_raw_brake(plan: PlannerOutput, value: float) -> bool:
    plan.brake = value
    return True


def _set_raw_steering(plan: PlannerOutput, value: float) -> bool:
    plan.steering = value
    return True


def _set_throttle(command: ActuationCommand, value: float) -> bool:
    command.throttle = value
    return True


def _set_brake(command: ActuationCommand, value: float) -> bool:
    command.brake = value
    return True


def _set_steering(command: ActuationCommand, value: float) -> bool:
    command.steering = value
    return True


#: The full registry: 17 variables across the five instrumented interfaces.
REGISTRY: tuple[InjectableVariable, ...] = (
    InjectableVariable("gps_x", "sensing", "I_t", 0.0, 10_000.0, _set_gps_x),
    InjectableVariable("gps_y", "sensing", "I_t", -50.0, 50.0, _set_gps_y),
    InjectableVariable("imu_speed", "sensing", "M_t", 0.0, 45.0,
                       _set_imu_speed),
    InjectableVariable("sensed_lane_offset", "sensing", "I_t", -2.0, 2.0,
                       _set_lane_offset),
    InjectableVariable("detection_x", "perception", "I_t", 0.0, 250.0,
                       _set_detection_x),
    InjectableVariable("detection_y", "perception", "I_t", -50.0, 50.0,
                       _set_detection_y),
    InjectableVariable("tracked_gap", "world_model", "W_t", 0.0, 250.0,
                       _set_tracked_gap),
    InjectableVariable("tracked_speed", "world_model", "W_t", 0.0, 45.0,
                       _set_tracked_speed),
    InjectableVariable("model_lane_offset", "world_model", "W_t", -2.0, 2.0,
                       _set_model_lane_offset),
    InjectableVariable("ego_speed_estimate", "world_model", "M_t", 0.0, 45.0,
                       _set_ego_speed_estimate),
    InjectableVariable("planned_speed", "planning", "U_A", 0.0, 45.0,
                       _set_planned_speed),
    InjectableVariable("raw_throttle", "planning", "U_A", 0.0, 1.0,
                       _set_raw_throttle),
    InjectableVariable("raw_brake", "planning", "U_A", 0.0, 1.0,
                       _set_raw_brake),
    InjectableVariable("raw_steering", "planning", "U_A", -0.55, 0.55,
                       _set_raw_steering),
    InjectableVariable("throttle", "actuation", "A_t", 0.0, 1.0,
                       _set_throttle),
    InjectableVariable("brake", "actuation", "A_t", 0.0, 1.0, _set_brake),
    InjectableVariable("steering", "actuation", "A_t", -0.55, 0.55,
                       _set_steering),
)


def variable_by_name(name: str) -> InjectableVariable:
    """Look up a registry entry; raises ``KeyError`` for unknown names."""
    for variable in REGISTRY:
        if variable.name == name:
            return variable
    raise KeyError(f"unknown injectable variable {name!r}")


def variables_in_stage(stage: str) -> list[InjectableVariable]:
    """Registry entries whose payload lives in ``stage``."""
    if stage not in STAGES:
        raise KeyError(f"unknown stage {stage!r}")
    return [v for v in REGISTRY if v.stage == stage]
