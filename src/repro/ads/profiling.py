"""Per-stage wall-clock counters for the ADS control cycle.

One process-global :class:`StageTimer` accumulates monotonic
nanoseconds and per-lane call counts for the five pipeline stages, in
both execution engines: the scalar :class:`~repro.ads.runtime.ADSPipeline`
brackets each stage of its tick, and the batched
:class:`~repro.ads.batch.BatchADSState` brackets each fused stage kernel
(charging the elapsed window once and the call count per lane, so
``calls`` stays comparable across engines: one count is one lane-stage
execution).

The timer is explicitly enabled (``--profile-stages`` /
``CampaignConfig.profile_stages``); disabled — the default — the hot
paths pay one attribute check per stage boundary and nothing else.
Being process-global, the counters cover work executed in the calling
process: serial campaigns are captured exactly, while pool/pipeline
workers accumulate into their own (uncollected) timers — profile with
``workers=1`` to attribute everything.
"""

from __future__ import annotations

import time

#: Stage keys in control-cycle order (:data:`repro.ads.channels.CHANNELS`).
STAGES = ("sensing", "perception", "world_model", "planning", "actuation")


class StageTimer:
    """Accumulates wall nanoseconds and lane-call counts per stage."""

    __slots__ = ("enabled", "nanos", "calls")

    def __init__(self):
        self.enabled = False
        self.reset()

    def reset(self) -> None:
        """Zero every counter (does not change ``enabled``)."""
        self.nanos = dict.fromkeys(STAGES, 0)
        self.calls = dict.fromkeys(STAGES, 0)

    @staticmethod
    def start() -> int:
        """Monotonic reference for a matching :meth:`stop`."""
        return time.perf_counter_ns()

    def stop(self, stage: str, started: int, lanes: int = 1) -> None:
        """Charge the window since ``started`` (``lanes`` executions)."""
        self.nanos[stage] += time.perf_counter_ns() - started
        self.calls[stage] += lanes

    def report(self) -> dict:
        """``{stage: {"seconds": ..., "calls": ...}}`` for visited
        stages, in control-cycle order."""
        return {stage: {"seconds": self.nanos[stage] / 1e9,
                        "calls": self.calls[stage]}
                for stage in STAGES if self.calls[stage]}


#: The process-global timer both execution engines report into.
STAGE_TIMER = StageTimer()
