"""Shared closed-form numeric kernels for the ADS stack.

One implementation, two callers: the scalar modules
(:mod:`repro.ads.tracking`, :mod:`repro.ads.localization`,
:mod:`repro.ads.planning`, :mod:`repro.ads.control`) call these with
Python floats, and the batched pipeline (:mod:`repro.ads.batch`) calls
the polymorphic ones with ``(k,)`` float64 arrays.  Because both paths
execute the *same* expressions in the *same* order, the batched lanes
are bit-for-bit the scalar oracle by construction — the repo-wide
equivalence contract.

Three rules keep that true:

* **No BLAS.**  ``np.linalg.inv`` and ``@`` accumulate in an order that
  varies with backend and shape, so the 3x3 innovation solve and the
  4x4 covariance products are written out element by element
  (adjugate/determinant inverse, explicit row/column updates).
* **No ``**`` with float exponents.**  Python's ``float.__pow__``,
  numpy's scalar power, and numpy's array power disagree in the last
  ulp; squares and fourth powers are multiplication chains.
* **Branches are ``where`` selects.**  Callers pass ``where``/``clip``
  (:func:`py_where` + ``clip_scalar`` for floats, ``np.where`` +
  ``np.clip`` for arrays); both operands of every select are safe to
  evaluate (guarded denominators), and the select mappings mirror the
  scalar ``max``/``min``/``if`` forms exactly, including signed zeros
  (``max(a, 0.0)`` keeps ``a`` on ties, hence ``where(0.0 > a, 0.0,
  a)``; ``max(0.0, b)`` keeps ``0.0`` on ties, hence ``where(b > 0.0,
  b, 0.0)``).

Transcendentals go through numpy (``np.cos`` on a Python float and on
an array agree bitwise element for element; ``math.cos`` does not).
"""

from __future__ import annotations

import numpy as np

_INF = float("inf")


def py_where(condition, if_true, if_false):
    """Scalar twin of ``np.where`` (both operands already evaluated)."""
    return if_true if condition else if_false


# -- constant-velocity Kalman filter (object tracks, state [x,y,vx,vy]) ----
#
# Plain-float closed form shared by the scalar tracker and the batched
# per-lane trackers (track lists are ragged, so tracks never vectorize
# across lanes; the win here is dropping BLAS for ~order-of-magnitude
# less per-track cost).  ``mean`` is a length-4 list, ``cov`` a
# row-major length-16 list; both are mutated in place.

def kf_predict4(mean: list, cov: list, dt: float, q: float) -> None:
    """Constant-velocity predict: F = I + dt*(x<-vx, y<-vy), plus
    white-acceleration process noise q * g g^T with g = [a,a,dt,dt]
    structure (a = dt^2/2), exactly the scalar tracker's model."""
    mean[0] = mean[0] + dt * mean[2]
    mean[1] = mean[1] + dt * mean[3]
    # fP: row0 += dt*row2, row1 += dt*row3.
    t = cov[:]
    for j in range(4):
        t[j] = cov[j] + dt * cov[8 + j]
        t[4 + j] = cov[4 + j] + dt * cov[12 + j]
    # (fP)F^T: col0 += dt*col2, col1 += dt*col3.
    for i in range(0, 16, 4):
        cov[i] = t[i] + dt * t[i + 2]
        cov[i + 1] = t[i + 1] + dt * t[i + 3]
        cov[i + 2] = t[i + 2]
        cov[i + 3] = t[i + 3]
    a = (dt * dt) / 2.0
    qaa = q * (a * a)
    qad = q * (a * dt)
    qdd = q * (dt * dt)
    cov[0] = cov[0] + qaa
    cov[2] = cov[2] + qad
    cov[5] = cov[5] + qaa
    cov[7] = cov[7] + qad
    cov[8] = cov[8] + qad
    cov[10] = cov[10] + qdd
    cov[13] = cov[13] + qad
    cov[15] = cov[15] + qdd


def _inv3(s00, s01, s02, s10, s11, s12, s20, s21, s22):
    """Adjugate/determinant inverse of a 3x3 (returns 9 elements).

    Deterministic elementwise arithmetic — the replacement for
    ``np.linalg.inv`` on the innovation covariance.
    """
    c00 = s11 * s22 - s12 * s21
    c01 = s10 * s22 - s12 * s20
    c02 = s10 * s21 - s11 * s20
    det = s00 * c00 - s01 * c01 + s02 * c02
    idet = 1.0 / det
    return (c00 * idet,
            -(s01 * s22 - s02 * s21) * idet,
            (s01 * s12 - s02 * s11) * idet,
            -c01 * idet,
            (s00 * s22 - s02 * s20) * idet,
            -(s00 * s12 - s02 * s10) * idet,
            c02 * idet,
            -(s00 * s21 - s01 * s20) * idet,
            (s00 * s11 - s01 * s10) * idet)


def _update_h012(mean: list, cov: list, z0, z1, z2, r0, r1, r2) -> None:
    """Measurement update with H = rows 0,1,2 of I (shared by the track
    filter and the EKF correct): S = P[:3,:3] + diag(r), K = P[:,:3]
    S^-1, mean += K (z - H mean), P = (I - K H) P."""
    i00, i01, i02, i10, i11, i12, i20, i21, i22 = _inv3(
        cov[0] + r0, cov[1], cov[2],
        cov[4], cov[5] + r1, cov[6],
        cov[8], cov[9], cov[10] + r2)
    v0 = z0 - mean[0]
    v1 = z1 - mean[1]
    v2 = z2 - mean[2]
    new_cov = cov[:]
    for i in range(4):
        p0, p1, p2 = cov[i * 4], cov[i * 4 + 1], cov[i * 4 + 2]
        k0 = p0 * i00 + p1 * i10 + p2 * i20
        k1 = p0 * i01 + p1 * i11 + p2 * i21
        k2 = p0 * i02 + p1 * i12 + p2 * i22
        mean[i] = mean[i] + (k0 * v0 + k1 * v1 + k2 * v2)
        for j in range(4):
            new_cov[i * 4 + j] = cov[i * 4 + j] - (
                k0 * cov[j] + k1 * cov[4 + j] + k2 * cov[8 + j])
    cov[:] = new_cov


def kf_update4(mean: list, cov: list, zx, zy, zv,
               r_pos: float, r_speed: float) -> None:
    """Track measurement update: z = [x, y, vx], R = diag of squared
    noises (squares as multiplication chains, not ``**``)."""
    _update_h012(mean, cov, zx, zy, zv,
                 r_pos * r_pos, r_pos * r_pos, r_speed * r_speed)


# -- ego EKF (localization, state [x, y, v, theta]) ------------------------
#
# Polymorphic over floats and (k,) arrays: the scalar localizer passes
# component floats, the batched localizer passes component arrays.
# ``mean`` and ``cov`` are length-4 / length-16 lists of components,
# mutated in place.

def ekf_predict(mean: list, cov: list, yaw_rate, dt: float,
                q_pos: float, q_speed: float, q_heading: float) -> None:
    """Bicycle-model predict with the heading-linearized Jacobian
    F = [[1,0,c*dt,-v*s*dt],[0,1,s*dt,v*c*dt],[0,0,1,0],[0,0,0,1]]."""
    v, theta = mean[2], mean[3]
    c = np.cos(theta)
    s = np.sin(theta)
    mean[0] = mean[0] + v * c * dt
    mean[1] = mean[1] + v * s * dt
    mean[3] = mean[3] + yaw_rate * dt
    a02 = c * dt
    a03 = -v * s * dt
    a12 = s * dt
    a13 = v * c * dt
    # FP: row0 += a02*row2 + a03*row3; row1 += a12*row2 + a13*row3.
    t = cov[:]
    for j in range(4):
        t[j] = cov[j] + (a02 * cov[8 + j] + a03 * cov[12 + j])
        t[4 + j] = cov[4 + j] + (a12 * cov[8 + j] + a13 * cov[12 + j])
    # (FP)F^T: col0 += a02*col2 + a03*col3; col1 += a12*col2 + a13*col3.
    for i in range(0, 16, 4):
        cov[i] = t[i] + (a02 * t[i + 2] + a03 * t[i + 3])
        cov[i + 1] = t[i + 1] + (a12 * t[i + 2] + a13 * t[i + 3])
        cov[i + 2] = t[i + 2]
        cov[i + 3] = t[i + 3]
    cov[0] = cov[0] + q_pos * dt
    cov[5] = cov[5] + q_pos * dt
    cov[10] = cov[10] + q_speed * dt
    cov[15] = cov[15] + q_heading * dt


def ekf_correct(mean: list, cov: list, zx, zy, zv,
                gps_noise: float, imu_speed_noise: float, where) -> None:
    """GPS + IMU-speed correct (H = rows 0,1,2), then the non-negative
    speed clamp: scalar ``if v < 0: v = 0`` == ``where(v < 0, 0, v)``."""
    _update_h012(mean, cov, zx, zy, zv,
                 gps_noise * gps_noise, gps_noise * gps_noise,
                 imu_speed_noise * imu_speed_noise)
    mean[2] = where(mean[2] < 0.0, 0.0, mean[2])


# -- IDM planner -----------------------------------------------------------

def plan_step(ego_x, ego_v, lead_x, lead_vx, has_lead,
              lane_offset, lane_heading, no_lead_gap, cfg, where, clip):
    """The full planning step of :class:`repro.ads.planning.Planner`.

    Only valid for ``cfg.idm_exponent == 4.0`` (the free-flow term is a
    multiplication chain); the planner falls back to its own ``**`` for
    other exponents and such configs never fuse.  ``lead_x``/``lead_vx``
    must be finite where ``has_lead`` is false (selected out).

    Returns ``(target_speed, throttle, brake, steering, gap, closing)``.
    """
    v = where(0.0 > ego_v, 0.0, ego_v)                    # max(ego.v, 0.0)
    raw_gap = (lead_x - ego_x) - cfg.body_length
    bounded = where(0.01 > raw_gap, 0.01, raw_gap)        # max(raw, 0.01)
    gap = where(has_lead, bounded, no_lead_gap)
    closing = where(has_lead, v - lead_vx, 0.0)

    v0 = max(cfg.cruise_speed, 0.1)
    desired = (cfg.min_gap + v * cfg.time_headway
               + v * closing
               / (2.0 * np.sqrt(cfg.comfort_accel * cfg.comfort_decel)))
    desired = where(cfg.min_gap > desired, cfg.min_gap, desired)
    rv = v / v0
    rv2 = rv * rv
    rg = desired / gap
    accel = cfg.comfort_accel * (1.0 - rv2 * rv2 - rg * rg)

    # Hard brake when the ground-truth-style TTC falls below threshold
    # (prediction.time_to_collision: gap<0 -> 0, closing<=1e-9 -> inf).
    safe_closing = where(closing > 1e-9, closing, 1.0)
    ttc = where(raw_gap < 0.0, 0.0,
                where(closing > 1e-9, raw_gap / safe_closing, _INF))
    accel = where(has_lead & (ttc < cfg.hard_brake_ttc),
                  -cfg.vehicle_max_decel, accel)
    accel = clip(accel, -cfg.vehicle_max_decel, cfg.comfort_accel)

    positive = accel >= 0.0
    throttle = where(positive, accel / cfg.vehicle_max_accel, 0.0)
    brake = where(positive, 0.0, -accel / cfg.vehicle_max_decel)
    steering = clip(-cfg.lateral_gain * lane_offset
                    - cfg.heading_gain * lane_heading,
                    -cfg.max_steering, cfg.max_steering)
    target_speed = clip(v + accel * cfg.speed_horizon, 0.0,
                        cfg.cruise_speed)
    return (target_speed, clip(throttle, 0.0, 1.0), clip(brake, 0.0, 1.0),
            steering, gap, closing)


# -- PID + slew controller -------------------------------------------------

def control_step(plan_target, plan_throttle, plan_brake, plan_steering,
                 measured_speed, dt, integral, last_error, has_last_error,
                 last_throttle, last_brake, last_steering,
                 cfg, where, clip):
    """One :meth:`VehicleController.actuate` cycle (enabled path).

    Returns ``(throttle, brake, steering, new_integral, error)`` where
    the command triple is already ``.clipped()`` — it is both the slew
    memory and the pre-corruption command.  The caller stores ``error``
    as the PID's last error.  ``last_error`` must be finite where
    ``has_last_error`` is false (its derivative is selected out).
    """
    feedforward = (plan_throttle * cfg.vehicle_max_accel
                   - plan_brake * cfg.vehicle_max_decel)
    error = plan_target - measured_speed
    derivative = where(has_last_error, (error - last_error) / dt, 0.0)
    candidate = integral + error * dt
    output = (cfg.speed_kp * error + cfg.speed_ki * candidate
              + 0.0 * derivative)
    low, high = -cfg.vehicle_max_decel, cfg.vehicle_max_accel
    new_integral = where((low < output) & (output < high),
                         candidate, integral)
    accel = feedforward + clip(output, low, high)

    positive = accel >= 0.0
    raw_throttle = where(positive, accel / cfg.vehicle_max_accel, 0.0)
    raw_brake = where(positive, 0.0, -accel / cfg.vehicle_max_decel)
    pedal_delta = cfg.pedal_slew_rate * dt
    steer_delta = cfg.steering_slew_rate * dt
    throttle = last_throttle + clip(raw_throttle - last_throttle,
                                    -pedal_delta, pedal_delta)
    brake = last_brake + clip(raw_brake - last_brake,
                              -pedal_delta, pedal_delta)
    steering = last_steering + clip(plan_steering - last_steering,
                                    -steer_delta, steer_delta)
    return (clip(throttle, 0.0, 1.0), clip(brake, 0.0, 1.0),
            clip(steering, -0.55, 0.55), new_integral, error)
