"""ADS substrate: the complete autonomous-driving software stack."""

from .control import ControllerConfig, PIDController, VehicleController
from .localization import EgoLocalizer, LocalizerConfig
from .messages import (ActuationCommand, Detection, EgoEstimate, GpsFix,
                       ImuSample, PlannerOutput, SensorBundle, TrackedObject,
                       WorldModel)
from .perception import Perception, PerceptionConfig
from .planning import Planner, PlannerConfig
from .prediction import (NO_COLLISION, minimum_predicted_gap,
                         predict_positions, time_to_collision)
from .runtime import ADSConfig, ADSPipeline, ArmedFault, PipelineSnapshot
from .sensors import SensorSuite, SensorSuiteConfig
from .tracking import MultiObjectTracker, TrackerConfig
from .variables import (REGISTRY, STAGES, InjectableVariable,
                        variable_by_name, variables_in_stage)

__all__ = [
    "Detection",
    "GpsFix",
    "ImuSample",
    "SensorBundle",
    "TrackedObject",
    "EgoEstimate",
    "WorldModel",
    "PlannerOutput",
    "ActuationCommand",
    "SensorSuite",
    "SensorSuiteConfig",
    "Perception",
    "PerceptionConfig",
    "MultiObjectTracker",
    "TrackerConfig",
    "EgoLocalizer",
    "LocalizerConfig",
    "Planner",
    "PlannerConfig",
    "PIDController",
    "VehicleController",
    "ControllerConfig",
    "NO_COLLISION",
    "predict_positions",
    "time_to_collision",
    "minimum_predicted_gap",
    "ADSConfig",
    "ADSPipeline",
    "ArmedFault",
    "PipelineSnapshot",
    "REGISTRY",
    "STAGES",
    "InjectableVariable",
    "variable_by_name",
    "variables_in_stage",
]
