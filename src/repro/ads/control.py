"""Actuation control: PID speed tracking plus slew-rate smoothing.

The paper's PID stage turns the planner's raw actuation ``U_A,t`` into
the final command ``A_t`` while "ensuring the AV does not make any sudden
changes".  That smoothing is the third resilience mechanism against
transient faults: a one-frame corrupted raw command is rate-limited
before it reaches the actuators.  The ``enabled`` flag exists for the
resilience ablation (E8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.fastmath import clip_scalar
from .kernels import control_step, py_where
from .messages import ActuationCommand, PlannerOutput


@dataclass
class PIDController:
    """Textbook PID with output clamping and anti-windup."""

    kp: float
    ki: float = 0.0
    kd: float = 0.0
    output_low: float = -1.0
    output_high: float = 1.0
    _integral: float = 0.0
    _last_error: float | None = None

    def reset(self) -> None:
        """Clear integral and derivative memory."""
        self._integral = 0.0
        self._last_error = None

    def step(self, error: float, dt: float) -> float:
        """One control step; returns the clamped output."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        derivative = 0.0
        if self._last_error is not None:
            derivative = (error - self._last_error) / dt
        self._last_error = error
        candidate_integral = self._integral + error * dt
        output = (self.kp * error + self.ki * candidate_integral
                  + self.kd * derivative)
        if self.output_low < output < self.output_high:
            self._integral = candidate_integral  # integrate only unsaturated
        return clip_scalar(output, self.output_low, self.output_high)


@dataclass(frozen=True)
class ControllerSnapshot:
    """PID memory plus the slew limiter's last command."""

    integral: float
    last_error: float | None
    last_command: tuple[float, float, float]   # throttle, brake, steering


@dataclass(frozen=True)
class ControllerConfig:
    """Smoothing and speed-tracking parameters."""

    speed_kp: float = 0.30
    speed_ki: float = 0.04
    pedal_slew_rate: float = 2.5      # pedal fraction per second
    steering_slew_rate: float = 0.5   # rad per second
    vehicle_max_accel: float = 3.5
    vehicle_max_decel: float = 6.0
    enabled: bool = True              # ablation: raw pass-through if False


class VehicleController:
    """Smooths planner output into the final actuation command ``A_t``."""

    def __init__(self, config: ControllerConfig | None = None):
        self.config = config or ControllerConfig()
        self._speed_pid = PIDController(
            kp=self.config.speed_kp, ki=self.config.speed_ki,
            output_low=-self.config.vehicle_max_decel,
            output_high=self.config.vehicle_max_accel)
        self._last = ActuationCommand(0.0, 0.0, 0.0)

    def reset(self) -> None:
        """Forget controller state (new scenario)."""
        self._speed_pid.reset()
        self._last = ActuationCommand(0.0, 0.0, 0.0)

    def snapshot(self) -> ControllerSnapshot:
        """Capture PID and slew-limiter memory."""
        return ControllerSnapshot(
            integral=self._speed_pid._integral,
            last_error=self._speed_pid._last_error,
            last_command=(self._last.throttle, self._last.brake,
                          self._last.steering))

    def restore(self, snapshot: ControllerSnapshot) -> None:
        """Rewind PID and slew-limiter memory."""
        self._speed_pid._integral = snapshot.integral
        self._speed_pid._last_error = snapshot.last_error
        self._last = ActuationCommand(*snapshot.last_command)

    def actuate(self, plan: PlannerOutput, measured_speed: float,
                dt: float) -> ActuationCommand:
        """PID speed tracking + slew-limited pedals and steering."""
        cfg = self.config
        if not cfg.enabled:
            command = ActuationCommand(plan.throttle, plan.brake,
                                       plan.steering).clipped()
            self._remember(command)
            return command

        if dt <= 0:
            raise ValueError("dt must be positive")
        # Feedforward from the planner's pedals, PID feedback on speed
        # error, then slew limiting — all in the shared closed-form
        # kernel (the same expressions the batched controller evaluates
        # over lane arrays).  The returned triple is already clipped.
        pid = self._speed_pid
        has_last = pid._last_error is not None
        throttle, brake, steering, integral, error = control_step(
            plan.target_speed, plan.throttle, plan.brake, plan.steering,
            measured_speed, dt, pid._integral,
            pid._last_error if has_last else 0.0, has_last,
            self._last.throttle, self._last.brake, self._last.steering,
            cfg, py_where, clip_scalar)
        pid._integral = integral
        pid._last_error = error
        command = ActuationCommand(throttle, brake, steering)
        self._remember(command)
        return command

    def _remember(self, command: ActuationCommand) -> None:
        # Keep a private copy: the runtime may corrupt the returned
        # message in place (fault injection), and the controller's slew
        # memory is a separate architectural location.
        self._last = ActuationCommand(command.throttle, command.brake,
                                      command.steering)

    @staticmethod
    def _slew(previous: float, target: float, max_delta: float) -> float:
        return previous + clip_scalar(target - previous,
                                      -max_delta, max_delta)


def safe_stop_command(last_command: ActuationCommand | None,
                      brake_level: float) -> ActuationCommand:
    """The graceful-degradation fallback: when critical inputs go stale
    the pipeline stops trusting the planner/controller stack and asks
    for a controlled stop — zero throttle, a firm configured brake, and
    the last commanded steering held (yanking the wheel to center on a
    curve would trade one hazard for another)."""
    steering = 0.0 if last_command is None else last_command.steering
    return ActuationCommand(throttle=0.0, brake=float(brake_level),
                            steering=steering)
