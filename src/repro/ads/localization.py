"""Ego localization: an extended Kalman filter fusing GPS and IMU.

State is ``[x, y, v, theta]`` with a bicycle-model motion prediction
(nonlinear in theta, hence the EKF Jacobian).  GPS observes position, the
IMU observes speed.  Like the object tracker, the EKF is a masking
mechanism: a single corrupted GPS fix is weighed against the motion
model instead of teleporting the pose estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .messages import EgoEstimate, GpsFix, ImuSample


@dataclass(frozen=True)
class LocalizerSnapshot:
    """Frozen copy of the EKF belief (``None`` before the first fix)."""

    mean: np.ndarray | None
    covariance: np.ndarray | None


@dataclass(frozen=True)
class LocalizerConfig:
    """EKF noise parameters."""

    position_process_noise: float = 0.05
    speed_process_noise: float = 0.3
    heading_process_noise: float = 0.005
    gps_noise: float = 0.9
    imu_speed_noise: float = 0.1
    enabled: bool = True     # ablation switch: believe raw sensors if off


class EgoLocalizer:
    """EKF over ``[x, y, v, theta]``."""

    def __init__(self, config: LocalizerConfig | None = None):
        self.config = config or LocalizerConfig()
        self._mean: np.ndarray | None = None
        self._cov: np.ndarray | None = None

    def reset(self) -> None:
        """Forget the state (new scenario)."""
        self._mean = None
        self._cov = None

    def snapshot(self) -> LocalizerSnapshot:
        """Capture the belief (arrays copied, not aliased)."""
        return LocalizerSnapshot(
            mean=None if self._mean is None else self._mean.copy(),
            covariance=None if self._cov is None else self._cov.copy())

    def restore(self, snapshot: LocalizerSnapshot) -> None:
        """Rewind the belief to a snapshot."""
        self._mean = None if snapshot.mean is None else snapshot.mean.copy()
        self._cov = (None if snapshot.covariance is None
                     else snapshot.covariance.copy())

    def update(self, gps: GpsFix, imu: ImuSample, yaw_rate: float,
               dt: float) -> EgoEstimate:
        """One predict-update cycle; returns the fused estimate."""
        if not self.config.enabled:
            return EgoEstimate(x=gps.x, y=gps.y, v=imu.v, theta=imu.heading)
        if self._mean is None:
            self._mean = np.array([gps.x, gps.y, imu.v, imu.heading])
            self._cov = np.diag([2.0, 2.0, 1.0, 0.05])
            return self._estimate()
        self._predict(yaw_rate, dt)
        self._correct(gps, imu)
        return self._estimate()

    def _predict(self, yaw_rate: float, dt: float) -> None:
        x, y, v, theta = self._mean
        self._mean = np.array([
            x + v * np.cos(theta) * dt,
            y + v * np.sin(theta) * dt,
            v,
            theta + yaw_rate * dt,
        ])
        jacobian = np.array([
            [1, 0, np.cos(theta) * dt, -v * np.sin(theta) * dt],
            [0, 1, np.sin(theta) * dt, v * np.cos(theta) * dt],
            [0, 0, 1, 0],
            [0, 0, 0, 1],
        ])
        cfg = self.config
        process = np.diag([cfg.position_process_noise,
                           cfg.position_process_noise,
                           cfg.speed_process_noise,
                           cfg.heading_process_noise]) * dt
        self._cov = jacobian @ self._cov @ jacobian.T + process

    def _correct(self, gps: GpsFix, imu: ImuSample) -> None:
        h = np.array([[1.0, 0, 0, 0], [0, 1.0, 0, 0], [0, 0, 1.0, 0]])
        z = np.array([gps.x, gps.y, imu.v])
        cfg = self.config
        r = np.diag([cfg.gps_noise ** 2, cfg.gps_noise ** 2,
                     cfg.imu_speed_noise ** 2])
        innovation = z - h @ self._mean
        s = h @ self._cov @ h.T + r
        gain = self._cov @ h.T @ np.linalg.inv(s)
        self._mean = self._mean + gain @ innovation
        self._cov = (np.eye(4) - gain @ h) @ self._cov
        if self._mean[2] < 0.0:
            self._mean[2] = 0.0

    def _estimate(self) -> EgoEstimate:
        x, y, v, theta = (float(value) for value in self._mean)
        return EgoEstimate(x=x, y=y, v=v, theta=theta)
