"""Ego localization: an extended Kalman filter fusing GPS and IMU.

State is ``[x, y, v, theta]`` with a bicycle-model motion prediction
(nonlinear in theta, hence the EKF Jacobian).  GPS observes position, the
IMU observes speed.  Like the object tracker, the EKF is a masking
mechanism: a single corrupted GPS fix is weighed against the motion
model instead of teleporting the pose estimate.

The predict/correct math lives in :mod:`repro.ads.kernels` as explicit
closed-form arithmetic (no BLAS) over the state components — the same
expressions the batched localizer evaluates over ``(k,)`` component
arrays, which is what makes batched lanes bit-for-bit this filter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .kernels import ekf_correct, ekf_predict, py_where
from .messages import EgoEstimate, GpsFix, ImuSample

#: First-fix covariance diag([2, 2, 1, 0.05]) in the flat row-major layout.
_FIRST_FIX_COV = (2.0, 0.0, 0.0, 0.0,
                  0.0, 2.0, 0.0, 0.0,
                  0.0, 0.0, 1.0, 0.0,
                  0.0, 0.0, 0.0, 0.05)


@dataclass(frozen=True)
class LocalizerSnapshot:
    """Frozen copy of the EKF belief (``None`` before the first fix)."""

    mean: np.ndarray | None
    covariance: np.ndarray | None


@dataclass(frozen=True)
class LocalizerConfig:
    """EKF noise parameters."""

    position_process_noise: float = 0.05
    speed_process_noise: float = 0.3
    heading_process_noise: float = 0.005
    gps_noise: float = 0.9
    imu_speed_noise: float = 0.1
    enabled: bool = True     # ablation switch: believe raw sensors if off


class EgoLocalizer:
    """EKF over ``[x, y, v, theta]``.

    The belief is held as a length-4 mean list and a row-major length-16
    covariance list (the kernels' layout); snapshots keep the historical
    ndarray format so pickled checkpoints stay readable.
    """

    def __init__(self, config: LocalizerConfig | None = None):
        self.config = config or LocalizerConfig()
        self._mean: list[float] | None = None
        self._cov: list[float] | None = None

    def reset(self) -> None:
        """Forget the state (new scenario)."""
        self._mean = None
        self._cov = None

    def snapshot(self) -> LocalizerSnapshot:
        """Capture the belief (arrays copied, not aliased)."""
        return LocalizerSnapshot(
            mean=None if self._mean is None else np.array(self._mean),
            covariance=(None if self._cov is None
                        else np.array(self._cov).reshape(4, 4)))

    def restore(self, snapshot: LocalizerSnapshot) -> None:
        """Rewind the belief to a snapshot."""
        self._mean = (None if snapshot.mean is None
                      else [float(value) for value in snapshot.mean])
        self._cov = (None if snapshot.covariance is None
                     else [float(value)
                           for value in np.ravel(snapshot.covariance)])

    def update(self, gps: GpsFix, imu: ImuSample, yaw_rate: float,
               dt: float) -> EgoEstimate:
        """One predict-update cycle; returns the fused estimate."""
        if not self.config.enabled:
            return EgoEstimate(x=gps.x, y=gps.y, v=imu.v, theta=imu.heading)
        if self._mean is None:
            self._mean = [gps.x, gps.y, imu.v, imu.heading]
            self._cov = list(_FIRST_FIX_COV)
            return self._estimate()
        cfg = self.config
        ekf_predict(self._mean, self._cov, yaw_rate, dt,
                    cfg.position_process_noise, cfg.speed_process_noise,
                    cfg.heading_process_noise)
        ekf_correct(self._mean, self._cov, gps.x, gps.y, imu.v,
                    cfg.gps_noise, cfg.imu_speed_noise, py_where)
        return self._estimate()

    def _estimate(self) -> EgoEstimate:
        x, y, v, theta = (float(value) for value in self._mean)
        return EgoEstimate(x=x, y=y, v=v, theta=theta)
