"""Perception: fuse camera and radar detections into one object list.

Camera gives good lateral position, radar good range and range-rate; the
fuser matches detections greedily by distance and averages positions,
preferring radar speed.  This mirrors the perception front end whose
outputs DriveFI instruments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .messages import Detection, SensorBundle


@dataclass(frozen=True)
class PerceptionConfig:
    """Association and gating parameters."""

    association_gate: float = 3.5    # m: max camera/radar match distance
    camera_weight: float = 0.55     # blend toward camera position


class Perception:
    """Camera/radar object-level fusion."""

    def __init__(self, config: PerceptionConfig | None = None):
        self.config = config or PerceptionConfig()

    def snapshot(self) -> None:
        """Perception is stateless; kept for checkpoint API uniformity."""
        return None

    def restore(self, snapshot: None) -> None:
        """Nothing to rewind (stateless)."""

    def process(self, bundle: SensorBundle) -> list[Detection]:
        """Fused detections from one sensor snapshot."""
        camera = list(bundle.camera)
        radar = list(bundle.radar)
        fused: list[Detection] = []
        used_radar: set[int] = set()
        for cam in camera:
            best_index = None
            best_distance = self.config.association_gate
            for index, rad in enumerate(radar):
                if index in used_radar:
                    continue
                distance = float(np.hypot(cam.x - rad.x, cam.y - rad.y))
                if distance < best_distance:
                    best_distance = distance
                    best_index = index
            if best_index is None:
                fused.append(Detection(cam.x, cam.y, cam.v, sensor="camera"))
            else:
                rad = radar[best_index]
                used_radar.add(best_index)
                w = self.config.camera_weight
                fused.append(Detection(
                    x=w * cam.x + (1 - w) * rad.x,
                    y=w * cam.y + (1 - w) * rad.y,
                    v=rad.v,
                    sensor="fused"))
        for index, rad in enumerate(radar):
            if index not in used_radar:
                fused.append(Detection(rad.x, rad.y, rad.v, sensor="radar"))
        return fused
