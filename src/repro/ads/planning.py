"""Planning: adaptive cruise (IDM) plus lane keeping.

The planner is the paper's ML-module back end: it consumes the world
model ``W_t`` and emits raw actuation ``U_A,t`` (throttle, brake,
steering) and a planned speed ``v_p``.  Longitudinal control follows the
Intelligent Driver Model; lateral control is a proportional law on lane
offset and relative heading.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.collision import SENSOR_RANGE
from ..sim.fastmath import clip_scalar
from .kernels import plan_step, py_where
from .messages import PlannerOutput, WorldModel
from .prediction import time_to_collision


@dataclass(frozen=True)
class PlannerConfig:
    """Driving-policy parameters."""

    cruise_speed: float = 31.0        # m/s desired free-flow speed
    time_headway: float = 1.4         # s   (IDM T)
    min_gap: float = 4.0              # m   (IDM s0)
    comfort_accel: float = 2.0        # m/s^2 (IDM a)
    comfort_decel: float = 3.0        # m/s^2 (IDM b)
    idm_exponent: float = 4.0
    hard_brake_ttc: float = 3.0       # s: below this, command full brake
    vehicle_max_accel: float = 3.5    # pedal mapping (matches Vehicle)
    vehicle_max_decel: float = 6.0
    body_length: float = 4.8
    lateral_gain: float = 0.10        # rad per m of lane offset
    heading_gain: float = 0.9         # rad per rad of heading error
    #: Lane-keeping steering authority.  Production autosteer clamps the
    #: commanded angle at speed; it also keeps the recovery loop stable
    #: under the vehicle's steering-rate limit (a saturated PD loop with
    #: rate limiting would otherwise limit-cycle after a disturbance).
    max_steering: float = 0.08
    speed_horizon: float = 1.0        # s: v_p = speed this far ahead


class Planner:
    """IDM + lane keeping over the tracked world model."""

    def __init__(self, config: PlannerConfig | None = None):
        self.config = config or PlannerConfig()

    def snapshot(self) -> None:
        """Planning is stateless; kept for checkpoint API uniformity."""
        return None

    def restore(self, snapshot: None) -> None:
        """Nothing to rewind (stateless)."""

    def plan(self, model: WorldModel, dt: float) -> PlannerOutput:
        """Raw actuation for the current world model.

        ``dt`` is the planning period, used to turn the commanded
        acceleration into the planned speed ``v_p``.
        """
        cfg = self.config
        lead = model.lead_track()
        if cfg.idm_exponent == 4.0:
            # Common case: the whole step runs through the shared
            # closed-form kernel (the same expressions the batched
            # planner evaluates over lane arrays).  Lead placeholders
            # are selected out by ``has_lead``.
            has_lead = lead is not None
            target, throttle, brake, steering, gap, closing = plan_step(
                model.ego.x, model.ego.v,
                lead.x if has_lead else model.ego.x,
                lead.vx if has_lead else 0.0, has_lead,
                model.lane_offset, model.lane_heading, SENSOR_RANGE,
                cfg, py_where, clip_scalar)
            return PlannerOutput(target_speed=target, throttle=throttle,
                                 brake=brake, steering=steering,
                                 gap=float(gap),
                                 closing_speed=float(closing))

        # Generic-exponent fallback (float ``**``); such configs never
        # fuse, so this path has no batched twin to match bitwise.
        v = max(model.ego.v, 0.0)
        if lead is None:
            gap = SENSOR_RANGE
            closing = 0.0
        else:
            gap = max((lead.x - model.ego.x) - cfg.body_length, 0.01)
            closing = v - lead.vx

        accel = self._idm_acceleration(v, gap, closing)
        if lead is not None:
            ttc = time_to_collision(model.ego.x, v, lead, cfg.body_length)
            if ttc < cfg.hard_brake_ttc:
                accel = -cfg.vehicle_max_decel
        accel = clip_scalar(accel, -cfg.vehicle_max_decel,
                            cfg.comfort_accel)

        if accel >= 0.0:
            throttle = accel / cfg.vehicle_max_accel
            brake = 0.0
        else:
            throttle = 0.0
            brake = -accel / cfg.vehicle_max_decel
        steering = clip_scalar(
            -cfg.lateral_gain * model.lane_offset
            - cfg.heading_gain * model.lane_heading,
            -cfg.max_steering, cfg.max_steering)
        target_speed = clip_scalar(v + accel * cfg.speed_horizon,
                                   0.0, cfg.cruise_speed)
        return PlannerOutput(target_speed=target_speed,
                             throttle=clip_scalar(throttle, 0.0, 1.0),
                             brake=clip_scalar(brake, 0.0, 1.0),
                             steering=steering,
                             gap=float(gap),
                             closing_speed=float(closing))

    def _idm_acceleration(self, v: float, gap: float,
                          closing: float) -> float:
        cfg = self.config
        v0 = max(cfg.cruise_speed, 0.1)
        desired_gap = (cfg.min_gap + v * cfg.time_headway
                       + v * closing
                       / (2.0 * np.sqrt(cfg.comfort_accel
                                        * cfg.comfort_decel)))
        desired_gap = max(desired_gap, cfg.min_gap)
        return cfg.comfort_accel * (1.0 - (v / v0) ** cfg.idm_exponent
                                    - (desired_gap / gap) ** 2)
