"""Multi-object tracking: per-object Kalman filters over fused detections.

This is the world model ``W_t`` of the paper's ML module, and one of the
three resilience mechanisms credited for masking random faults: a single
corrupted detection is averaged against the track's state and prior
covariance instead of being believed outright.

The filter math lives in :mod:`repro.ads.kernels` as explicit
closed-form arithmetic on plain floats (no BLAS): an order of magnitude
cheaper per track than 4x4 ``ndarray`` products, deterministic across
backends, and the exact same code path the batched pipeline runs per
lane — which is what makes batched lanes bit-for-bit the scalar oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .kernels import kf_predict4, kf_update4
from .messages import Detection, TrackedObject


@dataclass(frozen=True)
class TrackerConfig:
    """Kalman and track-management parameters."""

    process_noise: float = 0.8       # acceleration spectral density
    measurement_noise: float = 0.5   # m (position measurement, 1 sigma)
    speed_measurement_noise: float = 0.4   # m/s
    association_gate: float = 4.5    # m
    max_misses: int = 4              # drop a track after this many misses
    confirm_age: int = 2             # report tracks at least this old
    enabled: bool = True             # ablation switch: raw detections if off


@dataclass(frozen=True)
class TrackerSnapshot:
    """Frozen copy of every live Kalman track plus the id counter."""

    tracks: tuple[tuple[int, np.ndarray, np.ndarray, int, int], ...]
    next_id: int


@dataclass
class _KalmanTrack:
    """Internal filter state for one object: [x, y, vx, vy].

    ``mean`` is a length-4 float list, ``covariance`` a row-major
    length-16 float list (the kernels' closed-form layout).
    """

    track_id: int
    mean: list[float]
    covariance: list[float]
    age: int = 0
    misses: int = 0

    def predict(self, dt: float, q: float) -> None:
        kf_predict4(self.mean, self.covariance, dt, q)

    def update(self, detection: Detection, r_pos: float,
               r_speed: float) -> None:
        # Measure position and longitudinal speed: z = [x, y, vx].
        kf_update4(self.mean, self.covariance,
                   detection.x, detection.y, detection.v, r_pos, r_speed)


#: Fresh-track covariance diag([2, 2, 4, 1]) in the flat layout.
_NEW_TRACK_COV = (2.0, 0.0, 0.0, 0.0,
                  0.0, 2.0, 0.0, 0.0,
                  0.0, 0.0, 4.0, 0.0,
                  0.0, 0.0, 0.0, 1.0)


@dataclass
class MultiObjectTracker:
    """Nearest-neighbour data association over per-object Kalman filters."""

    config: TrackerConfig = field(default_factory=TrackerConfig)
    _tracks: list[_KalmanTrack] = field(default_factory=list)
    _next_id: int = 1

    def update(self, detections: list[Detection],
               dt: float) -> list[TrackedObject]:
        """Advance all tracks by ``dt`` and fold in new detections."""
        if not self.config.enabled:
            # Ablation mode: believe raw detections directly.
            return [TrackedObject(track_id=i + 1, x=d.x, y=d.y, vx=d.v,
                                  vy=0.0, age=self.config.confirm_age)
                    for i, d in enumerate(detections)]
        for track in self._tracks:
            track.predict(dt, self.config.process_noise)
        unmatched = list(range(len(detections)))
        for track in sorted(self._tracks, key=lambda t: -t.age):
            best, best_distance = None, self.config.association_gate
            for index in unmatched:
                detection = detections[index]
                distance = float(np.hypot(detection.x - track.mean[0],
                                          detection.y - track.mean[1]))
                if distance < best_distance:
                    best, best_distance = index, distance
            if best is None:
                track.misses += 1
            else:
                unmatched.remove(best)
                track.update(detections[best],
                             self.config.measurement_noise,
                             self.config.speed_measurement_noise)
                track.misses = 0
            track.age += 1
        for index in unmatched:
            detection = detections[index]
            self._tracks.append(_KalmanTrack(
                track_id=self._next_id,
                mean=[detection.x, detection.y, detection.v, 0.0],
                covariance=list(_NEW_TRACK_COV),
                age=1))
            self._next_id += 1
        self._tracks = [t for t in self._tracks
                        if t.misses <= self.config.max_misses]
        return [TrackedObject(track_id=t.track_id,
                              x=float(t.mean[0]), y=float(t.mean[1]),
                              vx=float(t.mean[2]), vy=float(t.mean[3]),
                              age=t.age, misses=t.misses)
                for t in self._tracks if t.age >= self.config.confirm_age]

    def snapshot(self) -> TrackerSnapshot:
        """Capture all filter states (as arrays: the snapshot format
        predates the flat-list filter layout and stays pickle-stable)."""
        return TrackerSnapshot(
            tracks=tuple((t.track_id, np.array(t.mean),
                          np.array(t.covariance).reshape(4, 4),
                          t.age, t.misses) for t in self._tracks),
            next_id=self._next_id)

    def restore(self, snapshot: TrackerSnapshot) -> None:
        """Rewind to a snapshot (tracks rebuilt from copies)."""
        self._tracks = [
            _KalmanTrack(track_id=track_id,
                         mean=[float(value) for value in mean],
                         covariance=[float(value)
                                     for value in np.ravel(covariance)],
                         age=age, misses=misses)
            for track_id, mean, covariance, age, misses in snapshot.tracks]
        self._next_id = snapshot.next_id

    def reset(self) -> None:
        """Drop all tracks (new scenario)."""
        self._tracks.clear()
        self._next_id = 1
