"""Sensor simulation: noisy views of the ground-truth world.

Each sensor draws from an explicit ``numpy.random.Generator`` so runs are
reproducible.  Noise magnitudes default to values typical of automotive
hardware; perception-level faults are injected downstream of here, on the
:class:`~repro.ads.messages.SensorBundle` fields.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.world import World
from .messages import Detection, GpsFix, ImuSample, SensorBundle


@dataclass(frozen=True)
class SensorSnapshot:
    """Mutable sensor-suite state: RNG stream position + accel memory.

    ``rng_state`` is the bit generator's state dict; restoring it makes
    every subsequent noise draw bit-identical to the run the snapshot
    was taken from.
    """

    rng_state: dict
    last_speed: float | None
    last_time: float | None


@dataclass(frozen=True)
class SensorSuiteConfig:
    """Noise and coverage parameters of the ego sensor set."""

    camera_range: float = 150.0
    camera_position_noise: float = 0.35     # m (1 sigma)
    camera_dropout: float = 0.02            # per-object miss probability
    radar_range: float = 220.0
    radar_position_noise: float = 0.6       # m
    radar_speed_noise: float = 0.25         # m/s
    gps_noise: float = 0.8                  # m
    imu_speed_noise: float = 0.08           # m/s
    imu_yaw_noise: float = 0.004            # rad/s
    lane_offset_noise: float = 0.02         # m
    lane_heading_noise: float = 0.002       # rad
    #: A body hides anything behind it within this lateral half-width.
    #: This is what makes the paper's Example 2 (Tesla crash shape)
    #: reproducible: the stopped second lead is invisible until the
    #: first lead moves aside.
    occlusion_half_width: float = 1.5


class SensorSuite:
    """The full ego sensor set: camera, radar, GPS, IMU, lane camera."""

    def __init__(self, config: SensorSuiteConfig | None = None,
                 rng: np.random.Generator | None = None):
        self.config = config or SensorSuiteConfig()
        self.rng = rng or np.random.default_rng(0)
        self._last_speed: float | None = None
        self._last_time: float | None = None

    def snapshot(self) -> SensorSnapshot:
        """Capture the RNG position and the acceleration estimator."""
        return SensorSnapshot(rng_state=self.rng.bit_generator.state,
                              last_speed=self._last_speed,
                              last_time=self._last_time)

    def restore(self, snapshot: SensorSnapshot) -> None:
        """Rewind the noise stream and estimator memory."""
        self.rng.bit_generator.state = snapshot.rng_state
        self._last_speed = snapshot.last_speed
        self._last_time = snapshot.last_time

    def measure(self, world: World) -> SensorBundle:
        """One synchronized snapshot of every sensor."""
        cfg = self.config
        ego = world.ego.state
        camera = []
        radar = []
        obstacles = world.obstacles()
        for obstacle in obstacles:
            ahead = obstacle.x - ego.x
            if ahead > 0.0 and self._occluded(obstacle, obstacles, ego.x):
                continue
            if 0.0 < ahead <= cfg.camera_range:
                if self.rng.random() >= cfg.camera_dropout:
                    camera.append(Detection(
                        x=obstacle.x + self.rng.normal(
                            0, cfg.camera_position_noise),
                        y=obstacle.y + self.rng.normal(
                            0, cfg.camera_position_noise),
                        v=obstacle.v,
                        sensor="camera"))
            if 0.0 < ahead <= cfg.radar_range:
                radar.append(Detection(
                    x=obstacle.x + self.rng.normal(
                        0, cfg.radar_position_noise),
                    y=obstacle.y + self.rng.normal(
                        0, cfg.radar_position_noise),
                    v=obstacle.v + self.rng.normal(0, cfg.radar_speed_noise),
                    sensor="radar"))

        acceleration = self._estimate_acceleration(world.time, ego.v)
        yaw_rate = (ego.v * np.tan(ego.phi)
                    / world.ego.params.wheelbase)
        lane_center = world.road.lane_center(world.road.lane_of(ego.y))
        return SensorBundle(
            time=world.time,
            camera=camera,
            radar=radar,
            gps=GpsFix(x=ego.x + self.rng.normal(0, cfg.gps_noise),
                       y=ego.y + self.rng.normal(0, cfg.gps_noise)),
            imu=ImuSample(
                v=max(0.0, ego.v + self.rng.normal(0, cfg.imu_speed_noise)),
                a=acceleration,
                yaw_rate=yaw_rate + self.rng.normal(0, cfg.imu_yaw_noise),
                heading=ego.theta),
            lane_offset=(ego.y - lane_center
                         + self.rng.normal(0, cfg.lane_offset_noise)),
            lane_heading=(ego.theta
                          + self.rng.normal(0, cfg.lane_heading_noise)),
        )

    def _occluded(self, target, obstacles, ego_x: float) -> bool:
        half_width = self.config.occlusion_half_width
        for other in obstacles:
            if other is target:
                continue
            if (ego_x + 1.0 < other.x < target.x
                    and abs(other.y - target.y) < half_width):
                return True
        return False

    def _estimate_acceleration(self, time: float, speed: float) -> float:
        if self._last_time is None or time <= self._last_time:
            accel = 0.0
        else:
            accel = (speed - self._last_speed) / (time - self._last_time)
        self._last_time = time
        self._last_speed = speed
        return accel
