"""Obstacle trajectory prediction: constant-velocity extrapolation.

The planner consults predicted trajectories (not just instantaneous
positions) when judging time-to-collision, matching the paper's note that
production ADSs estimate object trajectories when computing ``d_safe``.
"""

from __future__ import annotations

import numpy as np

from .messages import TrackedObject

#: Value returned when no collision is predicted within the horizon.
NO_COLLISION = float("inf")


def predict_positions(track: TrackedObject, horizon: float,
                      dt: float = 0.25) -> np.ndarray:
    """Future (x, y) positions under constant velocity, shape (n, 2)."""
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    steps = int(np.ceil(horizon / dt)) + 1
    times = np.arange(steps) * dt
    xs = track.x + track.vx * times
    ys = track.y + track.vy * times
    return np.column_stack([xs, ys])


def time_to_collision(ego_x: float, ego_v: float, track: TrackedObject,
                      body_length: float = 4.8) -> float:
    """Time until the ego bumper reaches the track, constant speeds.

    Returns :data:`NO_COLLISION` if the gap is opening or the track is
    behind the ego.
    """
    gap = (track.x - ego_x) - body_length
    if gap < 0.0:
        return 0.0
    closing = ego_v - track.vx
    if closing <= 1e-9:
        return NO_COLLISION
    return gap / closing


def minimum_predicted_gap(ego_x: float, ego_v: float, track: TrackedObject,
                          horizon: float = 6.0, dt: float = 0.25,
                          body_length: float = 4.8) -> float:
    """Smallest bumper gap over the horizon, both bodies extrapolated."""
    steps = int(np.ceil(horizon / dt)) + 1
    times = np.arange(steps) * dt
    ego_positions = ego_x + ego_v * times
    track_positions = track.x + track.vx * times
    gaps = track_positions - ego_positions - body_length
    return float(gaps.min())
