"""The ADS runtime: rate-scheduled module pipeline with injection hooks.

One :meth:`ADSPipeline.tick` is a control-rate cycle (default 20 Hz).
Perception, tracking, and planning run every ``planner_divisor`` ticks
(default 2, i.e. 10 Hz), matching the paper's layered refresh rates; the
PID controller and vehicle actuation run every tick.  The frequent
recomputation is the first of the paper's three masking mechanisms.

Faults are armed on the pipeline as :class:`ArmedFault` records.  After a
stage computes its payload and before the payload is handed downstream,
every active fault targeting that stage corrupts the payload in place —
precisely "modifying the software state of the ADS" as DriveFI does.

Interface faults ride the :class:`~repro.ads.channels.ChannelBus` sitting
at each stage boundary: payloads are *delivered* through the bus, which
can drop, freeze, delay, or reorder them, or hang the producing module
outright.  When graceful degradation is enabled (the default) the
pipeline watches the bus's per-channel staleness and swaps the normal
controller for a safe-stop command once a critical input exceeds its
TTL — recorded so campaigns can tell masked-by-degradation from a real
safety violation.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, replace

import numpy as np

from ..sim.world import World
from .channels import ChannelBus, ChannelFault, DegradationConfig
from .control import (ControllerConfig, ControllerSnapshot,
                      VehicleController, safe_stop_command)
from .localization import EgoLocalizer, LocalizerConfig, LocalizerSnapshot
from .messages import ActuationCommand, PlannerOutput, WorldModel
from .perception import Perception, PerceptionConfig
from .planning import Planner, PlannerConfig
from .profiling import STAGE_TIMER
from .sensors import SensorSnapshot, SensorSuite, SensorSuiteConfig
from .tracking import MultiObjectTracker, TrackerConfig, TrackerSnapshot
from .variables import InjectableVariable, variable_by_name


@dataclass(frozen=True)
class ADSConfig:
    """Top-level ADS configuration (submodule configs plus scheduling)."""

    control_rate: float = 20.0      # Hz: controller + actuation
    planner_divisor: int = 2        # planning every N control ticks
    sensors: SensorSuiteConfig = field(default_factory=SensorSuiteConfig)
    perception: PerceptionConfig = field(default_factory=PerceptionConfig)
    tracker: TrackerConfig = field(default_factory=TrackerConfig)
    localizer: LocalizerConfig = field(default_factory=LocalizerConfig)
    planner: PlannerConfig = field(default_factory=PlannerConfig)
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    degradation: DegradationConfig = field(default_factory=DegradationConfig)

    @property
    def control_period(self) -> float:
        """Seconds per control tick."""
        return 1.0 / self.control_rate

    @property
    def planner_period(self) -> float:
        """Seconds per planning cycle."""
        return self.planner_divisor / self.control_rate

    def with_resilience(self, tracking: bool = True, smoothing: bool = True,
                        planner_divisor: int | None = None) -> "ADSConfig":
        """Ablation helper: switch masking mechanisms on/off."""
        return replace(
            self,
            tracker=replace(self.tracker, enabled=tracking),
            controller=replace(self.controller, enabled=smoothing),
            planner_divisor=(self.planner_divisor if planner_divisor is None
                             else planner_divisor))


@dataclass
class ArmedFault:
    """A scheduled transient corruption of one injectable variable."""

    variable: InjectableVariable
    value: float
    start_tick: int
    duration_ticks: int = 2     # one planner period at the default rates
    landed: bool = False        # set once the corruption touched a payload

    def active(self, tick: int) -> bool:
        """True while the fault window covers ``tick``."""
        return self.start_tick <= tick < self.start_tick + self.duration_ticks


@dataclass(frozen=True)
class PipelineSnapshot:
    """Picklable capture of every mutable cell in the ADS stack.

    Faults are stored by variable *name* (the registry objects carry
    setter functions, which pickle by module reference but are cheaper
    and safer to re-resolve on restore).  Latched planner/model payloads
    are deep-copied because fault setters corrupt them in place.
    """

    tick_index: int
    sensors: SensorSnapshot
    tracker: TrackerSnapshot
    localizer: LocalizerSnapshot
    controller: ControllerSnapshot
    plan: PlannerOutput | None
    model: WorldModel | None
    command: tuple[float, float, float]
    faults: tuple[tuple[str, float, int, int, bool], ...]
    # Interface-fault state (defaults keep pre-existing pickled
    # snapshots restorable): armed channel faults, the per-channel bus
    # delivery state as one pickle blob (see ChannelBus.snapshot), and
    # the degradation counter.
    channel_faults: tuple = ()
    channels: bytes | None = None
    degraded_ticks: int = 0


class ADSPipeline:
    """The complete software stack of the ego vehicle."""

    def __init__(self, config: ADSConfig | None = None, seed: int = 0):
        self.config = config or ADSConfig()
        self._rng = np.random.default_rng(seed)
        self.sensors = SensorSuite(self.config.sensors, self._rng)
        self.perception = Perception(self.config.perception)
        self.tracker = MultiObjectTracker(self.config.tracker)
        self.localizer = EgoLocalizer(self.config.localizer)
        self.planner = Planner(self.config.planner)
        self.controller = VehicleController(self.config.controller)
        self.tick_index = 0
        self.faults: list[ArmedFault] = []
        self.bus = ChannelBus()
        self._degraded_ticks = 0
        self._plan: PlannerOutput | None = None
        self._model: WorldModel | None = None
        self._command = ActuationCommand(0.0, 0.0, 0.0)

    # -- fault management ----------------------------------------------------

    def arm_fault(self, variable_name: str, value: float, start_tick: int,
                  duration_ticks: int = 2) -> ArmedFault:
        """Schedule a transient corruption; returns the armed record."""
        fault = ArmedFault(variable=variable_by_name(variable_name),
                           value=float(value), start_tick=int(start_tick),
                           duration_ticks=int(duration_ticks))
        self.faults.append(fault)
        return fault

    def arm_channel_fault(self, kind: str, channel: str, start_tick: int,
                          duration_ticks: int = 2,
                          param: int = 0) -> ChannelFault:
        """Schedule an interface fault on one message channel."""
        return self.bus.arm(kind, channel, start_tick,
                            duration_ticks=duration_ticks, param=param)

    @property
    def fault_landed(self) -> bool:
        """True once any armed fault (value or interface) took effect."""
        return any(f.landed for f in self.faults) or self.bus.landed

    @property
    def degraded_ticks(self) -> int:
        """Ticks the safe-stop fallback was in command."""
        return self._degraded_ticks

    def _corrupt(self, stage: str, payload: object) -> None:
        for fault in self.faults:
            if fault.variable.stage == stage and fault.active(
                    self.tick_index):
                if fault.variable.setter(payload, fault.value):
                    fault.landed = True

    # -- checkpoint support ---------------------------------------------------

    def snapshot(self) -> PipelineSnapshot:
        """Capture the full stack state as a picklable snapshot."""
        channel_faults, channels = self.bus.snapshot()
        return PipelineSnapshot(
            tick_index=self.tick_index,
            sensors=self.sensors.snapshot(),
            tracker=self.tracker.snapshot(),
            localizer=self.localizer.snapshot(),
            controller=self.controller.snapshot(),
            plan=copy.deepcopy(self._plan),
            model=copy.deepcopy(self._model),
            command=(self._command.throttle, self._command.brake,
                     self._command.steering),
            faults=tuple((f.variable.name, f.value, f.start_tick,
                          f.duration_ticks, f.landed) for f in self.faults),
            channel_faults=channel_faults,
            channels=channels,
            degraded_ticks=self._degraded_ticks)

    def restore(self, snapshot: PipelineSnapshot) -> None:
        """Rewind the stack to a snapshot taken from an identically
        configured pipeline.  The perception and planning stages are
        stateless; their ``restore`` is called anyway so a future
        stateful implementation cannot be silently skipped."""
        self.tick_index = snapshot.tick_index
        self.sensors.restore(snapshot.sensors)
        self.perception.restore(None)
        self.tracker.restore(snapshot.tracker)
        self.localizer.restore(snapshot.localizer)
        self.planner.restore(None)
        self.controller.restore(snapshot.controller)
        self._plan = copy.deepcopy(snapshot.plan)
        self._model = copy.deepcopy(snapshot.model)
        self._command = ActuationCommand(*snapshot.command)
        self.faults = []
        for name, value, start_tick, duration_ticks, landed in \
                snapshot.faults:
            fault = self.arm_fault(name, value, start_tick, duration_ticks)
            fault.landed = landed
        self.bus = ChannelBus()
        self.bus.restore(getattr(snapshot, "channel_faults", ()),
                         getattr(snapshot, "channels", None))
        self._degraded_ticks = int(getattr(snapshot, "degraded_ticks", 0))

    # -- execution ------------------------------------------------------------

    @property
    def is_planning_tick(self) -> bool:
        """True when the upcoming tick recomputes perception + planning."""
        return self.tick_index % self.config.planner_divisor == 0

    def tick(self, world: World) -> ActuationCommand:
        """One control cycle: sense, (re)plan, smooth, return ``A_t``.

        The caller owns stepping the world with the returned command.
        """
        dt = self.config.control_period
        tick = self.tick_index
        bus = self.bus
        timer = STAGE_TIMER if STAGE_TIMER.enabled else None

        if bus.hung("sensing", tick):
            bundle = bus.held("sensing")
        else:
            started = timer.start() if timer else 0
            bundle = self.sensors.measure(world)
            self._corrupt("sensing", bundle)
            bundle = bus.deliver("sensing", bundle, tick)
            if timer:
                timer.stop("sensing", started)

        if self.is_planning_tick or self._plan is None:
            if bus.hung("perception", tick):
                detections = bus.held("perception")
            else:
                started = timer.start() if timer else 0
                detections = self.perception.process(bundle)
                self._corrupt("perception", detections)
                detections = bus.deliver("perception", detections, tick)
                if timer:
                    timer.stop("perception", started)

            planning_dt = self.config.planner_period
            if bus.hung("world_model", tick):
                model = bus.held("world_model")
            else:
                started = timer.start() if timer else 0
                tracks = self.tracker.update(detections, planning_dt)
                ego = self.localizer.update(bundle.gps, bundle.imu,
                                            bundle.imu.yaw_rate, planning_dt)
                model = WorldModel(time=bundle.time, ego=ego, tracks=tracks,
                                   lane_offset=bundle.lane_offset,
                                   lane_heading=bundle.lane_heading)
                self._corrupt("world_model", model)
                model = bus.deliver("world_model", model, tick)
                if timer:
                    timer.stop("world_model", started)
            self._model = model

            if bus.hung("planning", tick):
                plan = bus.held("planning")
            else:
                started = timer.start() if timer else 0
                plan = self.planner.plan(model, planning_dt)
                self._corrupt("planning", plan)
                plan = bus.deliver("planning", plan, tick)
                if timer:
                    timer.stop("planning", started)
            self._plan = plan

        degradation = self.config.degradation
        degraded = False
        if degradation.enabled:
            for channel in degradation.critical_channels:
                if bus.age(channel, tick) > degradation.ttl_ticks:
                    degraded = True
                    break

        if bus.hung("actuation", tick):
            command = bus.held("actuation")
        else:
            started = timer.start() if timer else 0
            if degraded:
                command = safe_stop_command(self._command,
                                            degradation.brake_level)
                self._degraded_ticks += 1
            else:
                command = self.controller.actuate(self._plan, bundle.imu.v,
                                                  dt)
            self._corrupt("actuation", command)
            command = bus.deliver("actuation", command, tick)
            if timer:
                timer.stop("actuation", started)
        command = command.clipped()
        self._command = command
        self.tick_index += 1
        return command

    @property
    def last_plan(self) -> PlannerOutput | None:
        """Most recent planner output (``U_A,t``)."""
        return self._plan

    @property
    def last_model(self) -> WorldModel | None:
        """Most recent world model (``S_t``)."""
        return self._model

    @property
    def last_command(self) -> ActuationCommand:
        """Most recent actuation command (``A_t``)."""
        return self._command
