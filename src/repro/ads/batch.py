"""Batched ADS pipeline: N same-scenario lanes per fused kernel tick.

:class:`BatchADSState` is the ADS-side twin of
:class:`~repro.sim.batch.BatchWorldState`: it advances every *fused*
lane of a batch through the full sense → perceive → track → localize →
plan → actuate cycle with one set of numpy kernel calls per tick, while
the scalar :class:`~repro.ads.runtime.ADSPipeline` stays the bit-for-bit
oracle.  The split of labor per stage:

* **Vectorized across lanes** — sensing geometry (range gates and the
  occlusion shadow test), the localizer EKF (component arrays through
  the same :mod:`repro.ads.kernels` closed forms the scalar filter
  runs), the IDM planner, the PID/slew controller, the final command
  clip, and the actuation-to-controls mapping.
* **Per lane, reusing the lane's own scalar objects** — RNG draws (each
  lane owns an independent ``Generator``, so draws are packed into as
  few calls per lane as the scalar stream order allows), message
  construction, camera/radar fusion (the lane's ``Perception``), and
  the ragged per-object Kalman tracker (the lane's
  ``MultiObjectTracker``, already closed-form).

Equivalence holds by construction: the vectorized stages evaluate the
*same* kernel expressions the scalar modules call with floats, RNG
packing exploits verified bit-identities (``standard_normal(k)``
equals ``k`` sequential draws; ``normal(0, s)`` equals
``0.0 + s * standard_normal()``), and fault injection flows through the
*real* registry setters on real payload objects for the
sensing/perception/world-model stages — only the planner/actuation
stages, whose payloads live in structure-of-arrays form, apply value
faults as masked column writes (their setters are plain field stores).

Lanes whose configuration or armed faults the fused path cannot
represent — interface faults on the channel bus, bus residue from a
restored snapshot, a degradation policy the planner's natural staleness
could trip, or a non-default IDM exponent — report ``False`` from
:func:`can_fuse` and *peel*: the driver runs their scalar pipeline per
lane while the rest of the batch stays fused.  Fused lanes provably
never degrade (sensing age is 0 every tick and plan age is at most
``planner_divisor - 1``, which :func:`can_fuse` requires to be within
the TTL), so the safe-stop branch needs no batched twin.
"""

from __future__ import annotations

import copy

import numpy as np

from ..sim.batch import BatchWorldState
from ..sim.collision import SENSOR_RANGE
from .channels import ChannelBus
from .control import ControllerSnapshot
from .kernels import control_step, ekf_correct, ekf_predict, plan_step
from .localization import LocalizerSnapshot
from .messages import (ActuationCommand, Detection, EgoEstimate, GpsFix,
                       ImuSample, PlannerOutput, SensorBundle, WorldModel)
from .profiling import STAGE_TIMER
from .runtime import ADSConfig, ADSPipeline, PipelineSnapshot
from .sensors import SensorSnapshot

#: Planner-stage fault variables as plan-array column names.
_PLAN_COLUMNS = {"planned_speed": "plan_target", "raw_throttle":
                 "plan_throttle", "raw_brake": "plan_brake",
                 "raw_steering": "plan_steering"}

#: Actuation-stage fault variables as actuation-array column names.
_ACT_COLUMNS = {"throttle": "act_throttle", "brake": "act_brake",
                "steering": "act_steering"}


def can_fuse(pipeline: ADSPipeline) -> bool:
    """True when a lane's pipeline is representable by the fused path.

    Peel conditions: armed interface faults or channel residue (delay
    queues / jitter windows restored from a snapshot), a degradation
    policy the planner's natural ``divisor - 1`` staleness could trip,
    or an IDM exponent outside the closed-form kernel's domain.
    """
    cfg = pipeline.config
    if cfg.planner.idm_exponent != 4.0:
        return False
    if (cfg.degradation.enabled
            and cfg.planner_divisor - 1 > cfg.degradation.ttl_ticks):
        return False
    bus = pipeline.bus
    if bus.faults:
        return False
    for state in bus._states.values():
        if state.queue or state.buffer:
            return False
    return True


class BatchADSState:
    """Structure-of-arrays ADS state for the fused lanes of one batch."""

    def __init__(self, batch: BatchWorldState, config: ADSConfig):
        self.batch = batch
        self.config = config
        self._dt = config.control_period
        self._planning_dt = config.planner_period
        n = batch.n_lanes
        self.active = np.zeros(n, dtype=bool)
        self.tick = np.zeros(n, dtype=np.int64)
        #: Lanes that hit their modulo planning tick this cycle (the
        #: scalar ``is_planning_tick``, used by trace recording).
        self.planned = np.zeros(n, dtype=bool)

        # Adopted per-lane scalar objects (ragged / object-shaped state).
        self.pipelines: list[ADSPipeline | None] = [None] * n
        self.rngs = [None] * n
        self.perceptions = [None] * n
        self.trackers = [None] * n
        self.accel_last_t: list[float | None] = [None] * n
        self.accel_last_v: list[float | None] = [None] * n
        self.bundles: list[SensorBundle | None] = [None] * n
        self.detections: list[list | None] = [None] * n
        self.models: list[WorldModel | None] = [None] * n
        self.stage_faults: list[dict | None] = [None] * n
        self.faulty: set[int] = set()

        # Localizer EKF belief as component arrays (rows = components).
        self.loc_has = np.zeros(n, dtype=bool)
        self.loc_mean = np.zeros((4, n))
        self.loc_cov = np.zeros((16, n))

        # Latched planner output (the scalar pipeline's ``_plan``).
        self.plan_valid = np.zeros(n, dtype=bool)
        self.plan_target = np.zeros(n)
        self.plan_throttle = np.zeros(n)
        self.plan_brake = np.zeros(n)
        self.plan_steering = np.zeros(n)
        self.plan_gap = np.zeros(n)
        self.plan_closing = np.zeros(n)

        # Controller memory (PID + slew limiter).
        self.pid_integral = np.zeros(n)
        self.pid_last_error = np.zeros(n)
        self.pid_has_last = np.zeros(n, dtype=bool)
        self.last_throttle = np.zeros(n)
        self.last_brake = np.zeros(n)
        self.last_steering = np.zeros(n)

        # Actuation payload (post-corruption, pre-final-clip — what the
        # scalar bus holds) and the executed command (post-clip).
        self.act_throttle = np.zeros(n)
        self.act_brake = np.zeros(n)
        self.act_steering = np.zeros(n)
        self.cmd_throttle = np.zeros(n)
        self.cmd_brake = np.zeros(n)
        self.cmd_steering = np.zeros(n)

        # Delivery origins per channel (-1 encodes the bus's ``None``).
        self.sense_origin = np.full(n, -1, dtype=np.int64)
        self.percept_origin = np.full(n, -1, dtype=np.int64)
        self.model_origin = np.full(n, -1, dtype=np.int64)
        self.plan_origin = np.full(n, -1, dtype=np.int64)
        self.act_origin = np.full(n, -1, dtype=np.int64)

    # -- lane membership ----------------------------------------------------

    def attach(self, slot: int, pipeline: ADSPipeline) -> None:
        """Adopt a fused lane's pipeline state into the batch arrays.

        The pipeline must satisfy :func:`can_fuse`.  Its RNG, perception
        and tracker objects are shared (not copied): the fused path
        advances them exactly as the scalar path would, so detaching or
        snapshotting later sees consistent state.
        """
        self.pipelines[slot] = pipeline
        self.rngs[slot] = pipeline.sensors.rng
        self.perceptions[slot] = pipeline.perception
        self.trackers[slot] = pipeline.tracker
        self.accel_last_t[slot] = pipeline.sensors._last_time
        self.accel_last_v[slot] = pipeline.sensors._last_speed
        self.tick[slot] = pipeline.tick_index

        loc = pipeline.localizer
        if loc._mean is None:
            self.loc_has[slot] = False
        else:
            self.loc_has[slot] = True
            self.loc_mean[:, slot] = loc._mean
            self.loc_cov[:, slot] = loc._cov

        plan = pipeline.last_plan
        if plan is None:
            self.plan_valid[slot] = False
        else:
            self.plan_valid[slot] = True
            self.plan_target[slot] = plan.target_speed
            self.plan_throttle[slot] = plan.throttle
            self.plan_brake[slot] = plan.brake
            self.plan_steering[slot] = plan.steering
            self.plan_gap[slot] = plan.gap
            self.plan_closing[slot] = plan.closing_speed
        self.models[slot] = pipeline.last_model

        controller = pipeline.controller
        pid = controller._speed_pid
        self.pid_integral[slot] = pid._integral
        self.pid_has_last[slot] = pid._last_error is not None
        self.pid_last_error[slot] = (0.0 if pid._last_error is None
                                     else pid._last_error)
        last = controller._last
        self.last_throttle[slot] = last.throttle
        self.last_brake[slot] = last.brake
        self.last_steering[slot] = last.steering
        command = pipeline.last_command
        self.cmd_throttle[slot] = command.throttle
        self.cmd_brake[slot] = command.brake
        self.cmd_steering[slot] = command.steering

        states = pipeline.bus._states
        self.bundles[slot] = states["sensing"].payload
        self.detections[slot] = states["perception"].payload
        act = states["actuation"].payload
        if act is not None:
            self.act_throttle[slot] = act.throttle
            self.act_brake[slot] = act.brake
            self.act_steering[slot] = act.steering
        for name, column in (("sensing", self.sense_origin),
                             ("perception", self.percept_origin),
                             ("world_model", self.model_origin),
                             ("planning", self.plan_origin),
                             ("actuation", self.act_origin)):
            origin = states[name].origin
            column[slot] = -1 if origin is None else origin

        stages: dict[str, list] = {}
        for fault in pipeline.faults:
            stages.setdefault(fault.variable.stage, []).append(fault)
        self.stage_faults[slot] = stages
        if stages:
            self.faulty.add(slot)
        else:
            self.faulty.discard(slot)
        self.active[slot] = True

    def deactivate(self, slot: int) -> None:
        """Release a fused lane (syncs the shared scalar objects)."""
        pipeline = self.pipelines[slot]
        if pipeline is not None:
            pipeline.tick_index = int(self.tick[slot])
            pipeline.sensors._last_time = self.accel_last_t[slot]
            pipeline.sensors._last_speed = self.accel_last_v[slot]
        self.active[slot] = False
        self.pipelines[slot] = None
        self.rngs[slot] = None
        self.perceptions[slot] = None
        self.trackers[slot] = None
        self.bundles[slot] = None
        self.detections[slot] = None
        self.models[slot] = None
        self.stage_faults[slot] = None
        self.faulty.discard(slot)
        self.plan_valid[slot] = False
        self.loc_has[slot] = False

    # -- fault application ---------------------------------------------------

    def _apply_object_faults(self, slot: int, stage: str,
                             payload: object) -> None:
        """Run the real registry setters of ``stage`` against a real
        payload object, in armed order (scalar ``_corrupt``)."""
        tick = int(self.tick[slot])
        for fault in self.stage_faults[slot].get(stage, ()):
            if fault.active(tick):
                if fault.variable.setter(payload, fault.value):
                    fault.landed = True

    def _apply_column_faults(self, slot: int, stage: str,
                             columns: dict) -> None:
        """Apply a planner/actuation-stage fault as a column write (the
        scalar setters are plain field stores, so landing is certain)."""
        tick = int(self.tick[slot])
        for fault in self.stage_faults[slot].get(stage, ()):
            if fault.active(tick):
                getattr(self, columns[fault.variable.name])[slot] = \
                    fault.value
                fault.landed = True

    # -- the fused tick ------------------------------------------------------

    def tick_all(self) -> None:
        """One control cycle for every fused lane, ending with the
        executed commands mapped into the batch's kernel controls."""
        self.planned[:] = False
        rows = np.nonzero(self.active)[0]
        if rows.size == 0:
            return
        timer = STAGE_TIMER if STAGE_TIMER.enabled else None
        ticks = self.tick[rows]
        started = timer.start() if timer else 0
        self._sense(rows)
        if timer:
            timer.stop("sensing", started, rows.size)
        self.planned[rows] = ticks % self.config.planner_divisor == 0
        planning = self.planned[rows] | ~self.plan_valid[rows]
        if planning.any():
            self._plan_stage(rows[planning], timer)
        started = timer.start() if timer else 0
        self._actuate(rows)
        if timer:
            timer.stop("actuation", started, rows.size)
        self.tick[rows] += 1
        self.batch.apply_controls(rows, self.cmd_throttle[rows],
                                  self.cmd_brake[rows],
                                  self.cmd_steering[rows], self._dt)

    def _sense(self, rows: np.ndarray) -> None:
        """Batched sensor measurement: vectorized geometry, per-lane
        packed RNG draws, real ``SensorBundle`` payloads."""
        cfg = self.config.sensors
        batch = self.batch
        road = batch.road
        wheelbase = batch.ego_params.wheelbase
        ego = batch.ego[rows]
        ego_v = ego[:, 2]
        npc_x = batch.npc_x[rows]
        npc_y = batch.npc_y[rows]
        m = npc_x.shape[1]

        if m:
            ahead = npc_x - ego[:, 0][:, None]
            cam = (0.0 < ahead) & (ahead <= cfg.camera_range)
            rad = (0.0 < ahead) & (ahead <= cfg.radar_range)
            # Occlusion shadow: obstacle j is hidden when any other
            # obstacle sits strictly between ego+1 and j, laterally
            # within the half-width (scalar ``_occluded``).
            occluded = np.zeros_like(cam)
            ego_near = ego[:, 0][:, None] + 1.0
            for j2 in range(m):
                x2 = npc_x[:, j2][:, None]
                y2 = npc_y[:, j2][:, None]
                blocker = ((ego_near < x2) & (x2 < npc_x)
                           & (np.abs(y2 - npc_y)
                              < cfg.occlusion_half_width))
                blocker[:, j2] = False
                occluded |= blocker
            skip = (ahead > 0.0) & occluded
            visible_cam = (cam & ~skip).tolist()
            visible_rad = (rad & ~skip).tolist()
            npc_x_list = npc_x.tolist()
            npc_y_list = npc_y.tolist()
            npc_v_list = batch.npc_v[rows].tolist()
        yaw_rates = ego_v * np.tan(ego[:, 4]) / wheelbase

        ego_list = ego.tolist()
        times = batch.time[rows].tolist()
        cam_noise = cfg.camera_position_noise
        rad_noise = cfg.radar_position_noise
        for i, slot in enumerate(rows.tolist()):
            rng = self.rngs[slot]
            camera: list[Detection] = []
            radar: list[Detection] = []
            if m:
                lane_cam = visible_cam[i]
                lane_rad = visible_rad[i]
                lane_x = npc_x_list[i]
                lane_y = npc_y_list[i]
                lane_v = npc_v_list[i]
                for j in range(m):
                    sees_cam = lane_cam[j]
                    sees_rad = lane_rad[j]
                    if not (sees_cam or sees_rad):
                        continue
                    if sees_cam:
                        sees_cam = rng.random() >= cfg.camera_dropout
                    draws = (2 if sees_cam else 0) + (3 if sees_rad else 0)
                    z = rng.standard_normal(draws) if draws else ()
                    base = 0
                    if sees_cam:
                        camera.append(Detection(
                            x=lane_x[j] + (0.0 + cam_noise * z[0]),
                            y=lane_y[j] + (0.0 + cam_noise * z[1]),
                            v=lane_v[j], sensor="camera"))
                        base = 2
                    if sees_rad:
                        radar.append(Detection(
                            x=lane_x[j] + (0.0 + rad_noise * z[base]),
                            y=lane_y[j] + (0.0 + rad_noise * z[base + 1]),
                            v=lane_v[j] + (0.0 + cfg.radar_speed_noise
                                           * z[base + 2]),
                            sensor="radar"))

            time = times[i]
            speed = ego_list[i][2]
            last_time = self.accel_last_t[slot]
            if last_time is None or time <= last_time:
                acceleration = 0.0
            else:
                acceleration = ((speed - self.accel_last_v[slot])
                                / (time - last_time))
            self.accel_last_t[slot] = time
            self.accel_last_v[slot] = speed

            ego_y = ego_list[i][1]
            theta = ego_list[i][3]
            lane_center = road.lane_center(road.lane_of(ego_y))
            z = rng.standard_normal(6)
            bundle = SensorBundle(
                time=time,
                camera=camera,
                radar=radar,
                gps=GpsFix(x=ego_list[i][0] + (0.0 + cfg.gps_noise * z[0]),
                           y=ego_y + (0.0 + cfg.gps_noise * z[1])),
                imu=ImuSample(
                    v=max(0.0, speed + (0.0 + cfg.imu_speed_noise * z[2])),
                    a=acceleration,
                    yaw_rate=(float(yaw_rates[i])
                              + (0.0 + cfg.imu_yaw_noise * z[3])),
                    heading=theta),
                lane_offset=(ego_y - lane_center
                             + (0.0 + cfg.lane_offset_noise * z[4])),
                lane_heading=theta + (0.0 + cfg.lane_heading_noise * z[5]),
            )
            if slot in self.faulty:
                self._apply_object_faults(slot, "sensing", bundle)
            self.bundles[slot] = bundle
        self.sense_origin[rows] = self.tick[rows]

    def _plan_stage(self, rows: np.ndarray,
                    timer: "StageTimer | None" = None) -> None:
        """Perception, tracking, localization, world model, planning for
        the lanes re-planning this tick."""
        config = self.config
        planning_dt = self._planning_dt
        slots = rows.tolist()
        k = len(slots)

        # Per-lane camera/radar fusion on the adopted scalar objects.
        started = timer.start() if timer else 0
        for slot in slots:
            bundle = self.bundles[slot]
            detections = self.perceptions[slot].process(bundle)
            if slot in self.faulty:
                self._apply_object_faults(slot, "perception", detections)
            self.detections[slot] = detections
        self.percept_origin[rows] = self.tick[rows]
        if timer:
            timer.stop("perception", started, k)

        # World-model stage: per-lane tracking, then the vectorized EKF,
        # then real model payloads (scalar tick's world_model bracket).
        started = timer.start() if timer else 0
        track_lists = [self.trackers[slot].update(self.detections[slot],
                                                  planning_dt)
                       for slot in slots]

        # Localization: vectorized EKF over the measurement gathers.
        gx = np.empty(k)
        gy = np.empty(k)
        gv = np.empty(k)
        gyaw = np.empty(k)
        headings = np.empty(k)
        for i, slot in enumerate(slots):
            bundle = self.bundles[slot]
            gx[i] = bundle.gps.x
            gy[i] = bundle.gps.y
            gv[i] = bundle.imu.v
            gyaw[i] = bundle.imu.yaw_rate
            headings[i] = bundle.imu.heading
        if config.localizer.enabled:
            known = self.loc_has[rows]
            if not known.all():
                fresh = rows[~known]
                sel = ~known
                self.loc_mean[0, fresh] = gx[sel]
                self.loc_mean[1, fresh] = gy[sel]
                self.loc_mean[2, fresh] = gv[sel]
                self.loc_mean[3, fresh] = headings[sel]
                self.loc_cov[:, fresh] = 0.0
                self.loc_cov[0, fresh] = 2.0
                self.loc_cov[5, fresh] = 2.0
                self.loc_cov[10, fresh] = 1.0
                self.loc_cov[15, fresh] = 0.05
                self.loc_has[fresh] = True
            if known.any():
                old = rows[known]
                loc = config.localizer
                mean = [self.loc_mean[c, old] for c in range(4)]
                cov = [self.loc_cov[c, old] for c in range(16)]
                ekf_predict(mean, cov, gyaw[known], planning_dt,
                            loc.position_process_noise,
                            loc.speed_process_noise,
                            loc.heading_process_noise)
                ekf_correct(mean, cov, gx[known], gy[known], gv[known],
                            loc.gps_noise, loc.imu_speed_noise, np.where)
                for c in range(4):
                    self.loc_mean[c, old] = mean[c]
                for c in range(16):
                    self.loc_cov[c, old] = cov[c]
            ex = self.loc_mean[0, rows].tolist()
            ey = self.loc_mean[1, rows].tolist()
            ev = self.loc_mean[2, rows].tolist()
            eth = self.loc_mean[3, rows].tolist()
        else:
            ex, ey, ev, eth = (gx.tolist(), gy.tolist(), gv.tolist(),
                               headings.tolist())

        # World models: real payloads, real world-model fault setters.
        has_lead = np.zeros(k, dtype=bool)
        px = np.empty(k)
        pv = np.empty(k)
        lx = np.empty(k)
        lv = np.empty(k)
        lane_offsets = np.empty(k)
        lane_headings = np.empty(k)
        for i, slot in enumerate(slots):
            bundle = self.bundles[slot]
            model = WorldModel(time=bundle.time,
                               ego=EgoEstimate(x=ex[i], y=ey[i], v=ev[i],
                                               theta=eth[i]),
                               tracks=track_lists[i],
                               lane_offset=bundle.lane_offset,
                               lane_heading=bundle.lane_heading)
            if slot in self.faulty:
                self._apply_object_faults(slot, "world_model", model)
            self.models[slot] = model
            lead = model.lead_track()
            px[i] = model.ego.x
            pv[i] = model.ego.v
            if lead is None:
                lx[i] = model.ego.x
                lv[i] = 0.0
            else:
                has_lead[i] = True
                lx[i] = lead.x
                lv[i] = lead.vx
            lane_offsets[i] = model.lane_offset
            lane_headings[i] = model.lane_heading
        self.model_origin[rows] = self.tick[rows]
        if timer:
            timer.stop("world_model", started, k)

        started = timer.start() if timer else 0
        target, throttle, brake, steering, gap, closing = plan_step(
            px, pv, lx, lv, has_lead, lane_offsets, lane_headings,
            SENSOR_RANGE, config.planner, np.where, np.clip)
        self.plan_target[rows] = target
        self.plan_throttle[rows] = throttle
        self.plan_brake[rows] = brake
        self.plan_steering[rows] = steering
        self.plan_gap[rows] = gap
        self.plan_closing[rows] = closing
        self.plan_valid[rows] = True
        for slot in slots:
            if slot in self.faulty:
                self._apply_column_faults(slot, "planning", _PLAN_COLUMNS)
        self.plan_origin[rows] = self.tick[rows]
        if timer:
            timer.stop("planning", started, k)

    def _actuate(self, rows: np.ndarray) -> None:
        """Controller + actuation faults + physical clip for all fused
        lanes (runs every tick; fused lanes never degrade)."""
        cfg = self.config.controller
        measured = np.empty(rows.size)
        for i, slot in enumerate(rows.tolist()):
            measured[i] = self.bundles[slot].imu.v
        if cfg.enabled:
            throttle, brake, steering, integral, error = control_step(
                self.plan_target[rows], self.plan_throttle[rows],
                self.plan_brake[rows], self.plan_steering[rows],
                measured, self._dt, self.pid_integral[rows],
                self.pid_last_error[rows], self.pid_has_last[rows],
                self.last_throttle[rows], self.last_brake[rows],
                self.last_steering[rows], cfg, np.where, np.clip)
            self.pid_integral[rows] = integral
            self.pid_last_error[rows] = error
            self.pid_has_last[rows] = True
        else:
            throttle = np.clip(self.plan_throttle[rows], 0.0, 1.0)
            brake = np.clip(self.plan_brake[rows], 0.0, 1.0)
            steering = np.clip(self.plan_steering[rows], -0.55, 0.55)
        self.last_throttle[rows] = throttle
        self.last_brake[rows] = brake
        self.last_steering[rows] = steering
        self.act_throttle[rows] = throttle
        self.act_brake[rows] = brake
        self.act_steering[rows] = steering
        for slot in rows.tolist():
            if slot in self.faulty:
                self._apply_column_faults(slot, "actuation", _ACT_COLUMNS)
        self.act_origin[rows] = self.tick[rows]
        self.cmd_throttle[rows] = np.clip(self.act_throttle[rows], 0.0, 1.0)
        self.cmd_brake[rows] = np.clip(self.act_brake[rows], 0.0, 1.0)
        self.cmd_steering[rows] = np.clip(self.act_steering[rows],
                                          -0.55, 0.55)

    # -- checkpoint support --------------------------------------------------

    def snapshot_lane(self, slot: int) -> PipelineSnapshot:
        """Materialize a fused lane's state as the scalar pipeline
        snapshot it would have produced (field-for-field values)."""
        pipeline = self.pipelines[slot]
        plan = None
        if self.plan_valid[slot]:
            plan = PlannerOutput(
                target_speed=float(self.plan_target[slot]),
                throttle=float(self.plan_throttle[slot]),
                brake=float(self.plan_brake[slot]),
                steering=float(self.plan_steering[slot]),
                gap=float(self.plan_gap[slot]),
                closing_speed=float(self.plan_closing[slot]))
        act = None
        if self.act_origin[slot] >= 0:
            act = ActuationCommand(float(self.act_throttle[slot]),
                                   float(self.act_brake[slot]),
                                   float(self.act_steering[slot]))
        bus = ChannelBus()
        for name, payload, origin in (
                ("sensing", self.bundles[slot], self.sense_origin[slot]),
                ("perception", self.detections[slot],
                 self.percept_origin[slot]),
                ("world_model", self.models[slot],
                 self.model_origin[slot]),
                ("planning", plan, self.plan_origin[slot]),
                ("actuation", act, self.act_origin[slot])):
            state = bus._states[name]
            state.payload = payload
            state.origin = None if origin < 0 else int(origin)
        channel_faults, channels = bus.snapshot()
        return PipelineSnapshot(
            tick_index=int(self.tick[slot]),
            sensors=SensorSnapshot(
                rng_state=self.rngs[slot].bit_generator.state,
                last_speed=self.accel_last_v[slot],
                last_time=self.accel_last_t[slot]),
            tracker=self.trackers[slot].snapshot(),
            localizer=LocalizerSnapshot(
                mean=(np.array(self.loc_mean[:, slot])
                      if self.loc_has[slot] else None),
                covariance=(self.loc_cov[:, slot].reshape(4, 4).copy()
                            if self.loc_has[slot] else None)),
            controller=ControllerSnapshot(
                integral=float(self.pid_integral[slot]),
                last_error=(float(self.pid_last_error[slot])
                            if self.pid_has_last[slot] else None),
                last_command=(float(self.last_throttle[slot]),
                              float(self.last_brake[slot]),
                              float(self.last_steering[slot]))),
            plan=copy.deepcopy(plan),
            model=copy.deepcopy(self.models[slot]),
            command=(float(self.cmd_throttle[slot]),
                     float(self.cmd_brake[slot]),
                     float(self.cmd_steering[slot])),
            faults=tuple((f.variable.name, f.value, f.start_tick,
                          f.duration_ticks, f.landed)
                         for f in pipeline.faults),
            channel_faults=channel_faults,
            channels=channels,
            degraded_ticks=pipeline._degraded_ticks)
