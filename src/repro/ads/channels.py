"""Typed-channel fault bus and graceful-degradation policy.

The ADS pipeline moves data between modules over five typed message
boundaries — the same stage names as :mod:`repro.ads.variables`:
``sensing -> perception -> world_model -> planning -> actuation``.
Value-corruption faults mutate a field *inside* a message; the
interface fault family modeled here attacks the boundary itself, the
failure mode AVFI and the CARLA experience report found dominates real
AV incidents: messages that are dropped, frozen, delayed, reordered,
or never produced because the module hung.

:class:`ChannelBus` sits at each boundary.  Every delivery records the
payload and its *origin tick*, so staleness is simply ``tick -
origin`` — which makes the planner's divided update rate (a plan is
naturally one or more ticks old between planning ticks) fall out with
no special casing.  The five fault kinds:

``drop``
    The fresh message is lost for the fault window; the consumer sees
    the last-good payload and its age grows.
``freeze``
    The producer's output is stuck replaying the last-good value.  In
    this lockstep single-queue architecture ``drop`` and ``freeze``
    are delivery-equivalent (both hold last-good); they are kept as
    distinct kinds because they map to distinct real-world causes and
    downstream triage wants the taxonomy.
``delay``
    Deliveries shift through a bounded FIFO of depth ``param`` — the
    consumer sees the payload from ``param`` ticks ago once the queue
    warms up, and snaps back to fresh data when the window closes.
``jitter``
    Seeded reordering: the delivered payload is drawn from a window of
    the ``param`` most recent messages by a stateless integer hash of
    ``(channel, start_tick, tick, param)`` — deterministic, and
    restore-safe because there is no RNG state to snapshot.
``hang``
    The producing module skips its update entirely (its internal state
    freezes) and the consumer reads the bus-held last-good payload.
    ``hung()`` reports ``False`` until something has been delivered,
    so the first tick always produces.

All bookkeeping on the fault-free path is reference assignment and
integer compares — no payload copies, no float arithmetic — so a bus
with no armed faults is an exact no-op on the simulation trace.

:class:`DegradationConfig` is the system-under-test half: when a
*critical* channel's age exceeds ``ttl_ticks`` the pipeline abandons
the normal controller and emits a safe-stop command (zero throttle,
configured brake, steering held).  Experiments record whether the
fallback engaged so campaigns can separate *masked-by-degradation*
outcomes from genuine safety violations.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

#: Typed message boundaries, in pipeline order (mirrors
#: ``repro.ads.variables.STAGES``).
CHANNELS = ("sensing", "perception", "world_model", "planning", "actuation")

#: The interface fault family.
INTERFACE_KINDS = ("drop", "freeze", "delay", "jitter", "hang")

#: Default fault parameter per kind: queue depth for ``delay``,
#: reorder window for ``jitter``, unused otherwise.
DEFAULT_INTERFACE_PARAMS = {
    "drop": 0, "freeze": 0, "delay": 2, "jitter": 2, "hang": 0,
}

#: Channels whose staleness forces the safe-stop fallback: the
#: controller consumes the sensor bundle every tick and the plan every
#: tick, so either going stale starves actuation of real data.
CRITICAL_CHANNELS = ("sensing", "planning")


@dataclass(frozen=True)
class DegradationConfig:
    """Graceful-degradation policy for stale critical inputs.

    ``ttl_ticks`` is the staleness budget: strictly older than this
    and the safe-stop fallback engages.  The default of 4 comfortably
    clears the planner's natural age (``planner_divisor - 1`` ticks)
    while catching any held-for-a-window interface fault.
    """

    enabled: bool = True
    ttl_ticks: int = 4
    brake_level: float = 0.8
    critical_channels: tuple = CRITICAL_CHANNELS


@dataclass
class ChannelFault:
    """An armed interface fault on one channel (mutable: ``landed``)."""

    kind: str
    channel: str
    start_tick: int
    duration_ticks: int = 2
    param: int = 0
    landed: bool = False

    def active(self, tick: int) -> bool:
        return self.start_tick <= tick < self.start_tick + self.duration_ticks


def _mix(a: int, b: int, c: int, d: int) -> int:
    """Stateless 32-bit avalanche mix — the jitter fault's seeded,
    snapshot-free source of per-tick reorder choices."""
    x = (a * 0x9E3779B1 ^ b * 0x85EBCA77 ^ c * 0xC2B2AE3D
         ^ d * 0x27D4EB2F) & 0xFFFFFFFF
    x ^= x >> 16
    x = (x * 0x7FEB352D) & 0xFFFFFFFF
    x ^= x >> 15
    x = (x * 0x846CA68B) & 0xFFFFFFFF
    x ^= x >> 16
    return x


class _ChannelState:
    """Per-channel delivery bookkeeping."""

    __slots__ = ("payload", "origin", "queue", "buffer")

    def __init__(self):
        self.payload = None       # last delivered payload
        self.origin = None        # tick that payload was produced
        self.queue = []           # delay FIFO of (payload, origin)
        self.buffer = []          # jitter window of (payload, origin)


class ChannelBus:
    """Deterministic interface-fault delivery at the stage boundaries."""

    def __init__(self):
        self.faults: list[ChannelFault] = []
        self._states = {name: _ChannelState() for name in CHANNELS}

    # -- arming --------------------------------------------------------------

    def arm(self, kind: str, channel: str, start_tick: int,
            duration_ticks: int = 2, param: int = 0) -> ChannelFault:
        if kind not in INTERFACE_KINDS:
            raise KeyError(f"unknown interface fault kind {kind!r}; "
                           f"expected one of {list(INTERFACE_KINDS)}")
        if channel not in CHANNELS:
            raise KeyError(f"unknown channel {channel!r}; "
                           f"expected one of {list(CHANNELS)}")
        fault = ChannelFault(kind=kind, channel=channel,
                             start_tick=int(start_tick),
                             duration_ticks=int(duration_ticks),
                             param=int(param))
        self.faults.append(fault)
        return fault

    def _active(self, channel: str, tick: int) -> ChannelFault | None:
        for fault in self.faults:
            if fault.channel == channel and fault.active(tick):
                return fault
        return None

    # -- delivery ------------------------------------------------------------

    def hung(self, channel: str, tick: int) -> bool:
        """True when an active ``hang`` should skip the producer.

        Never hangs before the first successful delivery: the consumer
        must have *something*, so the first tick always produces.
        """
        fault = self._active(channel, tick)
        if fault is None or fault.kind != "hang":
            return False
        if self._states[channel].payload is None:
            return False
        fault.landed = True
        return True

    def held(self, channel: str):
        """The last-good payload a hung module's consumer reads."""
        return self._states[channel].payload

    def deliver(self, channel: str, payload, tick: int):
        """Route one message through the boundary; returns what the
        consumer sees and records staleness."""
        state = self._states[channel]
        fault = self._active(channel, tick)
        if fault is None or fault.kind == "hang":
            # Fault-free (or hang, which never reaches deliver for an
            # active window): pass through and refresh last-good.
            state.payload = payload
            state.origin = tick
            if state.queue:
                state.queue.clear()
            if state.buffer:
                state.buffer.clear()
            return payload
        if fault.kind in ("drop", "freeze"):
            if state.payload is None:
                state.payload = payload
                state.origin = tick
                return payload
            fault.landed = True
            return state.payload
        if fault.kind == "delay":
            depth = max(1, fault.param)
            state.queue.append((payload, tick))
            if len(state.queue) > depth:
                delivered, origin = state.queue.pop(0)
            elif state.payload is not None:
                delivered, origin = state.payload, state.origin
            else:
                delivered, origin = state.queue[0]
            if origin != tick:
                fault.landed = True
            state.payload = delivered
            state.origin = origin
            return delivered
        # jitter
        window = max(2, fault.param)
        state.buffer.append((payload, tick))
        if len(state.buffer) > window:
            state.buffer.pop(0)
        index = _mix(CHANNELS.index(channel), fault.start_tick,
                     tick, fault.param) % len(state.buffer)
        delivered, origin = state.buffer[index]
        if origin != tick:
            fault.landed = True
        state.payload = delivered
        state.origin = origin
        return delivered

    # -- staleness -----------------------------------------------------------

    def age(self, channel: str, tick: int) -> int:
        """Ticks since the payload the consumer currently sees was
        produced (0 before anything has been delivered)."""
        origin = self._states[channel].origin
        if origin is None:
            return 0
        return max(0, tick - origin)

    @property
    def landed(self) -> bool:
        return any(fault.landed for fault in self.faults)

    # -- snapshot / restore --------------------------------------------------

    def snapshot(self) -> tuple[tuple, bytes]:
        """(faults, channels-blob) state for checkpoint ladders.

        The channel states (held payloads, delay queues, jitter
        windows) are stored as one pickle blob rather than embedded
        object graphs: the pickle *is* the deep copy, and a ``bytes``
        field keeps ``pickle.dumps`` of the enclosing snapshot
        byte-stable across save/load round trips (numpy scalars inside
        payloads would otherwise lose dtype sharing with the snapshot's
        arrays and change the serialized length).
        """
        faults = tuple((f.kind, f.channel, f.param, f.start_tick,
                        f.duration_ticks, f.landed) for f in self.faults)
        channels = tuple(
            (name, state.payload, state.origin,
             tuple(state.queue), tuple(state.buffer))
            for name, state in self._states.items())
        return faults, pickle.dumps(channels,
                                    protocol=pickle.HIGHEST_PROTOCOL)

    def restore(self, faults: tuple, channels: bytes | None) -> None:
        self.faults = [
            ChannelFault(kind=kind, channel=channel, start_tick=start,
                         duration_ticks=duration, param=param, landed=landed)
            for kind, channel, param, start, duration, landed in faults]
        self._states = {name: _ChannelState() for name in CHANNELS}
        entries = pickle.loads(channels) if channels else ()
        for name, payload, origin, queue, buffer in entries:
            state = self._states[name]
            state.payload = payload
            state.origin = origin
            state.queue = list(queue)
            state.buffer = list(buffer)
