"""Typed messages exchanged between ADS modules.

These are the paper's instrumented interfaces: sensor inputs ``I_t``,
inertial measurements ``M_t``, the ML-module state ``S_t`` (world model
``W_t``), raw actuation ``U_A,t`` from the planner, and the smoothed
actuation ``A_t`` from the PID controller.  Fault injection targets the
fields of these messages (Fig. 10 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.fastmath import clip_scalar


@dataclass
class Detection:
    """One perceived object, in ego-relative road coordinates."""

    x: float                 # longitudinal position (m, world frame)
    y: float                 # lateral position (m, world frame)
    v: float = 0.0           # longitudinal speed estimate (m/s)
    sensor: str = "camera"


@dataclass
class GpsFix:
    """Satellite position fix for the ego vehicle."""

    x: float
    y: float


@dataclass
class ImuSample:
    """Inertial measurement of the ego vehicle (paper's ``M_t``)."""

    v: float                 # speed (m/s)
    a: float = 0.0           # longitudinal acceleration (m/s^2)
    yaw_rate: float = 0.0    # rad/s
    heading: float = 0.0     # rad


@dataclass
class SensorBundle:
    """Everything the sensing layer hands to perception (``I_t`` + ``M_t``)."""

    time: float
    camera: list[Detection] = field(default_factory=list)
    radar: list[Detection] = field(default_factory=list)
    gps: GpsFix = field(default_factory=lambda: GpsFix(0.0, 0.0))
    imu: ImuSample = field(default_factory=lambda: ImuSample(0.0))
    lane_offset: float = 0.0      # camera lane sensing: offset from center
    lane_heading: float = 0.0     # relative heading to lane direction


@dataclass
class TrackedObject:
    """A Kalman-tracked object in the world model ``W_t``."""

    track_id: int
    x: float
    y: float
    vx: float
    vy: float
    age: int = 0
    misses: int = 0

    @property
    def speed(self) -> float:
        """Longitudinal speed (highway convention: motion along x)."""
        return self.vx


@dataclass
class EgoEstimate:
    """Localization output: fused ego pose and speed."""

    x: float
    y: float
    v: float
    theta: float


@dataclass
class WorldModel:
    """The ML-module state ``S_t``: ego estimate + tracked objects + lane."""

    time: float
    ego: EgoEstimate
    tracks: list[TrackedObject] = field(default_factory=list)
    lane_offset: float = 0.0
    lane_heading: float = 0.0
    # Memoized lead selection per corridor width: the planner and the
    # fault-variable setters each re-derive the lead every planning
    # tick.  Any mutation that can change the selection (track x, ego x)
    # must call invalidate_lead_cache().
    _lead_cache: dict = field(default_factory=dict, init=False,
                              repr=False, compare=False)

    def lead_track(self, corridor_half_width: float = 1.9
                   ) -> TrackedObject | None:
        """Nearest tracked object ahead within the travel corridor."""
        try:
            return self._lead_cache[corridor_half_width]
        except KeyError:
            pass
        lead = None
        for track in self.tracks:
            if track.x <= self.ego.x:
                continue
            if abs(track.y - self.ego.y) > corridor_half_width:
                continue
            if lead is None or track.x < lead.x:
                lead = track
        self._lead_cache[corridor_half_width] = lead
        return lead

    def invalidate_lead_cache(self) -> None:
        """Drop memoized leads after a selection-relevant mutation."""
        self._lead_cache.clear()


@dataclass
class PlannerOutput:
    """Raw actuation ``U_A,t`` plus the planner's internal targets."""

    target_speed: float      # v_p: planned speed (m/s)
    throttle: float          # u_zeta in [0, 1]
    brake: float             # u_b in [0, 1]
    steering: float          # u_phi (rad)
    gap: float               # planner's believed bumper gap to lead (m)
    closing_speed: float     # ego speed minus lead speed (m/s)


@dataclass
class ActuationCommand:
    """Smoothed actuation ``A_t`` sent to the vehicle."""

    throttle: float
    brake: float
    steering: float

    def clipped(self) -> "ActuationCommand":
        """Physical range enforcement."""
        return ActuationCommand(clip_scalar(self.throttle, 0.0, 1.0),
                                clip_scalar(self.brake, 0.0, 1.0),
                                clip_scalar(self.steering, -0.55, 0.55))
