"""Rendering helpers: ASCII tables and CSV series for every experiment."""

from __future__ import annotations

import io
from collections.abc import Iterable, Sequence


def ascii_table(headers: Sequence[str],
                rows: Iterable[Sequence[object]]) -> str:
    """A fixed-width table, the output format of every bench."""
    materialized = [[_format(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    out = io.StringIO()
    divider = "-+-".join("-" * w for w in widths)
    out.write(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.write("\n" + divider + "\n")
    for row in materialized:
        out.write(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        out.write("\n")
    return out.getvalue()


def csv_series(headers: Sequence[str],
               rows: Iterable[Sequence[object]]) -> str:
    """Comma-separated series (for plotting the figure benches)."""
    lines = [",".join(headers)]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        lines.append(",".join(_format(cell) for cell in row))
    return "\n".join(lines) + "\n"


def _format(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
