"""Campaign-level metrics: acceleration factor, yields, extrapolations."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.campaign import BayesianCampaignResult
from ..core.results import CampaignSummary


@dataclass(frozen=True)
class AccelerationReport:
    """The paper's headline comparison (E2).

    ``exhaustive_seconds`` is the extrapolated cost of running the full
    min/max grid; ``bayesian_seconds`` covers training + mining +
    validating the mined faults.  The paper's analogue: 615 days vs
    < 4 hours = 3690x.
    """

    grid_experiments: int
    per_experiment_seconds: float
    exhaustive_seconds: float
    bayesian_seconds: float
    critical_found: int
    hazards_confirmed: int

    @property
    def acceleration_factor(self) -> float:
        """Exhaustive cost over Bayesian cost."""
        if self.bayesian_seconds <= 0:
            return float("inf")
        return self.exhaustive_seconds / self.bayesian_seconds

    @property
    def precision(self) -> float:
        """Confirmed hazards per mined fault (paper: 460/561 = 82%)."""
        if self.critical_found == 0:
            return 0.0
        return self.hazards_confirmed / self.critical_found


def acceleration_report(grid_experiments: int,
                        sample: CampaignSummary,
                        bayesian: BayesianCampaignResult
                        ) -> AccelerationReport:
    """Build the E2 comparison from a grid sample and a Bayesian run.

    ``sample`` is any strided subsample of the exhaustive grid; its mean
    per-experiment wall time extrapolates the full-grid cost, exactly as
    the paper extrapolates 615 days from per-experiment duration.
    """
    if sample.total == 0:
        raise ValueError("need at least one sampled experiment")
    per_experiment = sample.wall_seconds / sample.total
    return AccelerationReport(
        grid_experiments=grid_experiments,
        per_experiment_seconds=per_experiment,
        exhaustive_seconds=per_experiment * grid_experiments,
        bayesian_seconds=bayesian.total_wall_seconds,
        critical_found=len(bayesian.candidates),
        hazards_confirmed=bayesian.summary.hazards)


def hazard_table(summary: CampaignSummary) -> list[tuple[str, int, int, float]]:
    """Per-variable (experiments, hazards, rate) rows, highest rate first."""
    experiments = summary.experiments_by_variable()
    hazards = summary.hazards_by_variable()
    rows = []
    for variable, count in experiments.items():
        n_hazards = hazards.get(variable, 0)
        rows.append((variable, count, n_hazards,
                     n_hazards / count if count else 0.0))
    rows.sort(key=lambda row: (-row[3], row[0]))
    return rows


@dataclass(frozen=True)
class DegradationReport:
    """Efficacy of the graceful-degradation fallback in one campaign.

    ``engaged`` counts experiments where the safe-stop fallback took
    command at least once; ``masked`` is the subset that still ended
    hazard-free — the faults degradation absorbed.  ``violations`` are
    experiments that ended hazardous *despite* the fallback engaging:
    the residual the staleness TTL did not cover.
    """

    total: int
    engaged: int
    masked: int

    @property
    def violations(self) -> int:
        """Experiments where degradation engaged but a hazard landed."""
        return self.engaged - self.masked

    @property
    def mask_rate(self) -> float:
        """Masked fraction of degradation-engaged experiments."""
        if self.engaged == 0:
            return 0.0
        return self.masked / self.engaged


def degradation_report(summary: CampaignSummary) -> DegradationReport:
    """Fold a campaign summary into the masked-vs-violation split."""
    return DegradationReport(total=summary.total,
                             engaged=summary.degraded,
                             masked=summary.masked)


def delta_distribution(deltas: np.ndarray,
                       edges: list[float] | None = None
                       ) -> list[tuple[str, int]]:
    """Histogram of safety potentials for the scene study (E4)."""
    deltas = np.asarray(deltas, dtype=float)
    edges = edges or [-np.inf, 0.0, 5.0, 15.0, 40.0, 100.0, np.inf]
    rows = []
    for low, high in zip(edges[:-1], edges[1:]):
        count = int(np.sum((deltas > low) & (deltas <= high)))
        label = f"({low:g}, {high:g}]"
        rows.append((label, count))
    return rows


def critical_scene_count(deltas: np.ndarray,
                         threshold: float = 5.0) -> int:
    """Scenes whose margin is at or below ``threshold`` metres."""
    return int(np.sum(np.asarray(deltas) <= threshold))
