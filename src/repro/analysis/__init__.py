"""Analysis: campaign metrics and table/series rendering."""

from .metrics import (AccelerationReport, DegradationReport,
                      acceleration_report, critical_scene_count,
                      degradation_report, delta_distribution, hazard_table)
from .report import ascii_table, csv_series

__all__ = [
    "AccelerationReport",
    "acceleration_report",
    "DegradationReport",
    "degradation_report",
    "hazard_table",
    "delta_distribution",
    "critical_scene_count",
    "ascii_table",
    "csv_series",
]
