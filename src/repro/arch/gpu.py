"""A GPU-flavoured executor: many lanes running the same kernel (SIMT).

The paper injects into GPU architectural state; the distinguishing
feature versus a CPU is that one corrupted lane silently poisons one
element of a wide result while the other lanes complete normally.
:class:`GPUExecutor` models exactly that: ``n_lanes`` independent
register files and data memories executing one program, with injection
targeted at a single lane.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .injector import ArchitecturalInjector, InjectionResult, Outcome
from .kernels import Kernel


@dataclass(frozen=True)
class WarpResult:
    """Outcome of one warp-level injection experiment.

    ``lane_results`` has one entry per lane; only ``faulty_lane`` saw the
    flip.  The warp outcome is the worst lane outcome, because a crashed
    or hung lane stalls the warp and an SDC lane corrupts the batch.
    """

    faulty_lane: int
    lane_results: tuple[InjectionResult | None, ...]
    warp_outcome: Outcome


_SEVERITY = {Outcome.MASKED: 0, Outcome.SDC: 1, Outcome.HANG: 2,
             Outcome.CRASH: 3}


class GPUExecutor:
    """SIMT execution of one kernel across independent lanes."""

    def __init__(self, kernel: Kernel, n_lanes: int = 8):
        if n_lanes < 1:
            raise ValueError("need at least one lane")
        self.kernel = kernel
        self.n_lanes = n_lanes
        self._injector = ArchitecturalInjector(kernel)

    def run_batch(self, rng: np.random.Generator) -> list[np.ndarray]:
        """Fault-free execution of every lane; returns per-lane outputs."""
        outputs = []
        for _ in range(self.n_lanes):
            inputs = self.kernel.make_inputs(rng)
            golden, _ = self._injector.golden_run(inputs)
            outputs.append(golden)
        return outputs

    def inject_warp(self, rng: np.random.Generator) -> WarpResult:
        """Inject into one random lane of a warp-wide execution."""
        faulty_lane = int(rng.integers(self.n_lanes))
        lane_results: list[InjectionResult | None] = []
        for lane in range(self.n_lanes):
            inputs = self.kernel.make_inputs(rng)
            if lane == faulty_lane:
                lane_results.append(self._injector.inject(rng, inputs))
            else:
                self._injector.golden_run(inputs)
                lane_results.append(None)
        fault = lane_results[faulty_lane]
        return WarpResult(faulty_lane=faulty_lane,
                          lane_results=tuple(lane_results),
                          warp_outcome=fault.outcome)

    @staticmethod
    def worst_outcome(outcomes: list[Outcome]) -> Outcome:
        """Most severe of several outcomes (CRASH > HANG > SDC > MASKED)."""
        if not outcomes:
            raise ValueError("no outcomes")
        return max(outcomes, key=lambda outcome: _SEVERITY[outcome])
