"""A tiny register ISA and its interpreter.

The ISA is just rich enough to express real ADS kernels (matrix products,
Kalman updates, PID and IDM math) with loops and indexed memory access:

=========  =======================================================
LI         dst <- immediate
MOV        dst <- a
ADD/SUB    dst <- a (op) b          (registers)
MUL/DIV    dst <- a (op) b
MIN/MAX    dst <- min/max(a, b)
ABS/SQRT   dst <- |a| / sqrt(a)
ADDI       dst <- a + immediate
LOAD       dst <- memory[base_imm + int(reg_index)]
STORE      memory[base_imm + int(reg_index)] <- src
JNZ        jump to label if register != 0
JMP        unconditional jump
HALT       stop
=========  =======================================================

Registers hold float64; address indices truncate the float, so a bit flip
in an index register can throw an access out of bounds (a crash) and a
flip in a loop counter can spin the program past its instruction budget
(a hang).  That is exactly the fault-manifestation surface the paper's
GPU/CPU injectors exercise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .memory import MemoryAccessError, MemoryModel

N_REGISTERS = 32

OPS = ("LI", "MOV", "ADD", "SUB", "MUL", "DIV", "MIN", "MAX", "ABS",
       "SQRT", "ADDI", "LOAD", "STORE", "JNZ", "JMP", "HALT")


class TrapError(Exception):
    """An architectural trap (invalid access, illegal instruction)."""


class HangError(Exception):
    """Dynamic instruction budget exceeded."""


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction; unused fields stay ``None``."""

    op: str
    dst: int | None = None
    a: int | None = None
    b: int | None = None
    imm: float | None = None
    target: int | None = None   # resolved jump destination

    def __post_init__(self):
        if self.op not in OPS:
            raise TrapError(f"illegal opcode {self.op!r}")


@dataclass
class Program:
    """A sequence of instructions plus its I/O contract.

    ``input_base``/``output_base`` describe where the kernel reads and
    writes in memory, so the injector can set up inputs and compare
    outputs without knowing kernel internals.
    """

    instructions: list[Instruction]
    input_base: int = 0
    input_length: int = 0
    output_base: int = 0
    output_length: int = 0
    name: str = "kernel"


@dataclass
class CPUState:
    """Architectural state visible to fault injection."""

    registers: np.ndarray = field(
        default_factory=lambda: np.zeros(N_REGISTERS, dtype=np.float64))
    pc: int = 0
    dynamic_count: int = 0


class Interpreter:
    """Executes programs, optionally invoking a per-instruction hook.

    The hook runs *before* each instruction with the live
    :class:`CPUState`; the architectural injector uses it to flip a
    register bit at an exact dynamic instruction index.
    """

    def __init__(self, memory: MemoryModel,
                 instruction_budget: int = 2_000_000):
        self.memory = memory
        self.instruction_budget = instruction_budget

    def run(self, program: Program, hook=None) -> CPUState:
        """Execute to HALT; returns the final architectural state.

        Raises :class:`TrapError` for invalid accesses and
        :class:`HangError` when the budget is exhausted.
        """
        state = CPUState()
        instructions = program.instructions
        n = len(instructions)
        # Corrupted registers legitimately produce inf/NaN arithmetic;
        # IEEE semantics, not errors.
        with np.errstate(all="ignore"):
            return self._run_loop(program, state, instructions, n, hook)

    def _run_loop(self, program: Program, state: CPUState,
                  instructions: list[Instruction], n: int,
                  hook) -> CPUState:
        while True:
            if state.pc < 0 or state.pc >= n:
                raise TrapError(f"control flow escaped program "
                                f"(pc={state.pc})")
            if state.dynamic_count >= self.instruction_budget:
                raise HangError(
                    f"budget of {self.instruction_budget} exceeded")
            if hook is not None:
                hook(state)
            instr = instructions[state.pc]
            state.dynamic_count += 1
            if instr.op == "HALT":
                return state
            self._execute(instr, state)

    def _execute(self, instr: Instruction, state: CPUState) -> None:
        regs = state.registers
        op = instr.op
        next_pc = state.pc + 1
        if op == "LI":
            regs[instr.dst] = instr.imm
        elif op == "MOV":
            regs[instr.dst] = regs[instr.a]
        elif op == "ADD":
            regs[instr.dst] = regs[instr.a] + regs[instr.b]
        elif op == "SUB":
            regs[instr.dst] = regs[instr.a] - regs[instr.b]
        elif op == "MUL":
            regs[instr.dst] = regs[instr.a] * regs[instr.b]
        elif op == "DIV":
            with np.errstate(divide="ignore", invalid="ignore"):
                regs[instr.dst] = regs[instr.a] / regs[instr.b]
        elif op == "MIN":
            regs[instr.dst] = min(regs[instr.a], regs[instr.b])
        elif op == "MAX":
            regs[instr.dst] = max(regs[instr.a], regs[instr.b])
        elif op == "ABS":
            regs[instr.dst] = abs(regs[instr.a])
        elif op == "SQRT":
            with np.errstate(invalid="ignore"):
                regs[instr.dst] = np.sqrt(regs[instr.a])
        elif op == "ADDI":
            regs[instr.dst] = regs[instr.a] + instr.imm
        elif op == "LOAD":
            regs[instr.dst] = self.memory.load(
                self._address(instr, regs))
        elif op == "STORE":
            self.memory.store(self._address(instr, regs), regs[instr.a])
        elif op == "JNZ":
            if regs[instr.a] != 0.0:
                next_pc = instr.target
        elif op == "JMP":
            next_pc = instr.target
        else:  # pragma: no cover - constructor validates opcodes
            raise TrapError(f"illegal opcode {op!r}")
        state.pc = next_pc

    @staticmethod
    def _address(instr: Instruction, regs: np.ndarray) -> int:
        index = regs[instr.b]
        if not np.isfinite(index):
            raise MemoryAccessError(f"non-finite address index {index}")
        return int(instr.imm) + int(index)


class Assembler:
    """Builds programs with symbolic labels.

    >>> asm = Assembler()
    >>> asm.li(0, 3.0)
    >>> asm.label("loop")
    >>> asm.addi(0, 0, -1.0)
    >>> asm.jnz(0, "loop")
    >>> asm.halt()
    >>> program = asm.assemble(name="countdown")
    """

    def __init__(self):
        self._instructions: list[dict] = []
        self._labels: dict[str, int] = {}

    def label(self, name: str) -> None:
        """Mark the next instruction's position."""
        if name in self._labels:
            raise ValueError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)

    def _emit(self, **fields) -> None:
        self._instructions.append(fields)

    def li(self, dst: int, imm: float) -> None:
        self._emit(op="LI", dst=dst, imm=float(imm))

    def mov(self, dst: int, a: int) -> None:
        self._emit(op="MOV", dst=dst, a=a)

    def add(self, dst: int, a: int, b: int) -> None:
        self._emit(op="ADD", dst=dst, a=a, b=b)

    def sub(self, dst: int, a: int, b: int) -> None:
        self._emit(op="SUB", dst=dst, a=a, b=b)

    def mul(self, dst: int, a: int, b: int) -> None:
        self._emit(op="MUL", dst=dst, a=a, b=b)

    def div(self, dst: int, a: int, b: int) -> None:
        self._emit(op="DIV", dst=dst, a=a, b=b)

    def minimum(self, dst: int, a: int, b: int) -> None:
        self._emit(op="MIN", dst=dst, a=a, b=b)

    def maximum(self, dst: int, a: int, b: int) -> None:
        self._emit(op="MAX", dst=dst, a=a, b=b)

    def absolute(self, dst: int, a: int) -> None:
        self._emit(op="ABS", dst=dst, a=a)

    def sqrt(self, dst: int, a: int) -> None:
        self._emit(op="SQRT", dst=dst, a=a)

    def addi(self, dst: int, a: int, imm: float) -> None:
        self._emit(op="ADDI", dst=dst, a=a, imm=float(imm))

    def load(self, dst: int, base: int, index_reg: int) -> None:
        self._emit(op="LOAD", dst=dst, b=index_reg, imm=float(base))

    def store(self, src: int, base: int, index_reg: int) -> None:
        self._emit(op="STORE", a=src, b=index_reg, imm=float(base))

    def jnz(self, reg: int, label: str) -> None:
        self._emit(op="JNZ", a=reg, label=label)

    def jmp(self, label: str) -> None:
        self._emit(op="JMP", label=label)

    def halt(self) -> None:
        self._emit(op="HALT")

    def assemble(self, name: str = "kernel", input_base: int = 0,
                 input_length: int = 0, output_base: int = 0,
                 output_length: int = 0) -> Program:
        """Resolve labels and produce an executable :class:`Program`."""
        instructions = []
        for fields in self._instructions:
            fields = dict(fields)
            label = fields.pop("label", None)
            if label is not None:
                if label not in self._labels:
                    raise ValueError(f"undefined label {label!r}")
                fields["target"] = self._labels[label]
            instructions.append(Instruction(**fields))
        return Program(instructions=instructions, name=name,
                       input_base=input_base, input_length=input_length,
                       output_base=output_base, output_length=output_length)
