"""ADS compute kernels compiled for the tiny ISA.

Each kernel is a real piece of ADS math — perception linear algebra,
tracker Kalman updates, controller PID steps, planner IDM acceleration —
expressed as an ISA program plus a numpy reference model.  The
architectural injector flips register bits while these run, which is how
fault model (a) ultimately manifests as corrupted module outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .isa import Assembler, Program

# Register conventions used by all kernels: r1-r9 scratch, r10+ locals.
_IDX, _COUNT, _ACC = 1, 2, 3


@dataclass(frozen=True)
class Kernel:
    """An ISA program plus its I/O contract and reference model."""

    name: str
    program: Program
    memory_size: int
    make_inputs: Callable[[np.random.Generator], np.ndarray]
    reference: Callable[[np.ndarray], np.ndarray]


def dot_kernel(n: int = 16) -> Kernel:
    """Dot product of two length-``n`` vectors (perception inner loop)."""
    a_base, b_base, out_base = 0, n, 2 * n
    asm = Assembler()
    asm.li(_IDX, 0.0)
    asm.li(_COUNT, float(n))
    asm.li(_ACC, 0.0)
    asm.label("loop")
    asm.load(4, a_base, _IDX)
    asm.load(5, b_base, _IDX)
    asm.mul(6, 4, 5)
    asm.add(_ACC, _ACC, 6)
    asm.addi(_IDX, _IDX, 1.0)
    asm.addi(_COUNT, _COUNT, -1.0)
    asm.jnz(_COUNT, "loop")
    asm.li(_IDX, 0.0)
    asm.store(_ACC, out_base, _IDX)
    asm.halt()
    program = asm.assemble(name=f"dot{n}", input_base=0, input_length=2 * n,
                           output_base=out_base, output_length=1)

    def make_inputs(rng: np.random.Generator) -> np.ndarray:
        return rng.normal(0.0, 1.0, size=2 * n)

    def reference(inputs: np.ndarray) -> np.ndarray:
        return np.array([inputs[:n] @ inputs[n:2 * n]])

    return Kernel(f"dot{n}", program, memory_size=2 * n + 1,
                  make_inputs=make_inputs, reference=reference)


def matmul_kernel(n: int = 4) -> Kernel:
    """Dense ``n x n`` matrix multiply (convolution/GEMM proxy)."""
    a_base, b_base, c_base = 0, n * n, 2 * n * n
    asm = Assembler()
    # r10 = i, r11 = j, r12 = k, r13 = i-countdown, r14 = j-countdown,
    # r15 = k-countdown
    asm.li(10, 0.0)
    asm.li(13, float(n))
    asm.label("i_loop")
    asm.li(11, 0.0)
    asm.li(14, float(n))
    asm.label("j_loop")
    asm.li(12, 0.0)
    asm.li(15, float(n))
    asm.li(_ACC, 0.0)
    asm.label("k_loop")
    # A[i*n + k]
    asm.li(4, float(n))
    asm.mul(5, 10, 4)
    asm.add(5, 5, 12)
    asm.load(6, a_base, 5)
    # B[k*n + j]
    asm.mul(7, 12, 4)
    asm.add(7, 7, 11)
    asm.load(8, b_base, 7)
    asm.mul(9, 6, 8)
    asm.add(_ACC, _ACC, 9)
    asm.addi(12, 12, 1.0)
    asm.addi(15, 15, -1.0)
    asm.jnz(15, "k_loop")
    # C[i*n + j] = acc
    asm.li(4, float(n))
    asm.mul(5, 10, 4)
    asm.add(5, 5, 11)
    asm.store(_ACC, c_base, 5)
    asm.addi(11, 11, 1.0)
    asm.addi(14, 14, -1.0)
    asm.jnz(14, "j_loop")
    asm.addi(10, 10, 1.0)
    asm.addi(13, 13, -1.0)
    asm.jnz(13, "i_loop")
    asm.halt()
    program = asm.assemble(name=f"matmul{n}", input_base=0,
                           input_length=2 * n * n, output_base=c_base,
                           output_length=n * n)

    def make_inputs(rng: np.random.Generator) -> np.ndarray:
        return rng.normal(0.0, 1.0, size=2 * n * n)

    def reference(inputs: np.ndarray) -> np.ndarray:
        a = inputs[:n * n].reshape(n, n)
        b = inputs[n * n:].reshape(n, n)
        return (a @ b).ravel()

    return Kernel(f"matmul{n}", program, memory_size=3 * n * n,
                  make_inputs=make_inputs, reference=reference)


def kalman_kernel() -> Kernel:
    """Scalar Kalman measurement update (tracker inner step).

    Inputs ``[x, p, z, r]``; outputs ``[x', p']`` with
    ``k = p / (p + r)``, ``x' = x + k (z - x)``, ``p' = (1 - k) p``.
    """
    asm = Assembler()
    asm.li(_IDX, 0.0)
    asm.load(10, 0, _IDX)      # x
    asm.li(_IDX, 1.0)
    asm.load(11, 0, _IDX)      # p
    asm.li(_IDX, 2.0)
    asm.load(12, 0, _IDX)      # z
    asm.li(_IDX, 3.0)
    asm.load(13, 0, _IDX)      # r
    asm.add(14, 11, 13)        # p + r
    asm.div(15, 11, 14)        # k
    asm.sub(16, 12, 10)        # z - x
    asm.mul(17, 15, 16)        # k (z - x)
    asm.add(18, 10, 17)        # x'
    asm.li(19, 1.0)
    asm.sub(20, 19, 15)        # 1 - k
    asm.mul(21, 20, 11)        # p'
    asm.li(_IDX, 0.0)
    asm.store(18, 4, _IDX)
    asm.li(_IDX, 1.0)
    asm.store(21, 4, _IDX)
    asm.halt()
    program = asm.assemble(name="kalman", input_base=0, input_length=4,
                           output_base=4, output_length=2)

    def make_inputs(rng: np.random.Generator) -> np.ndarray:
        return np.array([rng.normal(50.0, 10.0),    # x
                         rng.uniform(0.5, 4.0),     # p
                         rng.normal(50.0, 10.0),    # z
                         rng.uniform(0.1, 2.0)])    # r

    def reference(inputs: np.ndarray) -> np.ndarray:
        x, p, z, r = inputs
        k = p / (p + r)
        return np.array([x + k * (z - x), (1 - k) * p])

    return Kernel("kalman", program, memory_size=6,
                  make_inputs=make_inputs, reference=reference)


def pid_kernel() -> Kernel:
    """PID controller step (control module).

    Inputs ``[e, e_prev, integral, dt, kp, ki, kd]``;
    outputs ``[u, new_integral]``.
    """
    asm = Assembler()
    for register, index in ((10, 0), (11, 1), (12, 2), (13, 3), (14, 4),
                            (15, 5), (16, 6)):
        asm.li(_IDX, float(index))
        asm.load(register, 0, _IDX)
    asm.mul(17, 10, 13)        # e dt
    asm.add(18, 12, 17)        # new integral
    asm.sub(19, 10, 11)        # e - e_prev
    asm.div(20, 19, 13)        # derivative
    asm.mul(21, 14, 10)        # kp e
    asm.mul(22, 15, 18)        # ki integral
    asm.mul(23, 16, 20)        # kd derivative
    asm.add(24, 21, 22)
    asm.add(24, 24, 23)        # u
    asm.li(_IDX, 0.0)
    asm.store(24, 7, _IDX)
    asm.li(_IDX, 1.0)
    asm.store(18, 7, _IDX)
    asm.halt()
    program = asm.assemble(name="pid", input_base=0, input_length=7,
                           output_base=7, output_length=2)

    def make_inputs(rng: np.random.Generator) -> np.ndarray:
        return np.array([rng.normal(0.0, 2.0), rng.normal(0.0, 2.0),
                         rng.normal(0.0, 1.0), 0.05,
                         0.3, 0.05, 0.02])

    def reference(inputs: np.ndarray) -> np.ndarray:
        e, e_prev, integral, dt, kp, ki, kd = inputs
        new_integral = integral + e * dt
        u = kp * e + ki * new_integral + kd * (e - e_prev) / dt
        return np.array([u, new_integral])

    return Kernel("pid", program, memory_size=9,
                  make_inputs=make_inputs, reference=reference)


def idm_kernel() -> Kernel:
    """IDM acceleration (planner longitudinal policy).

    Inputs ``[v, v0, gap, closing, s0, T, a, b]``; output ``[accel]``.
    """
    asm = Assembler()
    for register, index in ((10, 0), (11, 1), (12, 2), (13, 3), (14, 4),
                            (15, 5), (16, 6), (17, 7)):
        asm.li(_IDX, float(index))
        asm.load(register, 0, _IDX)
    # s_star = s0 + v T + v closing / (2 sqrt(a b))
    asm.mul(18, 10, 15)        # v T
    asm.mul(19, 16, 17)        # a b
    asm.sqrt(20, 19)
    asm.addi(21, 20, 0.0)
    asm.add(21, 20, 20)        # 2 sqrt(a b)
    asm.mul(22, 10, 13)        # v closing
    asm.div(23, 22, 21)
    asm.add(24, 14, 18)
    asm.add(24, 24, 23)        # s_star
    # ratio terms
    asm.div(25, 10, 11)        # v / v0
    asm.mul(26, 25, 25)
    asm.mul(26, 26, 26)        # (v/v0)^4
    asm.div(27, 24, 12)        # s_star / gap
    asm.mul(28, 27, 27)        # squared
    asm.li(29, 1.0)
    asm.sub(30, 29, 26)
    asm.sub(30, 30, 28)
    asm.mul(31, 16, 30)        # a * (...)
    asm.li(_IDX, 0.0)
    asm.store(31, 8, _IDX)
    asm.halt()
    program = asm.assemble(name="idm", input_base=0, input_length=8,
                           output_base=8, output_length=1)

    def make_inputs(rng: np.random.Generator) -> np.ndarray:
        return np.array([rng.uniform(15.0, 35.0),   # v
                         31.0,                      # v0
                         rng.uniform(10.0, 150.0),  # gap
                         rng.uniform(-5.0, 5.0),    # closing
                         6.0, 1.4, 2.0, 3.0])

    def reference(inputs: np.ndarray) -> np.ndarray:
        v, v0, gap, closing, s0, t, a, b = inputs
        s_star = s0 + v * t + v * closing / (2 * np.sqrt(a * b))
        return np.array([a * (1 - (v / v0) ** 4 - (s_star / gap) ** 2)])

    return Kernel("idm", program, memory_size=9,
                  make_inputs=make_inputs, reference=reference)


def default_kernels() -> list[Kernel]:
    """The kernel set exercised by the architectural FI campaign (E1)."""
    return [dot_kernel(16), matmul_kernel(4), kalman_kernel(), pid_kernel(),
            idm_kernel()]
