"""The architectural fault injector (fault model (a) of the paper).

One injection experiment:

1. run the kernel fault-free to get the golden output and the dynamic
   instruction count,
2. pick a random (dynamic instruction, register, bit) triple,
3. re-run with a hook that flips that register bit at that instant,
4. classify the outcome:

   * ``MASKED`` — output bit-identical to golden (dead register, dead
     value, or logically masked),
   * ``SDC``    — silent data corruption: run completed, output differs,
   * ``CRASH``  — architectural trap (out-of-bounds access from a
     corrupted index, non-finite address),
   * ``HANG``   — instruction budget exceeded (corrupted loop counter).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from .bitflip import flip_bit
from .isa import HangError, Interpreter, TrapError
from .kernels import Kernel
from .memory import MemoryAccessError, MemoryModel


class Outcome(enum.Enum):
    """Classification of one architectural injection."""

    MASKED = "masked"
    SDC = "sdc"
    CRASH = "crash"
    HANG = "hang"


@dataclass(frozen=True)
class InjectionResult:
    """Full record of one architectural injection experiment."""

    kernel: str
    outcome: Outcome
    dynamic_index: int
    register: int
    bit: int
    golden_output: np.ndarray
    corrupted_output: np.ndarray | None
    relative_error: float

    @property
    def silent(self) -> bool:
        """True for silent corruptions (the dangerous class)."""
        return self.outcome is Outcome.SDC


class ArchitecturalInjector:
    """Runs golden and faulted executions of one kernel."""

    def __init__(self, kernel: Kernel, budget_multiplier: float = 10.0):
        self.kernel = kernel
        self.budget_multiplier = budget_multiplier

    def _fresh_memory(self, inputs: np.ndarray) -> MemoryModel:
        # Data memory is SECDED-protected in the paper's model, but the
        # interpreter writes through it functionally; protection only
        # blocks *injected* flips, which we direct at registers anyway.
        memory = MemoryModel(self.kernel.memory_size, protected=True)
        memory.write_block(self.kernel.program.input_base,
                           np.asarray(inputs, dtype=np.float64))
        return memory

    def golden_run(self, inputs: np.ndarray) -> tuple[np.ndarray, int]:
        """Fault-free execution: (outputs, dynamic instruction count)."""
        memory = self._fresh_memory(inputs)
        interpreter = Interpreter(memory)
        state = interpreter.run(self.kernel.program)
        outputs = memory.read_block(self.kernel.program.output_base,
                                    self.kernel.program.output_length)
        reference = self.kernel.reference(np.asarray(inputs, dtype=float))
        if not np.allclose(outputs, reference, rtol=1e-9, atol=1e-9,
                           equal_nan=True):
            raise AssertionError(
                f"kernel {self.kernel.name} disagrees with its reference "
                f"model: {outputs} vs {reference}")
        return outputs, state.dynamic_count

    def inject(self, rng: np.random.Generator,
               inputs: np.ndarray | None = None,
               n_bits: int = 1) -> InjectionResult:
        """One randomized register-bit-flip experiment."""
        if inputs is None:
            inputs = self.kernel.make_inputs(rng)
        golden, dynamic_count = self.golden_run(inputs)
        target_instruction = int(rng.integers(dynamic_count))
        register = int(rng.integers(1, 32))   # r0 is conventionally unused
        bits = [int(b) for b in rng.choice(64, size=n_bits, replace=False)]

        memory = self._fresh_memory(inputs)
        budget = max(int(dynamic_count * self.budget_multiplier), 10_000)
        interpreter = Interpreter(memory, instruction_budget=budget)
        injected = {"done": False}

        def hook(state) -> None:
            if not injected["done"] and (
                    state.dynamic_count == target_instruction):
                value = float(state.registers[register])
                for bit in bits:
                    value = flip_bit(value, bit)
                state.registers[register] = value
                injected["done"] = True

        try:
            interpreter.run(self.kernel.program, hook=hook)
        except (TrapError, MemoryAccessError):
            return self._result(Outcome.CRASH, target_instruction, register,
                                bits, golden, None)
        except HangError:
            return self._result(Outcome.HANG, target_instruction, register,
                                bits, golden, None)
        outputs = memory.read_block(self.kernel.program.output_base,
                                    self.kernel.program.output_length)
        if np.array_equal(outputs, golden, equal_nan=True):
            outcome = Outcome.MASKED
        else:
            outcome = Outcome.SDC
        return self._result(outcome, target_instruction, register, bits,
                            golden, outputs)

    def _result(self, outcome: Outcome, dynamic_index: int, register: int,
                bits: list[int], golden: np.ndarray,
                corrupted: np.ndarray | None) -> InjectionResult:
        relative_error = 0.0
        if corrupted is not None and outcome is Outcome.SDC:
            scale = float(np.max(np.abs(golden))) or 1.0
            difference = np.asarray(corrupted) - np.asarray(golden)
            if np.all(np.isfinite(difference)):
                relative_error = float(np.max(np.abs(difference)) / scale)
            else:
                relative_error = math.inf
        return InjectionResult(
            kernel=self.kernel.name, outcome=outcome,
            dynamic_index=dynamic_index, register=register, bit=bits[0],
            golden_output=golden, corrupted_output=corrupted,
            relative_error=relative_error)


def run_campaign(kernels: list[Kernel], n_injections: int,
                 seed: int = 0) -> list[InjectionResult]:
    """A randomized register-state campaign across several kernels."""
    rng = np.random.default_rng(seed)
    injectors = [ArchitecturalInjector(kernel) for kernel in kernels]
    results = []
    for _ in range(n_injections):
        injector = injectors[int(rng.integers(len(injectors)))]
        results.append(injector.inject(rng))
    return results


def inject_instruction_fault(kernel: Kernel, rng: np.random.Generator
                             ) -> InjectionResult:
    """One instruction-memory bit-flip experiment on ``kernel``.

    Mirrors :meth:`ArchitecturalInjector.inject` but corrupts the
    *encoded program* instead of a register: a flipped opcode traps at
    decode (CRASH), a flipped register field silently reroutes dataflow
    (SDC or MASKED), a flipped loop-target or counter can spin (HANG).
    """
    from .encoding import random_instruction_flip
    from .isa import Interpreter

    injector = ArchitecturalInjector(kernel)
    inputs = kernel.make_inputs(rng)
    golden, dynamic_count = injector.golden_run(inputs)
    index = int(rng.integers(len(kernel.program.instructions)))
    bit = int(rng.integers(64))
    try:
        from .encoding import flip_instruction_bit
        program = flip_instruction_bit(kernel.program, index, bit)
    except TrapError:
        return injector._result(Outcome.CRASH, index, -1, [bit], golden,
                                None)
    memory = injector._fresh_memory(inputs)
    budget = max(int(dynamic_count * injector.budget_multiplier), 10_000)
    interpreter = Interpreter(memory, instruction_budget=budget)
    try:
        interpreter.run(program)
    except (TrapError, MemoryAccessError):
        return injector._result(Outcome.CRASH, index, -1, [bit], golden,
                                None)
    except HangError:
        return injector._result(Outcome.HANG, index, -1, [bit], golden,
                                None)
    outputs = memory.read_block(program.output_base, program.output_length)
    outcome = (Outcome.MASKED if np.array_equal(outputs, golden,
                                                equal_nan=True)
               else Outcome.SDC)
    return injector._result(outcome, index, -1, [bit], golden, outputs)


def run_instruction_campaign(kernels: list[Kernel], n_injections: int,
                             seed: int = 0) -> list[InjectionResult]:
    """A randomized instruction-memory campaign across several kernels."""
    rng = np.random.default_rng(seed)
    results = []
    for _ in range(n_injections):
        kernel = kernels[int(rng.integers(len(kernels)))]
        results.append(inject_instruction_fault(kernel, rng))
    return results


def outcome_rates(results: list[InjectionResult]) -> dict[str, float]:
    """Fraction of each outcome class in a campaign."""
    total = len(results)
    if total == 0:
        raise ValueError("empty campaign")
    rates = {outcome.value: 0.0 for outcome in Outcome}
    for result in results:
        rates[result.outcome.value] += 1.0
    return {name: count / total for name, count in rates.items()}
