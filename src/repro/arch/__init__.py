"""Architectural fault-injection substrate: ISA, kernels, bit flips."""

from .bitflip import (bits_to_float, flip_bit, flip_bits, float_to_bits,
                      random_flip)
from .encoding import (decode_instruction, encode_instruction,
                       encode_program, flip_instruction_bit,
                       random_instruction_flip)
from .gpu import GPUExecutor, WarpResult
from .injector import (ArchitecturalInjector, InjectionResult, Outcome,
                       inject_instruction_fault, outcome_rates,
                       run_campaign, run_instruction_campaign)
from .isa import (N_REGISTERS, Assembler, CPUState, HangError, Instruction,
                  Interpreter, Program, TrapError)
from .kernels import (Kernel, default_kernels, dot_kernel, idm_kernel,
                      kalman_kernel, matmul_kernel, pid_kernel)
from .memory import MemoryAccessError, MemoryModel

__all__ = [
    "flip_bit",
    "flip_bits",
    "float_to_bits",
    "bits_to_float",
    "random_flip",
    "encode_instruction",
    "decode_instruction",
    "encode_program",
    "flip_instruction_bit",
    "random_instruction_flip",
    "MemoryModel",
    "MemoryAccessError",
    "N_REGISTERS",
    "Instruction",
    "Program",
    "CPUState",
    "Interpreter",
    "Assembler",
    "TrapError",
    "HangError",
    "Kernel",
    "dot_kernel",
    "matmul_kernel",
    "kalman_kernel",
    "pid_kernel",
    "idm_kernel",
    "default_kernels",
    "ArchitecturalInjector",
    "InjectionResult",
    "Outcome",
    "run_campaign",
    "inject_instruction_fault",
    "run_instruction_campaign",
    "outcome_rates",
    "GPUExecutor",
    "WarpResult",
]
