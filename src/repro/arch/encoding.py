"""Instruction encoding and instruction-memory fault injection.

Beyond register-state flips, real soft errors also strike instruction
queues and pipeline latches.  This module gives instructions a concrete
64-bit encoding so a bit flip can corrupt the *program* itself:

======  =============================
bits    field
0-7     opcode
8-15    dst register
16-23   a register
24-31   b register
32-63   immediate (float32 payload)
======  =============================

A flipped opcode usually decodes to an illegal instruction (a trap, i.e.
a detectable crash); a flipped register field silently redirects
dataflow (SDC or masked); a flipped immediate perturbs constants and
addresses.
"""

from __future__ import annotations

import struct

import numpy as np

from .isa import OPS, Instruction, Program, TrapError

_OPCODES = {name: index for index, name in enumerate(OPS)}
_NAMES = dict(enumerate(OPS))


def encode_instruction(instruction: Instruction) -> int:
    """Pack one instruction into its 64-bit word."""
    word = _OPCODES[instruction.op]
    word |= (instruction.dst or 0) << 8
    word |= (instruction.a or 0) << 16
    word |= (instruction.b or 0) << 24
    payload = instruction.imm
    if payload is None and instruction.target is not None:
        payload = float(instruction.target)
    payload_bits = struct.unpack(
        "<I", struct.pack("<f", float(payload or 0.0)))[0]
    word |= payload_bits << 32
    return word


def decode_instruction(word: int, has_target: bool = False) -> Instruction:
    """Unpack a 64-bit word; raises :class:`TrapError` on bad opcodes."""
    opcode = word & 0xFF
    if opcode not in _NAMES:
        raise TrapError(f"illegal opcode byte {opcode:#x}")
    op = _NAMES[opcode]
    dst = (word >> 8) & 0xFF
    a = (word >> 16) & 0xFF
    b = (word >> 24) & 0xFF
    payload = struct.unpack("<f", struct.pack("<I", (word >> 32)
                                              & 0xFFFFFFFF))[0]
    for register in (dst, a, b):
        if register >= 32:
            raise TrapError(f"register index {register} out of range")
    kwargs: dict = {"op": op}
    if op in ("LI", "MOV", "ADD", "SUB", "MUL", "DIV", "MIN", "MAX",
              "ABS", "SQRT", "ADDI", "LOAD"):
        kwargs["dst"] = dst
    if op in ("MOV", "ADD", "SUB", "MUL", "DIV", "MIN", "MAX", "ABS",
              "SQRT", "ADDI", "STORE", "JNZ"):
        kwargs["a"] = a
    if op in ("ADD", "SUB", "MUL", "DIV", "MIN", "MAX", "LOAD", "STORE"):
        kwargs["b"] = b
    if op in ("LI", "ADDI", "LOAD", "STORE"):
        kwargs["imm"] = payload
    if op in ("JNZ", "JMP"):
        kwargs["target"] = int(payload)
    return Instruction(**kwargs)


def encode_program(program: Program) -> list[int]:
    """Encode every instruction of a program."""
    return [encode_instruction(instr) for instr in program.instructions]


def flip_instruction_bit(program: Program, index: int,
                         bit: int) -> Program:
    """A new program with one bit flipped in one encoded instruction.

    Raises :class:`TrapError` at *decode* time if the flip produces an
    illegal instruction — matching hardware, where a corrupted opcode
    traps when it reaches decode, not when the particle struck.
    """
    if not 0 <= index < len(program.instructions):
        raise IndexError(f"instruction index {index} out of range")
    if not 0 <= bit < 64:
        raise ValueError(f"bit {bit} out of range")
    words = encode_program(program)
    words[index] ^= 1 << bit
    instructions = []
    for word in words:
        instructions.append(decode_instruction(word))
    return Program(instructions=instructions,
                   input_base=program.input_base,
                   input_length=program.input_length,
                   output_base=program.output_base,
                   output_length=program.output_length,
                   name=f"{program.name}+ibit")


def random_instruction_flip(program: Program,
                            rng: np.random.Generator) -> Program:
    """Flip one random bit in one random instruction (may trap)."""
    index = int(rng.integers(len(program.instructions)))
    bit = int(rng.integers(64))
    return flip_instruction_bit(program, index, bit)
