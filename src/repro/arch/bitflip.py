"""Bit-level corruption of IEEE-754 double values.

The paper's fault model (a) flips bits in non-ECC processor structures.
Register values are float64 here; flips act on the raw 64-bit pattern, so
an exponent-bit flip produces the huge silent corruptions that make
hardware faults dangerous, while low mantissa bits are usually benign.
"""

from __future__ import annotations

import numpy as np


def float_to_bits(value: float) -> int:
    """Raw 64-bit pattern of a double, as a Python int."""
    return int(np.float64(value).view(np.uint64))


def bits_to_float(bits: int) -> float:
    """Inverse of :func:`float_to_bits`."""
    return float(np.uint64(bits & 0xFFFFFFFFFFFFFFFF).view(np.float64))


def flip_bit(value: float, bit: int) -> float:
    """Flip one bit (0 = LSB of the mantissa, 63 = sign) of a double."""
    if not 0 <= bit < 64:
        raise ValueError(f"bit index {bit} out of range")
    return bits_to_float(float_to_bits(value) ^ (1 << bit))


def flip_bits(value: float, bits: list[int]) -> float:
    """Flip several bits (multi-bit upset)."""
    pattern = 0
    for bit in bits:
        if not 0 <= bit < 64:
            raise ValueError(f"bit index {bit} out of range")
        pattern ^= 1 << bit
    return bits_to_float(float_to_bits(value) ^ pattern)


def random_flip(value: float, rng: np.random.Generator,
                n_bits: int = 1) -> tuple[float, list[int]]:
    """Flip ``n_bits`` distinct random bits; returns (new value, bits)."""
    bits = [int(b) for b in rng.choice(64, size=n_bits, replace=False)]
    return flip_bits(value, bits), bits
