"""Memory model with SECDED protection.

The paper assumes memories and caches (CPU and GPU) are SECDED-protected,
so injected faults there are corrected; only architectural register state
is vulnerable.  :class:`MemoryModel` enforces that split: flips against
protected memory are corrected (and counted), flips against an
unprotected instance land.
"""

from __future__ import annotations

import numpy as np

from .bitflip import flip_bit


class MemoryAccessError(Exception):
    """Out-of-bounds access: the architectural analogue of a segfault."""


class MemoryModel:
    """A flat array of float64 words with optional SECDED protection."""

    def __init__(self, size: int, protected: bool = True):
        if size <= 0:
            raise ValueError("memory size must be positive")
        self.size = size
        self.protected = protected
        self.words = np.zeros(size, dtype=np.float64)
        self.corrected_flips = 0

    def _check(self, address: int) -> int:
        address = int(address)
        if not 0 <= address < self.size:
            raise MemoryAccessError(f"address {address} out of bounds "
                                    f"[0, {self.size})")
        return address

    def load(self, address: int) -> float:
        """Read one word."""
        return float(self.words[self._check(address)])

    def store(self, address: int, value: float) -> None:
        """Write one word."""
        self.words[self._check(address)] = value

    def write_block(self, address: int, values: np.ndarray) -> None:
        """Bulk initialization helper."""
        values = np.asarray(values, dtype=np.float64).ravel()
        self._check(address)
        if address + len(values) > self.size:
            raise MemoryAccessError("block write past end of memory")
        self.words[address:address + len(values)] = values

    def read_block(self, address: int, length: int) -> np.ndarray:
        """Bulk read helper."""
        self._check(address)
        if address + length > self.size:
            raise MemoryAccessError("block read past end of memory")
        return self.words[address:address + length].copy()

    def inject_flip(self, address: int, bit: int) -> bool:
        """Attempt a bit flip in memory.

        Returns ``True`` if the flip landed (unprotected memory) or
        ``False`` if SECDED corrected it.  Either way the attempt is
        architecturally valid — the paper's model simply corrects flips
        in protected structures.
        """
        address = self._check(address)
        if self.protected:
            self.corrected_flips += 1
            return False
        self.words[address] = flip_bit(float(self.words[address]), bit)
        return True
