"""Per-tenant FIFO queues and admission control.

Jobs queue FIFO *within* a tenant and the scheduler round-robins
*across* tenants, so one tenant flooding the service cannot starve
another.  :class:`AdmissionControl` decides whether a submission is
accepted at all: queue-depth caps (per tenant and global) and a disk
headroom floor produce explicit 429 backpressure instead of letting the
spool fill and every running campaign die on ``ENOSPC``.  When disk
headroom is gone the service enters *degraded mode* — running jobs
finish (their journals keep appending), but new work is refused and
``/readyz`` reports 503 so load balancers stop routing here.
"""

from __future__ import annotations

import shutil
from collections import OrderedDict, deque
from dataclasses import dataclass
from pathlib import Path


class TenantQueues:
    """FIFO within a tenant, round-robin across tenants."""

    def __init__(self):
        self._queues: "OrderedDict[str, deque]" = OrderedDict()

    def push(self, tenant: str, job_id: str) -> None:
        if tenant not in self._queues:
            self._queues[tenant] = deque()
        self._queues[tenant].append(job_id)

    def pop(self) -> str | None:
        """Next job id, rotating tenants so each gets a fair turn."""
        while self._queues:
            tenant, queue = next(iter(self._queues.items()))
            self._queues.move_to_end(tenant)
            if queue:
                job_id = queue.popleft()
                if not queue:
                    del self._queues[tenant]
                return job_id
            del self._queues[tenant]
        return None

    def remove(self, tenant: str, job_id: str) -> bool:
        queue = self._queues.get(tenant)
        if not queue or job_id not in queue:
            return False
        queue.remove(job_id)
        if not queue:
            del self._queues[tenant]
        return True

    def depth(self, tenant: str | None = None) -> int:
        if tenant is not None:
            return len(self._queues.get(tenant, ()))
        return sum(len(q) for q in self._queues.values())

    def __len__(self) -> int:
        return self.depth()


@dataclass(frozen=True)
class AdmissionDecision:
    accepted: bool
    reason: str = ""
    retry_after: float = 0.0


class AdmissionControl:
    """Bounded backpressure: queue depth caps and a disk headroom floor.

    ``retry_after`` scales with how loaded the refusal is: queue-full
    refusals suggest a short retry, disk refusals a longer one (freeing
    spool space is an operator action, not a transient).
    """

    def __init__(self, root: str | Path, *,
                 max_queue_depth: int = 64,
                 max_tenant_depth: int = 16,
                 min_disk_free_bytes: int = 256 * 1024 * 1024):
        self.root = Path(root)
        self.max_queue_depth = max_queue_depth
        self.max_tenant_depth = max_tenant_depth
        self.min_disk_free_bytes = min_disk_free_bytes

    def disk_free(self) -> int:
        try:
            return shutil.disk_usage(self.root).free
        except OSError:
            return 0

    def degraded(self) -> bool:
        """True when the spool is too full to accept new campaigns."""
        return self.disk_free() < self.min_disk_free_bytes

    def admit(self, queues: TenantQueues, tenant: str) -> AdmissionDecision:
        if self.degraded():
            free_mb = self.disk_free() // (1024 * 1024)
            return AdmissionDecision(
                False,
                f"degraded: {free_mb} MiB free under spool root, "
                f"need {self.min_disk_free_bytes // (1024 * 1024)} MiB",
                retry_after=30.0)
        if queues.depth() >= self.max_queue_depth:
            return AdmissionDecision(
                False, f"queue full ({queues.depth()} jobs queued)",
                retry_after=5.0)
        if queues.depth(tenant) >= self.max_tenant_depth:
            return AdmissionDecision(
                False,
                f"tenant {tenant!r} queue full "
                f"({queues.depth(tenant)} jobs queued)",
                retry_after=5.0)
        return AdmissionDecision(True)
