"""Always-on campaign service: ``repro serve``.

A long-lived asyncio HTTP/JSON surface over the campaign engine:
durable job lifecycle (:mod:`repro.service.jobs`), per-tenant FIFO
queueing with admission control (:mod:`repro.service.queue`), stuck-job
detection (:mod:`repro.service.watchdog`), the server itself
(:mod:`repro.service.server`), the campaign worker subprocess
(:mod:`repro.service.runner`), and a stdlib client
(:mod:`repro.service.client`).
"""

from .client import ServiceClient, ServiceError
from .jobs import (ACTIVE_STATES, TERMINAL_STATES, Job, JobJournal,
                   JobSpec, JobStore)
from .queue import AdmissionControl, AdmissionDecision, TenantQueues
from .server import CampaignService, ServiceConfig, ServiceThread, serve
from .watchdog import Watchdog

__all__ = [
    "ACTIVE_STATES",
    "TERMINAL_STATES",
    "Job",
    "JobJournal",
    "JobSpec",
    "JobStore",
    "AdmissionControl",
    "AdmissionDecision",
    "TenantQueues",
    "CampaignService",
    "ServiceConfig",
    "ServiceThread",
    "serve",
    "Watchdog",
    "ServiceClient",
    "ServiceError",
]
