"""Stuck-campaign detection via progress heartbeats.

Runner subprocesses emit an NDJSON event for every pipeline progress
callback, plus a periodic ``alive`` beat when a stage is legitimately
slow.  The watchdog scans running jobs and, when one has gone
``stall_timeout`` seconds without *any* event, hands it to the kill
callback — the server SIGKILLs the runner and requeues the job under
the retry policy (``resume=True``, so the restarted attempt replays the
completion journal instead of redoing finished experiments).
"""

from __future__ import annotations

import asyncio
import time


class Watchdog:
    """Periodic stall scanner over a ``{job_id: last_beat}`` table."""

    def __init__(self, *, stall_timeout: float = 120.0,
                 interval: float | None = None):
        self.stall_timeout = stall_timeout
        self.interval = interval if interval is not None else max(
            0.05, stall_timeout / 4.0)
        self._beats: dict[str, float] = {}

    def beat(self, job_id: str) -> None:
        self._beats[job_id] = time.monotonic()

    def forget(self, job_id: str) -> None:
        self._beats.pop(job_id, None)

    def stalled(self, now: float | None = None) -> list[str]:
        now = time.monotonic() if now is None else now
        return [job_id for job_id, last in self._beats.items()
                if now - last > self.stall_timeout]

    async def run(self, on_stall, stop: asyncio.Event) -> None:
        """Scan until ``stop``; ``on_stall(job_id)`` may be a coroutine."""
        while not stop.is_set():
            try:
                await asyncio.wait_for(stop.wait(), timeout=self.interval)
                return
            except asyncio.TimeoutError:
                pass
            for job_id in self.stalled():
                self.forget(job_id)       # one kill per stall episode
                result = on_stall(job_id)
                if asyncio.iscoroutine(result):
                    await result
