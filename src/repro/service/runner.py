"""Campaign worker subprocess: ``python -m repro.service.runner``.

The server never executes campaigns in-process — each running job is a
subprocess driving the existing campaign pipeline, reporting NDJSON
events on stdout:

* ``{"type": "progress", "stage", "scenario", "done", "total"}`` — one
  per pipeline progress callback (golden / train / mined / validated).
* ``{"type": "alive"}`` — a periodic beat from a background thread, so
  legitimately slow stages (golden collection of a long scenario) keep
  feeding the server watchdog between progress events.
* ``{"type": "done", "summary": ..., "journal": ...}`` or
  ``{"type": "error", "message": ...}`` — terminal.

A write to stdout failing with ``BrokenPipeError`` means the parent
server is gone (SIGKILLed, typically); the runner hard-exits rather
than finishing as an orphan — the restarted server requeues the job
with ``resume=True`` and the completion journal guarantees zero
re-executed experiments.

The argument is a JSON file: the :class:`~repro.service.jobs.JobSpec`
payload plus the runtime fields the server injects (``cache_dir``,
``record_path``, ``resume``, ``default_workers``).
"""

from __future__ import annotations

import dataclasses
import json
import os
import sys
import threading
import time

#: Seconds between ``alive`` beats (overridable for watchdog tests).
ALIVE_INTERVAL_ENV = "REPRO_SERVICE_ALIVE_INTERVAL"
#: Test hook (the sanctioned stuck-campaign chaos port): after N
#: emitted events the runner hangs inside its next beat — no further
#: events, no exit — exactly what a wedged simulation looks like to
#: the server watchdog.
STALL_AFTER_ENV = "REPRO_SERVICE_STALL_AFTER"

_emit_lock = threading.Lock()
_emitted = 0


def _emit(event: dict) -> None:
    global _emitted
    stall_after = os.environ.get(STALL_AFTER_ENV)
    with _emit_lock:
        if stall_after is not None and _emitted >= int(stall_after) \
                and event.get("type") in ("alive", "progress"):
            while True:                   # wedge (watchdog's problem now)
                time.sleep(60.0)
        _emitted += 1
        try:
            sys.stdout.write(json.dumps(event, separators=(",", ":")) + "\n")
            sys.stdout.flush()
        except BrokenPipeError:
            os._exit(1)                   # parent is dead; do not orphan


def resolve_scenarios(entries) -> list:
    """Name → scenario, searching defaults then scripted templates."""
    from ..sim.scenario import default_scenarios
    from ..sim.scenegen import scripted_templates
    library = {s.name: s for s in scripted_templates()}
    library.update({s.name: s for s in default_scenarios()})
    scenarios = []
    for name, duration in entries:
        if name not in library:
            raise KeyError(f"unknown scenario {name!r}")
        scenario = library[name]
        if duration is not None:
            scenario = dataclasses.replace(scenario, duration=duration)
        scenarios.append(scenario)
    return scenarios


def run_job(payload: dict) -> dict:
    """Execute the campaign described by ``payload``; returns the done
    event (progress/alive events are emitted as side effects)."""
    from ..core.campaign import Campaign, CampaignConfig
    from ..core.persistence import JsonlRecordSink
    from ..core.resilience import ResilienceConfig

    spec = payload["spec"]
    style = spec["style"]
    params = dict(spec.get("params") or {})
    scenarios = None
    if spec.get("scenarios"):
        scenarios = resolve_scenarios(
            [(entry["name"], entry.get("duration"))
             for entry in spec["scenarios"]])

    resilience = ResilienceConfig(
        resume=bool(payload.get("resume")),
        lease_mode=bool(spec.get("lease")),
    )
    # params carry campaign-call keywords (seed included) verbatim, so
    # a service job equals the same CLI invocation record-for-record.
    config = CampaignConfig(resilience=resilience)
    campaign = Campaign(scenarios=scenarios, config=config,
                        cache_dir=payload["cache_dir"])

    workers = spec.get("workers") or payload.get("default_workers")

    def on_progress(event) -> None:
        _emit({"type": "progress", "stage": event.stage,
               "scenario": event.scenario, "done": event.done,
               "total": event.total})

    style_tag = {"arch": "arch", "bayesian": "bayesian",
                 "exhaustive": "exhaustive"}.get(style, "random")
    extras: dict = {}
    with JsonlRecordSink(payload["record_path"], style=style_tag) as sink:
        if style == "random":
            summary = campaign.random_campaign(
                int(params.pop("n", 10)), workers=workers,
                record_sink=sink, on_progress=on_progress, **params)
        elif style == "exhaustive":
            summary = campaign.exhaustive_campaign(
                tick_stride=int(params.pop("tick_stride", 10)),
                max_experiments=params.pop("max_experiments", None),
                workers=workers, record_sink=sink,
                on_progress=on_progress, **params)
        elif style == "arch":
            summary, outcomes = campaign.architectural_campaign(
                int(params.pop("n", 25)), workers=workers,
                record_sink=sink, on_progress=on_progress, **params)
            extras["outcomes"] = dict(outcomes)
        else:                             # bayesian (validated by JobSpec)
            result = campaign.bayesian_campaign(
                top_k=params.pop("top_k", None),
                threshold=float(params.pop("threshold", 0.0)),
                workers=workers, record_sink=sink,
                on_progress=on_progress, **params)
            summary = result.summary
            extras["mined"] = len(result.candidates)
            extras["train_seconds"] = result.train_seconds

    done = {"type": "done",
            "summary": {"total": summary.total,
                        "hazards": summary.hazards,
                        "hazard_rate": summary.hazard_rate,
                        **extras}}
    journal = campaign._last_journal
    if journal is not None:
        done["journal"] = {"hits": journal.hits,
                           "appended": journal.appended}
    return done


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.service.runner <job.json>",
              file=sys.stderr)
        return 2
    payload = json.loads(open(argv[0]).read())

    interval = float(os.environ.get(ALIVE_INTERVAL_ENV, "5.0"))
    stop = threading.Event()

    def alive_loop() -> None:
        while not stop.wait(interval):
            _emit({"type": "alive"})

    beater = threading.Thread(target=alive_loop, daemon=True)
    beater.start()
    try:
        done = run_job(payload)
    except Exception as exc:              # report, don't traceback-spam
        stop.set()
        _emit({"type": "error",
               "message": f"{type(exc).__name__}: {exc}"})
        return 1
    stop.set()
    _emit(done)
    return 0


if __name__ == "__main__":
    sys.exit(main())
