"""Durable job lifecycle for the campaign service.

Jobs move through a small state machine::

    submitted -> queued -> running -> completed
                    ^         |   \\-> failed | cancelled
                    |         v
                    +---- draining      (graceful drain / requeue)

Every transition is persisted through :class:`JobJournal` — an
append-only sequence of single-event files written with the same
atomic, fsync'd pattern as the campaign completion journal
(:mod:`repro.core.ioutil`) — so a SIGKILL'd server replays the journal
on restart and recovers every job's state exactly.  Jobs that were
``running`` (or mid-``draining``) when the server died come back as
``queued`` with ``resume=True``: the campaign itself then resumes
through the completion journal with zero re-executed experiments.

Submissions are idempotency-keyed: the key (caller-provided, or the
canonical spec digest) maps to the existing job, so resubmitting a spec
returns that job instead of duplicating work — across restarts too,
because the mapping is journal-derived.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..core.ioutil import write_bytes_atomic

STYLES = ("random", "exhaustive", "arch", "bayesian")

#: Lifecycle states.
SUBMITTED = "submitted"
QUEUED = "queued"
RUNNING = "running"
DRAINING = "draining"
COMPLETED = "completed"
FAILED = "failed"
CANCELLED = "cancelled"

TERMINAL_STATES = frozenset({COMPLETED, FAILED, CANCELLED})
ACTIVE_STATES = frozenset({SUBMITTED, QUEUED, RUNNING, DRAINING})

#: Legal transitions; recovery additionally maps running/draining back
#: to queued (the crashed-server path).
_TRANSITIONS = {
    SUBMITTED: {QUEUED, CANCELLED},
    # queued -> queued: a failed launch attempt (spawn error) re-queues
    # the job while journaling the consumed attempt.
    QUEUED: {QUEUED, RUNNING, CANCELLED, FAILED},
    RUNNING: {DRAINING, COMPLETED, FAILED, CANCELLED, QUEUED},
    DRAINING: {QUEUED, COMPLETED, FAILED, CANCELLED},
    COMPLETED: set(),
    FAILED: set(),
    CANCELLED: set(),
}


class SpecError(ValueError):
    """A submission payload the service refuses (HTTP 400)."""


@dataclass(frozen=True)
class JobSpec:
    """A declarative campaign submission.

    ``scenarios`` is either ``None`` (the default scenario library) or
    a list of ``{"name": ..., "duration": ...}`` entries resolved by
    the runner against the named scenario builders (``duration``
    optional).  ``params`` carries the style's keyword arguments
    (``n``, ``seed``, ``top_k``, ``tick_stride``, ...).
    """

    style: str
    params: dict = field(default_factory=dict)
    scenarios: tuple | None = None
    workers: int | None = None
    lease: bool = False
    tenant: str = "default"

    @classmethod
    def from_dict(cls, payload: dict) -> "JobSpec":
        if not isinstance(payload, dict):
            raise SpecError("spec must be a JSON object")
        style = payload.get("style")
        if style not in STYLES:
            raise SpecError(f"spec.style must be one of {list(STYLES)}, "
                            f"got {style!r}")
        params = payload.get("params")
        if params is None:
            params = {}
        if not isinstance(params, dict):
            raise SpecError("spec.params must be an object")
        cls._validate_interface_params(params)
        scenarios = payload.get("scenarios")
        if scenarios is not None:
            if not isinstance(scenarios, list) or not scenarios:
                raise SpecError("spec.scenarios must be a non-empty list")
            entries = []
            for entry in scenarios:
                if not isinstance(entry, dict) or "name" not in entry:
                    raise SpecError("each scenario needs a 'name'")
                entries.append((str(entry["name"]),
                                None if entry.get("duration") is None
                                else float(entry["duration"])))
            scenarios = tuple(entries)
        workers = payload.get("workers")
        if workers is not None:
            workers = int(workers)
        tenant = str(payload.get("tenant") or "default")
        return cls(style=style, params=dict(params), scenarios=scenarios,
                   workers=workers, lease=bool(payload.get("lease", False)),
                   tenant=tenant)

    @staticmethod
    def _validate_interface_params(params: dict) -> None:
        """Refuse unknown interface-fault kinds/channels at submission.

        A bad entry would otherwise be accepted, queued, and only blow
        up mid-campaign inside the runner; a clean 400 naming the
        offending field is the contract instead.
        """
        from ..ads.channels import CHANNELS, INTERFACE_KINDS
        for field_name, valid in (("interface_kinds", INTERFACE_KINDS),
                                  ("interface_probe", INTERFACE_KINDS),
                                  ("interface_channels", CHANNELS)):
            values = params.get(field_name)
            if values is None:
                continue
            if isinstance(values, str) or not isinstance(values,
                                                         (list, tuple)):
                raise SpecError(f"spec.params.{field_name} must be a "
                                f"list, got {values!r}")
            for value in values:
                if value not in valid:
                    raise SpecError(
                        f"spec.params.{field_name} has unknown entry "
                        f"{value!r}; expected one of {list(valid)}")

    def to_dict(self) -> dict:
        return {
            "style": self.style,
            "params": dict(self.params),
            "scenarios": None if self.scenarios is None else [
                {"name": name, "duration": duration}
                for name, duration in self.scenarios],
            "workers": self.workers,
            "lease": self.lease,
            "tenant": self.tenant,
        }

    def digest(self) -> str:
        """Canonical content hash — the default idempotency key."""
        import hashlib
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass
class Job:
    """One submission's durable state (plus runtime-only fields)."""

    id: str
    spec: JobSpec
    idempotency_key: str
    state: str = SUBMITTED
    attempts: int = 0
    resume: bool = False
    error: str | None = None
    summary: dict | None = None
    pid: int | None = None
    created: float = 0.0
    updated: float = 0.0

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "tenant": self.spec.tenant,
            "state": self.state,
            "attempts": self.attempts,
            "resume": self.resume,
            "error": self.error,
            "summary": self.summary,
            "pid": self.pid,
            "created": self.created,
            "updated": self.updated,
            "spec": self.spec.to_dict(),
        }


class JobJournal:
    """Append-only event journal: one atomic fsync'd file per event.

    The same durability pattern as the campaign completion journal —
    each event is written whole to a uniquely named temp file, fsync'd,
    and renamed into place, so a torn write never corrupts an earlier
    event.  Replay reads the events in sequence order and skips
    anything unparseable (that event's transition is simply lost, and
    recovery re-derives a safe state from the last good one).
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._seq = 0
        for path in self.directory.glob("evt-*.json"):
            try:
                self._seq = max(self._seq, int(path.stem.split("-")[1]))
            except (IndexError, ValueError):
                continue

    def append(self, event: dict) -> None:
        self._seq += 1
        event = dict(event, seq=self._seq, ts=time.time())
        path = self.directory / f"evt-{self._seq:08d}.json"
        payload = json.dumps(event, separators=(",", ":")).encode("utf-8")
        write_bytes_atomic(path, payload, fsync=True)

    def replay(self) -> list[dict]:
        events = []
        for path in sorted(self.directory.glob("evt-*.json")):
            try:
                event = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                continue                     # torn/corrupt: skip entry
            if isinstance(event, dict):
                events.append(event)
        events.sort(key=lambda e: e.get("seq", 0))
        return events


class JobStore:
    """The in-memory job table, journal-backed.

    All mutations flow through :meth:`submit` / :meth:`transition`,
    which journal before the table reflects the change is *complete* —
    on crash the journal is therefore never behind what callers saw
    acknowledged.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.journal = JobJournal(self.root / "journal")
        self.jobs: dict[str, Job] = {}
        self._by_key: dict[str, str] = {}
        self._counter = 0

    # -- paths ---------------------------------------------------------------

    def job_dir(self, job: Job) -> Path:
        return self.jobs_dir / job.id

    def spec_path(self, job: Job) -> Path:
        return self.job_dir(job) / "spec.json"

    def record_path(self, job: Job) -> Path:
        return self.job_dir(job) / "records.jsonl"

    # -- submissions ---------------------------------------------------------

    def get_by_key(self, key: str) -> Job | None:
        """The job already holding this idempotency key, if any."""
        job_id = self._by_key.get(key)
        return None if job_id is None else self.jobs[job_id]

    def submit(self, spec: JobSpec,
               idempotency_key: str | None = None) -> tuple[Job, bool]:
        """Create (or return) the job for a spec; ``(job, created)``.

        Resubmission under an existing idempotency key — explicit, or
        the spec's canonical digest — returns the existing job in
        whatever state it is in: the campaign executes exactly once.
        """
        key = idempotency_key or spec.digest()
        existing = self._by_key.get(key)
        if existing is not None:
            return self.jobs[existing], False
        self._counter += 1
        job = Job(id=f"job-{self._counter:06d}", spec=spec,
                  idempotency_key=key, state=SUBMITTED,
                  created=time.time(), updated=time.time())
        self.jobs[job.id] = job
        self._by_key[key] = job.id
        self.journal.append({"type": "submitted", "job": job.id,
                             "key": key, "spec": spec.to_dict()})
        return job, True

    def transition(self, job: Job, state: str, *, error: str | None = None,
                   summary: dict | None = None, pid: int | None = None,
                   resume: bool | None = None,
                   attempts: int | None = None) -> None:
        if state not in _TRANSITIONS:
            raise ValueError(f"unknown job state {state!r}")
        if state not in _TRANSITIONS[job.state]:
            raise ValueError(
                f"illegal transition {job.state} -> {state} for {job.id}")
        job.state = state
        job.updated = time.time()
        if error is not None:
            job.error = error
        if summary is not None:
            job.summary = summary
        if pid is not None:
            job.pid = pid
        if resume is not None:
            job.resume = resume
        if attempts is not None:
            job.attempts = attempts
        event = {"type": "state", "job": job.id, "state": state,
                 "attempts": job.attempts, "resume": job.resume}
        if error is not None:
            event["error"] = error
        if summary is not None:
            event["summary"] = summary
        if pid is not None:
            event["pid"] = pid
        self.journal.append(event)

    # -- recovery ------------------------------------------------------------

    def recover(self) -> list[Job]:
        """Rebuild the table from the journal; returns every job the
        caller must put back on the scheduler queues.

        Jobs the dead server left ``running`` (or mid-``draining``)
        come back ``queued`` with ``resume=True`` — and the requeue is
        itself journaled, so a crash *during* recovery converges to the
        same state.  Jobs whose last journaled state already *is*
        ``queued`` — normal queued submissions, and every job a
        graceful drain settled as ``queued`` + ``resume=True`` — are
        returned too (no new journal event needed): leaving them out
        would strand them "queued" forever, never scheduled.
        """
        for event in self.journal.replay():
            kind = event.get("type")
            if kind == "submitted":
                try:
                    spec = JobSpec.from_dict(event["spec"])
                except (SpecError, KeyError):
                    continue                  # unreadable: drop the job
                job = Job(id=event["job"], spec=spec,
                          idempotency_key=event.get("key", spec.digest()),
                          state=SUBMITTED,
                          created=event.get("ts", 0.0),
                          updated=event.get("ts", 0.0))
                self.jobs[job.id] = job
                self._by_key[job.idempotency_key] = job.id
                try:
                    self._counter = max(self._counter,
                                        int(job.id.split("-")[1]))
                except (IndexError, ValueError):
                    pass
            elif kind == "state":
                job = self.jobs.get(event.get("job"))
                if job is None:
                    continue
                job.state = event.get("state", job.state)
                job.attempts = event.get("attempts", job.attempts)
                job.resume = event.get("resume", job.resume)
                job.error = event.get("error", job.error)
                job.summary = event.get("summary", job.summary)
                job.pid = event.get("pid", job.pid)
                job.updated = event.get("ts", job.updated)
        requeued = []
        for job in self.jobs.values():
            if job.state in (RUNNING, DRAINING):
                self.transition(job, QUEUED, resume=True)
                requeued.append(job)
            elif job.state == SUBMITTED:
                self.transition(job, QUEUED)
                requeued.append(job)
            elif job.state == QUEUED:
                requeued.append(job)
        return requeued
