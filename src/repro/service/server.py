"""The always-on campaign service: ``repro serve``.

A single-threaded asyncio server exposing a small HTTP/JSON surface
over the campaign engine.  Everything is stdlib — the HTTP layer is
hand-rolled over ``asyncio`` streams (``Connection: close`` framing,
NDJSON for event streams), because the service must run wherever the
simulator runs.

Endpoints::

    GET  /healthz            process liveness (always 200 while up)
    GET  /readyz             accepting work? 503 when draining/degraded
    GET  /stats              queue depths, running set, disk headroom
    POST /jobs               submit a campaign spec (Idempotency-Key
                             header honoured; 429 + Retry-After under
                             backpressure)
    GET  /jobs               list jobs
    GET  /jobs/<id>          one job's durable state
    POST /jobs/<id>/cancel   cancel (dequeue, or kill the runner)
    GET  /jobs/<id>/events   NDJSON per-stage progress, streamed live
    GET  /jobs/<id>/records  the merged record stream of a finished job

Campaigns execute in worker subprocesses (:mod:`repro.service.runner`)
driving the existing pipeline with the completion journal on — the
server supervises lifecycles, it never simulates.  A SIGKILL'd server
restarted on the same ``cache_dir`` replays the job journal, SIGKILLs
any orphaned runners, requeues interrupted jobs with ``resume=True``,
and the resumed campaigns skip every journaled experiment.  SIGTERM
drains gracefully: stop admitting, terminate runners, journal every
interrupted job as resumable, exit.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
import sys
import threading
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from . import jobs as J
from .jobs import JobSpec, JobStore, SpecError
from .queue import AdmissionControl, TenantQueues
from .watchdog import Watchdog


@dataclass(frozen=True)
class ServiceConfig:
    """Everything ``repro serve`` can be tuned with."""

    cache_dir: str | Path
    host: str = "127.0.0.1"
    port: int = 0                          # 0: pick a free port
    #: Concurrent runner subprocesses.
    max_running: int = 1
    #: Global / per-tenant queue caps (admission control).
    max_queue_depth: int = 64
    max_tenant_depth: int = 16
    #: Disk headroom floor under ``cache_dir``; below it the service
    #: degrades: running jobs finish, new submissions get 429.
    min_disk_free_bytes: int = 256 * 1024 * 1024
    #: Seconds without any runner event before the watchdog kills and
    #: requeues a job.
    stall_timeout: float = 120.0
    #: Tries per job (stalls and crashes included) before it fails.
    max_attempts: int = 3
    #: Default ``workers`` for specs that leave it unset.
    default_workers: int | None = None
    #: Runner stderr destination ("inherit" | "devnull").
    runner_stderr: str = "inherit"
    #: Memory bounds for an always-on process: per-job cap on retained
    #: progress/state events (older ones fall off the front), and how
    #: many finished jobs keep an event history at all (oldest expire).
    max_events_per_job: int = 512
    max_finished_event_logs: int = 256


class _EventLog:
    """One job's bounded event history.

    Cursors are absolute positions in the job's event sequence: when
    the cap drops old events, a lagging stream resumes at ``base``
    (the trimmed prefix is skipped) rather than re-reading shifted
    list indices.
    """

    __slots__ = ("cap", "base", "items")

    def __init__(self, cap: int = 512):
        self.cap = cap
        self.base = 0
        self.items: list[dict] = []

    def append(self, event: dict) -> None:
        self.items.append(event)
        overflow = len(self.items) - self.cap
        if overflow > 0:
            del self.items[:overflow]
            self.base += overflow

    @property
    def end(self) -> int:
        return self.base + len(self.items)

    def since(self, cursor: int) -> list[dict]:
        return self.items[max(cursor - self.base, 0):]


class CampaignService:
    """Supervises the durable job table, queues, and runner processes."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.cache_dir = Path(config.cache_dir)
        self.store = JobStore(self.cache_dir / "service")
        self.queues = TenantQueues()
        self.admission = AdmissionControl(
            self.cache_dir,
            max_queue_depth=config.max_queue_depth,
            max_tenant_depth=config.max_tenant_depth,
            min_disk_free_bytes=config.min_disk_free_bytes)
        self.watchdog = Watchdog(stall_timeout=config.stall_timeout)
        self.accepting = True
        self.draining = False
        self.port: int | None = None
        self._procs: dict[str, asyncio.subprocess.Process] = {}
        self._cancelling: set[str] = set()
        self._events: dict[str, _EventLog] = {}
        self._finished: deque[str] = deque()
        self._event_cond = asyncio.Condition()
        self._stop = asyncio.Event()
        self._server: asyncio.AbstractServer | None = None
        self._tasks: list[asyncio.Task] = []
        #: One pump task per live runner; done callbacks prune them, so
        #: an always-on server does not accumulate finished tasks.
        self._pumps: set[asyncio.Task] = set()

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Recover, bind, and start the scheduler and watchdog."""
        self._recover()
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._install_signal_handlers()
        self._tasks.append(asyncio.create_task(self._scheduler()))
        self._tasks.append(asyncio.create_task(
            self.watchdog.run(self._on_stall, self._stop)))
        print(f"serving on {self.config.host}:{self.port}", flush=True)

    def _recover(self) -> None:
        """Replay the job journal; kill orphaned runners; requeue."""
        requeued = self.store.recover()
        for job in self.store.jobs.values():
            if job.pid:
                self._kill_orphan_runner(job)
        for job in requeued:
            self.queues.push(job.spec.tenant, job.id)
            self._note(job)

    def _kill_orphan_runner(self, job: J.Job) -> None:
        """SIGKILL ``job.pid`` iff it still is *this job's* runner.

        The check reads ``/proc/<pid>/cmdline`` and requires both the
        runner module and this job's unique spec path in the argv, so a
        recycled pid — even one now belonging to another serve host's
        runner on a shared ``cache_dir`` — is left alone.  Where
        ``/proc`` does not exist this degrades to a no-op by design:
        an orphaned runner self-terminates on its next event write
        anyway (its stdout pipe died with the server, and the runner
        hard-exits on ``BrokenPipeError``).
        """
        try:
            cmdline = Path(f"/proc/{job.pid}/cmdline").read_bytes()
        except OSError:
            return                         # no such process (or no /proc)
        args = cmdline.split(b"\0")
        if (b"repro.service.runner" not in args
                or str(self.store.spec_path(job)).encode() not in args):
            return
        with contextlib.suppress(OSError):
            os.kill(job.pid, signal.SIGKILL)

    def _install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, lambda: asyncio.ensure_future(self.drain()))
            except (NotImplementedError, RuntimeError, ValueError):
                return          # non-main thread (tests) or platform

    async def drain(self) -> None:
        """Graceful shutdown: stop admitting, requeue runners, exit.

        Every running campaign is journaled as ``queued`` +
        ``resume=True`` before the process exits, so the next
        ``repro serve`` on this ``cache_dir`` picks each one up with
        zero re-executed experiments.
        """
        if self.draining:
            return
        self.draining = True
        self.accepting = False
        for job_id, proc in list(self._procs.items()):
            job = self.store.jobs[job_id]
            if job.state == J.RUNNING:
                self.store.transition(job, J.DRAINING)
                await self._note_async(job)
            with contextlib.suppress(ProcessLookupError):
                proc.terminate()
        deadline = asyncio.get_running_loop().time() + 10.0
        while self._procs and asyncio.get_running_loop().time() < deadline:
            await asyncio.sleep(0.02)
        await self.stop()

    async def stop(self) -> None:
        self._stop.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = [*self._tasks, *self._pumps]
        for task in pending:
            task.cancel()
        for task in pending:
            with contextlib.suppress(asyncio.CancelledError):
                await task
        async with self._event_cond:
            self._event_cond.notify_all()

    async def wait_stopped(self) -> None:
        await self._stop.wait()

    # -- scheduling ------------------------------------------------------------

    async def _scheduler(self) -> None:
        """Launch queued jobs as slots free up.

        The loop body is exception-guarded: a launch blowing up must
        never kill the scheduler task — it logs and keeps scheduling
        (the expected hazards are handled inside :meth:`_launch`; this
        guard is the backstop for the unexpected ones).
        """
        while not self._stop.is_set():
            launched = False
            try:
                if (not self.draining
                        and len(self._procs) < self.config.max_running):
                    job_id = self.queues.pop()
                    if job_id is not None:
                        job = self.store.jobs[job_id]
                        if job.state == J.QUEUED:
                            launched = await self._launch(job)
            except Exception as exc:       # noqa: BLE001 — keep scheduling
                print(f"scheduler: launch failed: {exc!r}",
                      file=sys.stderr, flush=True)
            if not launched:
                await asyncio.sleep(0.02)

    async def _launch(self, job: J.Job) -> bool:
        """Spawn one runner; True iff the job is now running.

        Two launch-time hazards are settled here instead of being left
        to kill the scheduler: the spawn itself failing (``OSError`` —
        the attempt is journaled and the job re-queued under the retry
        budget, then failed), and a cancel landing while the subprocess
        was being created (the job is no longer ``queued``, so the
        freshly spawned runner is killed rather than left to run
        unsupervised).
        """
        job_dir = self.store.job_dir(job)
        job_dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "spec": job.spec.to_dict(),
            "cache_dir": str(self.cache_dir),
            "record_path": str(self.store.record_path(job)),
            "resume": job.resume,
            "default_workers": self.config.default_workers,
        }
        self.store.spec_path(job).write_text(json.dumps(payload, indent=1))
        stderr = (asyncio.subprocess.DEVNULL
                  if self.config.runner_stderr == "devnull" else None)
        try:
            proc = await asyncio.create_subprocess_exec(
                sys.executable, "-m", "repro.service.runner",
                str(self.store.spec_path(job)),
                stdout=asyncio.subprocess.PIPE, stderr=stderr,
                env=os.environ.copy())
        except OSError as exc:
            if job.attempts + 1 < self.config.max_attempts:
                self.store.transition(job, J.QUEUED,
                                      attempts=job.attempts + 1)
                self.queues.push(job.spec.tenant, job.id)
            else:
                self.store.transition(
                    job, J.FAILED, attempts=job.attempts + 1,
                    error=f"failed to spawn runner: {exc}")
            await self._note_async(job)
            return False
        if job.state != J.QUEUED or self.draining:
            # Cancelled (or drain started) while spawning: kill the
            # fresh runner instead of supervising it; a drained job
            # stays durably queued for the next server.
            with contextlib.suppress(ProcessLookupError):
                proc.kill()
            await proc.wait()
            return False
        self._procs[job.id] = proc
        self.store.transition(job, J.RUNNING, pid=proc.pid,
                              attempts=job.attempts + 1)
        self.watchdog.beat(job.id)
        await self._note_async(job)
        pump = asyncio.create_task(self._pump(job, proc))
        self._pumps.add(pump)
        pump.add_done_callback(self._pumps.discard)
        return True

    async def _pump(self, job: J.Job,
                    proc: asyncio.subprocess.Process) -> None:
        """Read one runner's NDJSON events until EOF, then settle."""
        done_event: dict | None = None
        error_event: dict | None = None
        assert proc.stdout is not None
        while True:
            try:
                line = await proc.stdout.readline()
            except (asyncio.LimitOverrunError, ValueError):
                continue
            if not line:
                break
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            self.watchdog.beat(job.id)
            if event.get("type") == "done":
                done_event = event
            elif event.get("type") == "error":
                error_event = event
            elif event.get("type") != "alive":
                await self._push_event(job.id, event)
        await proc.wait()
        self.watchdog.forget(job.id)
        await self._settle(job, done_event, error_event)
        # Free the scheduler slot only after the settle transition is
        # journaled — drain's wait-for-empty then implies every
        # interrupted job is durably requeued.
        if self._procs.get(job.id) is proc:
            del self._procs[job.id]

    async def _settle(self, job: J.Job, done_event: dict | None,
                      error_event: dict | None) -> None:
        if job.id in self._cancelling:
            self._cancelling.discard(job.id)
            self.store.transition(job, J.CANCELLED)
        elif done_event is not None:
            summary = dict(done_event.get("summary") or {})
            if done_event.get("journal"):
                summary["journal"] = done_event["journal"]
            self.store.transition(job, J.COMPLETED, summary=summary)
        elif error_event is not None:
            self.store.transition(
                job, J.FAILED,
                error=error_event.get("message", "runner error"))
        elif self.draining or job.state == J.DRAINING:
            self.store.transition(job, J.QUEUED, resume=True)
        elif job.attempts < self.config.max_attempts:
            # Crashed or stalled runner: requeue under the retry policy;
            # the completion journal makes the retry skip finished work.
            self.store.transition(job, J.QUEUED, resume=True)
            self.queues.push(job.spec.tenant, job.id)
        else:
            self.store.transition(
                job, J.FAILED,
                error=f"runner died {job.attempts} time(s); giving up")
        await self._note_async(job)

    async def _on_stall(self, job_id: str) -> None:
        proc = self._procs.get(job_id)
        if proc is None:
            return
        await self._push_event(job_id, {
            "type": "stalled",
            "after_seconds": self.watchdog.stall_timeout})
        with contextlib.suppress(ProcessLookupError):
            proc.kill()
        # _pump sees EOF and applies the retry policy.

    # -- event fan-out ---------------------------------------------------------

    def _event_log(self, job_id: str) -> _EventLog:
        log = self._events.get(job_id)
        if log is None:
            log = self._events[job_id] = _EventLog(
                self.config.max_events_per_job)
        return log

    def _retire_events(self, job_id: str) -> None:
        """Bound total event memory: finished jobs keep their history
        until ``max_finished_event_logs`` newer ones have finished,
        then the oldest logs expire (their streams end cleanly)."""
        self._finished.append(job_id)
        while len(self._finished) > self.config.max_finished_event_logs:
            self._events.pop(self._finished.popleft(), None)

    def _note(self, job: J.Job) -> None:
        self._event_log(job.id).append(
            {"type": "state", "state": job.state,
             "attempts": job.attempts, "resume": job.resume})

    async def _note_async(self, job: J.Job) -> None:
        await self._push_event(job.id, {
            "type": "state", "state": job.state,
            "attempts": job.attempts, "resume": job.resume})
        if job.state in J.TERMINAL_STATES:
            self._retire_events(job.id)

    async def _push_event(self, job_id: str, event: dict) -> None:
        async with self._event_cond:
            self._event_log(job_id).append(event)
            self._event_cond.notify_all()

    # -- HTTP ------------------------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._read_request(reader)
            if request is not None:
                method, path, headers, body = request
                await self._route(method, path, headers, body, writer)
        except (ConnectionResetError, BrokenPipeError, asyncio.TimeoutError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    @staticmethod
    async def _read_request(reader):
        line = await asyncio.wait_for(reader.readline(), timeout=30.0)
        if not line:
            return None
        try:
            method, path, _version = line.decode("ascii").split()
        except ValueError:
            return None
        headers = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout=30.0)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", 0) or 0)
        if length:
            body = await asyncio.wait_for(reader.readexactly(length),
                                          timeout=30.0)
        return method.upper(), path, headers, body

    @staticmethod
    async def _respond(writer, status: int, payload,
                       extra_headers: dict | None = None) -> None:
        reasons = {200: "OK", 201: "Created", 400: "Bad Request",
                   404: "Not Found", 405: "Method Not Allowed",
                   409: "Conflict", 429: "Too Many Requests",
                   503: "Service Unavailable"}
        body = json.dumps(payload, separators=(",", ":")).encode() + b"\n"
        headers = [f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}",
                   "Content-Type: application/json",
                   f"Content-Length: {len(body)}",
                   "Connection: close"]
        for name, value in (extra_headers or {}).items():
            headers.append(f"{name}: {value}")
        writer.write(("\r\n".join(headers) + "\r\n\r\n").encode() + body)
        await writer.drain()

    async def _route(self, method, path, headers, body, writer) -> None:
        if path == "/healthz":
            await self._respond(writer, 200, {"status": "ok"})
            return
        if path == "/readyz":
            if self.draining or not self.accepting:
                await self._respond(writer, 503, {"status": "draining"})
            elif self.admission.degraded():
                await self._respond(
                    writer, 503,
                    {"status": "degraded",
                     "disk_free": self.admission.disk_free()})
            else:
                await self._respond(writer, 200, {"status": "ready"})
            return
        if path == "/stats":
            await self._respond(writer, 200, {
                "queued": self.queues.depth(),
                "running": sorted(self._procs),
                "accepting": self.accepting and not self.draining,
                "degraded": self.admission.degraded(),
                "disk_free": self.admission.disk_free(),
                "jobs": len(self.store.jobs)})
            return
        if path == "/jobs" and method == "POST":
            await self._submit(headers, body, writer)
            return
        if path == "/jobs" and method == "GET":
            await self._respond(writer, 200, {
                "jobs": [job.to_dict()
                         for job in self.store.jobs.values()]})
            return
        if path.startswith("/jobs/"):
            parts = path.split("/")        # ['', 'jobs', id, action?]
            job = self.store.jobs.get(parts[2])
            if job is None:
                await self._respond(writer, 404,
                                    {"error": f"no job {parts[2]!r}"})
                return
            action = parts[3] if len(parts) > 3 else None
            if action is None and method == "GET":
                await self._respond(writer, 200, job.to_dict())
            elif action == "cancel" and method == "POST":
                await self._cancel(job, writer)
            elif action == "events" and method == "GET":
                await self._stream_events(job, writer)
            elif action == "records" and method == "GET":
                await self._stream_records(job, writer)
            else:
                await self._respond(writer, 405,
                                    {"error": "unsupported action"})
            return
        await self._respond(writer, 404, {"error": f"no route {path!r}"})

    async def _submit(self, headers, body, writer) -> None:
        try:
            spec = JobSpec.from_dict(json.loads(body or b"{}"))
        except (json.JSONDecodeError, SpecError) as exc:
            await self._respond(writer, 400, {"error": str(exc)})
            return
        key = headers.get("idempotency-key") or spec.digest()
        existing = self.store.get_by_key(key)
        if existing is not None:
            if existing.spec.digest() != spec.digest():
                # Same key, different spec: refuse loudly instead of
                # silently discarding the new spec.
                await self._respond(
                    writer, 409,
                    {"error": f"Idempotency-Key {key!r} is already bound"
                              f" to {existing.id} with a different spec"})
                return
            # Idempotent resubmission: never counted against admission.
            await self._respond(writer, 200, existing.to_dict())
            return
        if self.draining or not self.accepting:
            await self._respond(writer, 503, {"error": "draining"})
            return
        decision = self.admission.admit(self.queues, spec.tenant)
        if not decision.accepted:
            await self._respond(
                writer, 429, {"error": decision.reason},
                extra_headers={"Retry-After":
                               str(int(decision.retry_after) or 1)})
            return
        job, created = self.store.submit(spec, idempotency_key=key)
        if created:
            self.store.transition(job, J.QUEUED)
            self.queues.push(spec.tenant, job.id)
            await self._note_async(job)
        await self._respond(writer, 201 if created else 200, job.to_dict())

    async def _cancel(self, job: J.Job, writer) -> None:
        if job.state in J.TERMINAL_STATES:
            await self._respond(writer, 200, job.to_dict())
            return
        if job.state in (J.SUBMITTED, J.QUEUED):
            self.queues.remove(job.spec.tenant, job.id)
            self.store.transition(job, J.CANCELLED)
            await self._note_async(job)
        elif job.id in self._procs:
            self._cancelling.add(job.id)
            with contextlib.suppress(ProcessLookupError):
                self._procs[job.id].kill()
        await self._respond(writer, 200, job.to_dict())

    async def _stream_events(self, job: J.Job, writer) -> None:
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Connection: close\r\n\r\n")
        await writer.drain()
        cursor = 0
        while True:
            async with self._event_cond:
                log = self._events.get(job.id)
                batch = [] if log is None else log.since(cursor)
                if log is not None:
                    cursor = log.end
                if not batch:
                    if (job.state in J.TERMINAL_STATES
                            or self._stop.is_set()):
                        break
                    with contextlib.suppress(asyncio.TimeoutError):
                        await asyncio.wait_for(
                            self._event_cond.wait(), timeout=0.5)
                    continue
            for event in batch:
                writer.write(json.dumps(
                    event, separators=(",", ":")).encode() + b"\n")
            await writer.drain()

    async def _stream_records(self, job: J.Job, writer) -> None:
        path = self.store.record_path(job)
        if job.state != J.COMPLETED or not path.exists():
            await self._respond(
                writer, 404,
                {"error": f"job {job.id} has no finished record stream"})
            return
        payload = path.read_bytes()
        writer.write((f"HTTP/1.1 200 OK\r\n"
                      f"Content-Type: application/x-ndjson\r\n"
                      f"Content-Length: {len(payload)}\r\n"
                      f"Connection: close\r\n\r\n").encode())
        writer.write(payload)
        await writer.drain()


async def _serve_async(config: ServiceConfig) -> None:
    service = CampaignService(config)
    await service.start()
    await service.wait_stopped()


def serve(config: ServiceConfig) -> int:
    """Run the service until SIGTERM/SIGINT completes a drain."""
    try:
        asyncio.run(_serve_async(config))
    except KeyboardInterrupt:
        pass
    return 0


class ServiceThread:
    """In-process harness: the service on a background event loop.

    For tests — ``with ServiceThread(config) as svc:`` yields an object
    with ``.port`` bound and a ``stop()``/``drain()`` that join the
    thread.  Signal handlers are skipped automatically (non-main
    thread).
    """

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.service: CampaignService | None = None
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._startup_error: BaseException | None = None

    def _run(self) -> None:
        async def main() -> None:
            self.service = CampaignService(self.config)
            try:
                await self.service.start()
            except BaseException as exc:
                self._startup_error = exc
                self._started.set()
                raise
            self.port = self.service.port
            self._loop = asyncio.get_running_loop()
            self._started.set()
            await self.service.wait_stopped()
        with contextlib.suppress(Exception):
            asyncio.run(main())
        self._started.set()

    def __enter__(self) -> "ServiceThread":
        self._thread.start()
        self._started.wait(timeout=30.0)
        if self._startup_error is not None:
            raise RuntimeError("service failed to start") \
                from self._startup_error
        if self.port is None:
            raise RuntimeError("service did not start in time")
        return self

    def _call(self, coro_factory) -> None:
        loop = self._loop
        if loop is None or self.service is None or loop.is_closed():
            return                        # already stopped (e.g. drained)
        coro = coro_factory()
        try:
            future = asyncio.run_coroutine_threadsafe(coro, loop)
        except RuntimeError:              # closed between check and submit
            coro.close()
            return
        with contextlib.suppress(Exception):
            future.result(timeout=30.0)

    def drain(self) -> None:
        self._call(lambda: self.service.drain())
        self._thread.join(timeout=30.0)

    def stop(self) -> None:
        self._call(lambda: self.service.stop())
        self._thread.join(timeout=30.0)

    def __exit__(self, *exc_info) -> None:
        self.stop()
