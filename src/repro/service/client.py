"""Stdlib client for the campaign service.

A thin synchronous wrapper over :mod:`http.client` — enough for the
CLI, the tests, and scripting against a ``repro serve`` host without
pulling in any HTTP dependency.  Every request uses
``Connection: close`` (matching the server's framing), so each call is
one short-lived TCP connection.
"""

from __future__ import annotations

import http.client
import json
import time
from collections.abc import Iterator


class ServiceError(RuntimeError):
    """A non-2xx response; carries ``status``, ``payload``, and (for
    429 backpressure) ``retry_after`` seconds."""

    def __init__(self, status: int, payload: dict,
                 retry_after: float | None = None):
        self.status = status
        self.payload = payload
        self.retry_after = retry_after
        detail = payload.get("error") or payload.get("status") or payload
        super().__init__(f"HTTP {status}: {detail}")


class ServiceClient:
    """Talks to one ``repro serve`` host."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8732,
                 timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing --------------------------------------------------------------

    def _request(self, method: str, path: str, body: dict | None = None,
                 headers: dict | None = None) -> dict:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            payload = None
            send_headers = {"Connection": "close"}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                send_headers["Content-Type"] = "application/json"
            send_headers.update(headers or {})
            conn.request(method, path, body=payload, headers=send_headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                parsed = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                parsed = {"error": raw.decode("utf-8", "replace")}
            if response.status >= 400:
                retry_after = response.getheader("Retry-After")
                raise ServiceError(
                    response.status, parsed,
                    retry_after=float(retry_after) if retry_after else None)
            return parsed
        finally:
            conn.close()

    # -- probes and stats ------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def readyz(self) -> dict:
        return self._request("GET", "/readyz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    # -- jobs ------------------------------------------------------------------

    def submit(self, spec: dict,
               idempotency_key: str | None = None) -> dict:
        headers = {}
        if idempotency_key:
            headers["Idempotency-Key"] = idempotency_key
        return self._request("POST", "/jobs", body=spec, headers=headers)

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def events(self, job_id: str) -> Iterator[dict]:
        """Stream a job's NDJSON events until it reaches a terminal
        state (or the server goes away — the generator just ends)."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("GET", f"/jobs/{job_id}/events",
                         headers={"Connection": "close"})
            response = conn.getresponse()
            if response.status >= 400:
                raise ServiceError(response.status,
                                   {"error": response.read().decode()})
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()

    def records(self, job_id: str) -> bytes:
        """The finished job's merged record stream, verbatim."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("GET", f"/jobs/{job_id}/records",
                         headers={"Connection": "close"})
            response = conn.getresponse()
            raw = response.read()
            if response.status >= 400:
                raise ServiceError(response.status,
                                   {"error": raw.decode("utf-8", "replace")})
            return raw
        finally:
            conn.close()

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.2) -> dict:
        """Poll until the job is terminal; returns its final state."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in ("completed", "failed", "cancelled"):
                return job
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['state']} "
                    f"after {timeout:.0f}s")
            time.sleep(poll)
