"""repro: a reproduction of DriveFI (DSN 2019).

ML-based (Bayesian) fault injection for autonomous vehicles: a complete
ADS stack (`repro.ads`), a 2-D driving simulator (`repro.sim`), an
architectural fault injector (`repro.arch`), a Bayesian-network library
(`repro.bayesnet`), and the Bayesian fault-selection engine plus campaign
machinery (`repro.core`).

Quickstart::

    from repro.core import Campaign

    campaign = Campaign()              # default scenario population
    result = campaign.bayesian_campaign(top_k=20)
    for fault, record in zip(result.candidates, result.summary.records):
        print(fault.variable, fault.value, record.hazard)

See examples/ for runnable walkthroughs and benchmarks/ for the
regeneration of every table and figure in the paper's evaluation.
"""

from .core import (BayesianFaultInjector, Campaign, CampaignConfig,
                   FaultSpec, Hazard, run_scenario)

__version__ = "1.0.0"

__all__ = [
    "Campaign",
    "CampaignConfig",
    "BayesianFaultInjector",
    "FaultSpec",
    "Hazard",
    "run_scenario",
    "__version__",
]
