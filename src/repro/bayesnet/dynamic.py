"""Dynamic Bayesian networks: temporal templates unrolled to k slices.

The paper models the ADS with a 3-temporal Bayesian network (3-TBN): a
per-slice ("intra") structure derived from the ADS dataflow, plus
inter-slice edges carrying state from t to t+1, unrolled three times
(Fig. 6).  This module provides the template, its unrolling into a plain
network, and trace-windowing utilities for training.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from .graph import DAG
from .learning import fit_discrete_network, fit_linear_gaussian_network
from .network import DiscreteBayesianNetwork, LinearGaussianBayesianNetwork

SLICE_SEPARATOR = "@"


def slice_node(variable: str, t: int) -> str:
    """Name of ``variable`` in slice ``t`` of an unrolled network."""
    return f"{variable}{SLICE_SEPARATOR}{t}"


def split_slice_node(node: str) -> tuple[str, int]:
    """Inverse of :func:`slice_node`."""
    variable, _, t = node.rpartition(SLICE_SEPARATOR)
    return variable, int(t)


class DynamicBayesianNetwork:
    """A two-slice temporal template.

    * ``intra_edges`` are edges within one time slice (replicated per slice),
    * ``inter_edges`` are edges from slice t to slice t+1.

    Unrolling to ``n_slices`` produces a plain DAG over ``var@t`` nodes.
    """

    def __init__(self, variables: Iterable[str],
                 intra_edges: Iterable[tuple[str, str]] = (),
                 inter_edges: Iterable[tuple[str, str]] = ()):
        self.variables = list(variables)
        known = set(self.variables)
        self.intra_edges = [tuple(e) for e in intra_edges]
        self.inter_edges = [tuple(e) for e in inter_edges]
        for parent, child in self.intra_edges + self.inter_edges:
            if parent not in known or child not in known:
                raise ValueError(
                    f"edge ({parent!r}, {child!r}) uses unknown variables")
        # Validate the template is acyclic by test-unrolling two slices.
        self.unrolled_dag(2)

    def unrolled_dag(self, n_slices: int) -> DAG:
        """The DAG of the template unrolled to ``n_slices`` >= 1 slices."""
        if n_slices < 1:
            raise ValueError("need at least one slice")
        dag = DAG(nodes=[slice_node(v, t)
                         for t in range(n_slices) for v in self.variables])
        for t in range(n_slices):
            for parent, child in self.intra_edges:
                dag.add_edge(slice_node(parent, t), slice_node(child, t))
        for t in range(n_slices - 1):
            for parent, child in self.inter_edges:
                dag.add_edge(slice_node(parent, t), slice_node(child, t + 1))
        return dag

    # -- training-data preparation ----------------------------------------

    def window_dataset(self, traces: Sequence[Mapping[str, np.ndarray]],
                       n_slices: int) -> dict[str, np.ndarray]:
        """Stack every length-``n_slices`` window of every trace.

        Each trace maps variable name to a 1-D array over time; all
        variables within a trace must share a length.  The result maps
        unrolled node names (``var@t``) to aligned sample arrays, ready
        for the fitting helpers in :mod:`repro.bayesnet.learning`.
        """
        columns: dict[str, list[np.ndarray]] = {
            slice_node(v, t): []
            for t in range(n_slices) for v in self.variables}
        for trace in traces:
            chunk = self.trace_windows(trace, n_slices)
            if chunk is None:
                continue
            for node, series in chunk.items():
                columns[node].append(series)
        dataset = {}
        for node, chunks in columns.items():
            if not chunks:
                raise ValueError(
                    "no training windows: traces shorter than n_slices")
            dataset[node] = np.concatenate(chunks)
        return dataset

    def trace_windows(self, trace: Mapping[str, np.ndarray],
                      n_slices: int) -> dict[str, np.ndarray] | None:
        """One trace's window chunk (``None`` if shorter than ``n_slices``).

        The per-trace unit of :meth:`window_dataset`: concatenating the
        chunks of a trace sequence in order reproduces the batch
        dataset, which is what lets streaming trainers fold one golden
        trace at a time.  The returned arrays are views of the trace's
        columns (no copies), so folding a memory-mapped trace stays
        O(windows) in fresh allocations.
        """
        length = self._trace_length(trace)
        n_windows = length - n_slices + 1
        if n_windows <= 0:
            return None
        chunk: dict[str, np.ndarray] = {}
        for variable in self.variables:
            series = np.asarray(trace[variable])
            for t in range(n_slices):
                chunk[slice_node(variable, t)] = series[t:t + n_windows]
        return chunk

    def _trace_length(self, trace: Mapping[str, np.ndarray]) -> int:
        lengths = {len(np.asarray(trace[v])) for v in self.variables}
        if len(lengths) != 1:
            raise ValueError(f"trace variables have differing lengths "
                             f"{sorted(lengths)}")
        return lengths.pop()

    # -- fitting ------------------------------------------------------------

    def fit_linear_gaussian(self, traces: Sequence[Mapping[str, np.ndarray]],
                            n_slices: int = 3, min_variance: float = 1e-9
                            ) -> LinearGaussianBayesianNetwork:
        """Unroll to ``n_slices`` and fit linear-Gaussian CPDs from traces."""
        dag = self.unrolled_dag(n_slices)
        data = self.window_dataset(traces, n_slices)
        return fit_linear_gaussian_network(dag, data, min_variance)

    def fit_discrete(self, traces: Sequence[Mapping[str, np.ndarray]],
                     cardinalities: Mapping[str, int], n_slices: int = 3,
                     pseudocount: float = 1.0) -> DiscreteBayesianNetwork:
        """Unroll and fit CPTs from integer-state traces."""
        dag = self.unrolled_dag(n_slices)
        data = self.window_dataset(traces, n_slices)
        cards = {slice_node(v, t): int(cardinalities[v])
                 for t in range(n_slices) for v in self.variables}
        return fit_discrete_network(dag, cards, data, pseudocount)

    def __repr__(self) -> str:
        return (f"DynamicBayesianNetwork(variables={len(self.variables)}, "
                f"intra={len(self.intra_edges)}, "
                f"inter={len(self.inter_edges)})")
