"""Approximate inference by likelihood weighting.

An independent cross-check for the exact engines: likelihood weighting
draws ancestral samples with evidence nodes clamped, weighting each
sample by the likelihood of the clamped values.  Agreement between the
weighted estimates and variable elimination / Gaussian conditioning is
a strong end-to-end test of both.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np

from .network import DiscreteBayesianNetwork, LinearGaussianBayesianNetwork


def likelihood_weighting(network: DiscreteBayesianNetwork,
                         query: str, evidence: Mapping[str, int],
                         n_samples: int,
                         rng: np.random.Generator) -> np.ndarray:
    """Posterior estimate P(query | evidence) for a discrete network.

    Returns a probability vector over the query variable's states.
    """
    network.validate()
    order = network.dag.topological_order()
    cardinality = network.cardinality(query)
    totals = np.zeros(cardinality)
    weight_sum = 0.0
    for _ in range(n_samples):
        assignment: dict[str, int] = {}
        weight = 1.0
        for node in order:
            cpd = network.cpds[node]
            if node in evidence:
                state = int(evidence[node])
                weight *= cpd.probability(state, assignment)
                assignment[node] = state
            else:
                assignment[node] = cpd.sample(rng, assignment)
        totals[assignment[query]] += weight
        weight_sum += weight
    if weight_sum <= 0:
        raise ZeroDivisionError(
            "all samples had zero weight: impossible evidence?")
    return totals / weight_sum


def gaussian_likelihood_weighting(network: LinearGaussianBayesianNetwork,
                                  query: str,
                                  evidence: Mapping[str, float],
                                  n_samples: int,
                                  rng: np.random.Generator
                                  ) -> tuple[float, float]:
    """Weighted posterior mean and variance of one continuous node."""
    network.validate()
    order = network.dag.topological_order()
    values = np.empty(n_samples)
    weights = np.empty(n_samples)
    for i in range(n_samples):
        assignment: dict[str, float] = {}
        log_weight = 0.0
        for node in order:
            cpd = network.cpds[node]
            if node in evidence:
                observed = float(evidence[node])
                mean = cpd.mean(assignment)
                variance = max(cpd.variance, 1e-12)
                log_weight += (-0.5 * np.log(2 * np.pi * variance)
                               - (observed - mean) ** 2 / (2 * variance))
                assignment[node] = observed
            else:
                assignment[node] = cpd.sample(rng, assignment)
        values[i] = assignment[query]
        weights[i] = log_weight
    weights = np.exp(weights - weights.max())
    total = weights.sum()
    if total <= 0:
        raise ZeroDivisionError("all samples had zero weight")
    mean = float(np.sum(weights * values) / total)
    variance = float(np.sum(weights * (values - mean) ** 2) / total)
    return mean, variance
