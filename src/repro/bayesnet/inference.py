"""Exact inference on discrete Bayesian networks.

:class:`VariableElimination` implements sum-product elimination with a
min-fill ordering heuristic.  The joint-MAP query used by the paper's
maximum-likelihood-estimate step (``argmax_m P[M = m | evidence]``) is
computed by summing out all nuisance variables and taking the argmax of
the resulting posterior factor over the query set.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from .factors import DiscreteFactor, factor_product
from .network import DiscreteBayesianNetwork


class VariableElimination:
    """Sum-product variable elimination over a validated network."""

    def __init__(self, network: DiscreteBayesianNetwork):
        network.validate()
        self.network = network

    # -- public queries ----------------------------------------------------

    def query(self, variables: Iterable[str],
              evidence: Mapping[str, int] | None = None) -> DiscreteFactor:
        """Posterior joint factor P(variables | evidence), normalized."""
        variables = list(variables)
        evidence = dict(evidence or {})
        overlap = set(variables) & set(evidence)
        if overlap:
            raise ValueError(f"query variables in evidence: {sorted(overlap)}")
        factor = self._eliminate_all_but(variables, evidence)
        return factor.normalize()

    def map_query(self, variables: Iterable[str],
                  evidence: Mapping[str, int] | None = None
                  ) -> dict[str, int]:
        """Joint argmax of the posterior over ``variables``.

        This is the marginal-MAP assignment over the query set, matching
        Eq. 2 of the paper where the MLE of the next kinematic state is
        taken jointly over the state variables.
        """
        posterior = self.query(variables, evidence)
        return posterior.argmax()

    def marginal(self, variable: str,
                 evidence: Mapping[str, int] | None = None) -> DiscreteFactor:
        """Single-variable posterior marginal."""
        return self.query([variable], evidence)

    # -- elimination core ----------------------------------------------------

    def _eliminate_all_but(self, keep: list[str],
                           evidence: dict[str, int]) -> DiscreteFactor:
        factors = []
        for node in self.network.dag.nodes():
            factor = self.network.cpds[node].to_factor()
            factor = factor.reduce(evidence)
            if factor.variables:
                factors.append(factor)
            # Fully reduced factors are scalars; they only rescale the
            # posterior and are removed by the final normalization, except
            # that an all-zero scalar signals impossible evidence.
            elif factor.values.item() == 0.0:
                raise ZeroDivisionError(
                    "evidence has zero probability under the model")
        hidden = [v for v in self._scope(factors)
                  if v not in keep and v not in evidence]
        for variable in self._elimination_order(factors, hidden):
            factors = self._sum_out(variable, factors)
        result = factor_product(factors)
        missing = [v for v in keep if v not in result.variables]
        if missing:
            raise ValueError(f"query variables missing from model: {missing}")
        extra = [v for v in result.variables if v not in keep]
        if extra:
            result = result.marginalize(extra)
        return result

    @staticmethod
    def _scope(factors: list[DiscreteFactor]) -> list[str]:
        seen: dict[str, None] = {}
        for factor in factors:
            for variable in factor.variables:
                seen.setdefault(variable)
        return list(seen)

    @staticmethod
    def _sum_out(variable: str,
                 factors: list[DiscreteFactor]) -> list[DiscreteFactor]:
        touching = [f for f in factors if variable in f.variables]
        untouched = [f for f in factors if variable not in f.variables]
        if not touching:
            return untouched
        combined = factor_product(touching).marginalize([variable])
        if combined.variables:
            untouched.append(combined)
        return untouched

    def _elimination_order(self, factors: list[DiscreteFactor],
                           hidden: list[str]) -> list[str]:
        """Greedy min-fill ordering on the factor interaction graph."""
        neighbors: dict[str, set[str]] = {v: set() for v in hidden}
        for factor in factors:
            scope = [v for v in factor.variables if v in neighbors]
            for v in scope:
                neighbors[v].update(u for u in factor.variables if u != v)
        order = []
        remaining = set(hidden)
        while remaining:
            best = min(
                remaining,
                key=lambda v: (len(neighbors[v] & remaining), hidden.index(v)))
            order.append(best)
            remaining.discard(best)
            # Connect the eliminated variable's remaining neighbors.
            live = neighbors[best] & remaining
            for u in live:
                neighbors[u].update(live - {u})
        return order
