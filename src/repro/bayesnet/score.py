"""Model scoring: log-likelihood and BIC for fitted networks.

The 3-TBN topology is *derived from the ADS architecture*, not learned;
scoring lets us verify that derivation against data — the template
should beat both an edge-less baseline (it captures real structure) on
held-out likelihood, and an overfit dense alternative on BIC.
"""

from __future__ import annotations

import math
from collections.abc import Mapping

import numpy as np

from .graph import DAG
from .learning import fit_linear_gaussian_network
from .network import LinearGaussianBayesianNetwork


def gaussian_log_likelihood(network: LinearGaussianBayesianNetwork,
                            data: Mapping[str, np.ndarray]) -> float:
    """Total log-likelihood of aligned column data under the network."""
    network.validate()
    total = 0.0
    n = None
    for node in network.dag.nodes():
        cpd = network.cpds[node]
        y = np.asarray(data[node], dtype=float)
        if n is None:
            n = len(y)
        mean = np.full(len(y), cpd.intercept)
        for parent, weight in zip(cpd.parents, cpd.weights):
            mean += weight * np.asarray(data[parent], dtype=float)
        variance = max(cpd.variance, 1e-12)
        total += float(np.sum(
            -0.5 * math.log(2 * math.pi * variance)
            - (y - mean) ** 2 / (2 * variance)))
    return total


def n_parameters(network: LinearGaussianBayesianNetwork) -> int:
    """Free parameters: per node, weights + intercept + variance."""
    return sum(len(cpd.parents) + 2 for cpd in network.cpds.values())


def bic_score(network: LinearGaussianBayesianNetwork,
              data: Mapping[str, np.ndarray]) -> float:
    """Bayesian information criterion (higher is better here).

    ``BIC = logL - (k / 2) log n`` with ``k`` free parameters and ``n``
    samples.
    """
    first = next(iter(data.values()))
    n = len(first)
    if n == 0:
        raise ValueError("empty data")
    return (gaussian_log_likelihood(network, data)
            - 0.5 * n_parameters(network) * math.log(n))


def fit_and_score(dag: DAG, data: Mapping[str, np.ndarray]) -> float:
    """Fit a linear-Gaussian network with structure ``dag``; return BIC."""
    network = fit_linear_gaussian_network(dag, data)
    return bic_score(network, data)


def empty_dag(nodes: list[str]) -> DAG:
    """The independence baseline: every node a root."""
    return DAG(nodes=nodes)
