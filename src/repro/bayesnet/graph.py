"""Directed acyclic graph used as the skeleton of Bayesian networks.

The implementation is intentionally dependency-free: a ``DAG`` is a pair of
adjacency maps (parents and children) plus insertion-ordered node tracking,
which is all the inference and learning code needs.
"""

from __future__ import annotations

from collections.abc import Iterable


class CycleError(ValueError):
    """Raised when an edge insertion or validation would create a cycle."""


class DAG:
    """A directed acyclic graph over hashable node labels.

    Nodes keep insertion order, which gives deterministic topological
    orders and therefore deterministic inference results.

    >>> g = DAG(edges=[("a", "b"), ("b", "c")])
    >>> g.topological_order()
    ['a', 'b', 'c']
    """

    def __init__(self, edges: Iterable[tuple[str, str]] = (),
                 nodes: Iterable[str] = ()):
        self._parents: dict[str, list[str]] = {}
        self._children: dict[str, list[str]] = {}
        for node in nodes:
            self.add_node(node)
        for parent, child in edges:
            self.add_edge(parent, child)

    # -- construction -----------------------------------------------------

    def add_node(self, node: str) -> None:
        """Add ``node`` if not already present."""
        if node not in self._parents:
            self._parents[node] = []
            self._children[node] = []

    def add_edge(self, parent: str, child: str) -> None:
        """Add a directed edge ``parent -> child``, creating nodes as needed.

        Raises :class:`CycleError` if the edge would create a cycle and
        ``ValueError`` for self-loops or duplicate edges.
        """
        if parent == child:
            raise CycleError(f"self-loop on {parent!r}")
        self.add_node(parent)
        self.add_node(child)
        if child in self._children[parent]:
            raise ValueError(f"duplicate edge {parent!r} -> {child!r}")
        if self.has_path(child, parent):
            raise CycleError(f"edge {parent!r} -> {child!r} creates a cycle")
        self._children[parent].append(child)
        self._parents[child].append(parent)

    def remove_edge(self, parent: str, child: str) -> None:
        """Remove the edge ``parent -> child``."""
        self._children[parent].remove(child)
        self._parents[child].remove(parent)

    def remove_incoming_edges(self, node: str) -> None:
        """Drop every edge pointing at ``node`` (the do-operator surgery)."""
        for parent in list(self._parents[node]):
            self.remove_edge(parent, node)

    def copy(self) -> "DAG":
        """Return an independent copy of the graph."""
        clone = DAG(nodes=self.nodes())
        for parent, children in self._children.items():
            for child in children:
                clone._children[parent].append(child)
                clone._parents[child].append(parent)
        return clone

    # -- queries -----------------------------------------------------------

    def nodes(self) -> list[str]:
        """All nodes in insertion order."""
        return list(self._parents)

    def edges(self) -> list[tuple[str, str]]:
        """All edges as (parent, child) pairs."""
        return [(parent, child)
                for parent, children in self._children.items()
                for child in children]

    def __contains__(self, node: str) -> bool:
        return node in self._parents

    def __len__(self) -> int:
        return len(self._parents)

    def parents(self, node: str) -> list[str]:
        """Direct predecessors of ``node`` in edge-insertion order."""
        return list(self._parents[node])

    def children(self, node: str) -> list[str]:
        """Direct successors of ``node`` in edge-insertion order."""
        return list(self._children[node])

    def roots(self) -> list[str]:
        """Nodes with no parents."""
        return [node for node, parents in self._parents.items() if not parents]

    def leaves(self) -> list[str]:
        """Nodes with no children."""
        return [n for n, children in self._children.items() if not children]

    def has_path(self, source: str, target: str) -> bool:
        """True if a directed path ``source -> ... -> target`` exists."""
        if source not in self._parents or target not in self._parents:
            return False
        stack = [source]
        seen = set()
        while stack:
            node = stack.pop()
            if node == target:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._children[node])
        return False

    def ancestors(self, node: str) -> set[str]:
        """All nodes with a directed path to ``node`` (excluding itself)."""
        found: set[str] = set()
        stack = list(self._parents[node])
        while stack:
            current = stack.pop()
            if current not in found:
                found.add(current)
                stack.extend(self._parents[current])
        return found

    def descendants(self, node: str) -> set[str]:
        """All nodes reachable from ``node`` (excluding itself)."""
        found: set[str] = set()
        stack = list(self._children[node])
        while stack:
            current = stack.pop()
            if current not in found:
                found.add(current)
                stack.extend(self._children[current])
        return found

    def topological_order(self) -> list[str]:
        """Kahn's algorithm; ties broken by node insertion order."""
        in_degree = {node: len(parents)
                     for node, parents in self._parents.items()}
        ready = [node for node in self._parents if in_degree[node] == 0]
        order: list[str] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for child in self._children[node]:
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    ready.append(child)
        if len(order) != len(self._parents):
            raise CycleError("graph contains a cycle")
        return order

    def __repr__(self) -> str:
        return f"DAG(nodes={len(self)}, edges={len(self.edges())})"
