"""Exact inference for linear-Gaussian Bayesian networks.

The joint over all nodes of a linear-Gaussian network is one multivariate
Gaussian, so posterior queries reduce to Gaussian conditioning:

    x = (x_a, x_b) ~ N(mu, Sigma)
    x_a | x_b = e  ~  N(mu_a + S_ab S_bb^-1 (e - mu_b),
                        S_aa - S_ab S_bb^-1 S_ba)

Degenerate (zero-variance) evidence blocks — produced by do() point
interventions — are handled with the Moore-Penrose pseudo-inverse.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from .network import LinearGaussianBayesianNetwork


@dataclass(frozen=True)
class ConditioningPlan:
    """Evidence-value-independent pieces of one Gaussian conditioning.

    For a fixed *set* of observed variables the posterior covariance and
    the Kalman-style gain depend only on the joint covariance, so they
    are computed once and reused for every evidence vector:

        mean(free | e) = mean_free + gain @ (e - mean_observed)
    """

    free: tuple[str, ...]
    observed: tuple[str, ...]
    gain: np.ndarray            # (n_free, n_observed)
    mean_free: np.ndarray
    mean_observed: np.ndarray
    posterior_cov: np.ndarray   # (n_free, n_free), symmetrized + clamped


class GaussianDistribution:
    """A multivariate Gaussian over named variables."""

    def __init__(self, variables: Iterable[str], mean: np.ndarray,
                 covariance: np.ndarray):
        self.variables = list(variables)
        self.mean = np.asarray(mean, dtype=float).reshape(len(self.variables))
        self.covariance = np.asarray(covariance, dtype=float).reshape(
            (len(self.variables), len(self.variables)))
        if not np.allclose(self.covariance, self.covariance.T, atol=1e-8):
            raise ValueError("covariance must be symmetric")
        self._positions = {v: i for i, v in enumerate(self.variables)}
        self._plans: dict[tuple[str, ...], ConditioningPlan] = {}

    def _indices(self, variables: Iterable[str]) -> list[int]:
        positions = self._positions
        try:
            return [positions[v] for v in variables]
        except KeyError as missing:
            raise KeyError(f"unknown variable {missing}") from None

    def mean_of(self, variable: str) -> float:
        """Marginal mean of one variable."""
        return float(self.mean[self._indices([variable])[0]])

    def variance_of(self, variable: str) -> float:
        """Marginal variance of one variable."""
        i = self._indices([variable])[0]
        return float(self.covariance[i, i])

    def marginalize(self, keep: Iterable[str]) -> "GaussianDistribution":
        """Marginal over ``keep`` (Gaussian marginals are submatrices)."""
        keep = list(keep)
        idx = self._indices(keep)
        return GaussianDistribution(
            keep, self.mean[idx], self.covariance[np.ix_(idx, idx)])

    def conditioning_plan(self, observed: Sequence[str]) -> ConditioningPlan:
        """The cached gain/covariance for one *set* of observed variables.

        ``observed`` is canonicalized to this distribution's variable
        order, so every evidence set hits one cache entry regardless of
        the order the caller names its variables in.
        """
        observed_set = set(observed)
        key = tuple(v for v in self.variables if v in observed_set)
        if len(key) != len(observed_set):
            self._indices(observed_set)  # raise on the unknown variable
        plan = self._plans.get(key)
        if plan is None:
            free = tuple(v for v in self.variables if v not in observed_set)
            a = self._indices(free)
            b = self._indices(key)
            s_aa = self.covariance[np.ix_(a, a)]
            s_ab = self.covariance[np.ix_(a, b)]
            s_bb = self.covariance[np.ix_(b, b)]
            # pinv handles singular evidence blocks from point
            # interventions.
            s_bb_inv = np.linalg.pinv(s_bb, hermitian=True)
            gain = s_ab @ s_bb_inv
            new_cov = s_aa - gain @ s_ab.T
            # Clamp tiny negative diagonal noise from the pinv round-trip.
            new_cov = (new_cov + new_cov.T) / 2.0
            diagonal = np.diag(new_cov).copy()
            diagonal[diagonal < 0] = 0.0
            np.fill_diagonal(new_cov, diagonal)
            plan = ConditioningPlan(
                free=free, observed=key, gain=gain,
                mean_free=self.mean[a], mean_observed=self.mean[b],
                posterior_cov=new_cov)
            self._plans[key] = plan
        return plan

    def condition(self, evidence: Mapping[str, float]
                  ) -> "GaussianDistribution":
        """Condition on observed values, returning the posterior Gaussian."""
        observed = [v for v in self.variables if v in evidence]
        if not observed:
            return GaussianDistribution(self.variables, self.mean.copy(),
                                        self.covariance.copy())
        plan = self.conditioning_plan(observed)
        e = np.array([float(evidence[v]) for v in plan.observed])
        new_mean = plan.mean_free + plan.gain @ (e - plan.mean_observed)
        return GaussianDistribution(plan.free, new_mean,
                                    plan.posterior_cov.copy())

    def conditional_mean_map(self, query: Sequence[str],
                             observed: Sequence[str]
                             ) -> tuple[np.ndarray, np.ndarray]:
        """Affine map ``e -> E[query | observed = e]`` as ``(gain, offset)``.

        ``gain`` has one row per query variable and one column per
        observed variable *in the caller's order*, so a batch of evidence
        vectors ``E`` (one per row) scores in a single matmul:
        ``E @ gain.T + offset``.
        """
        plan = self.conditioning_plan(observed)
        free_pos = {v: i for i, v in enumerate(plan.free)}
        try:
            rows = [free_pos[v] for v in query]
        except KeyError as missing:
            raise KeyError(
                f"query variable {missing} is not free given the "
                f"evidence set") from None
        obs_pos = {v: i for i, v in enumerate(plan.observed)}
        cols = [obs_pos[v] for v in observed]
        gain = plan.gain[np.ix_(rows, cols)]
        offset = (plan.mean_free[rows]
                  - plan.gain[rows] @ plan.mean_observed)
        return gain, offset

    def log_density(self, assignment: Mapping[str, float]) -> float:
        """Log density at a full assignment (pseudo-inverse for rank loss)."""
        x = np.array([float(assignment[v]) for v in self.variables])
        diff = x - self.mean
        cov = self.covariance
        sign, logdet = np.linalg.slogdet(cov)
        if sign <= 0:
            eigenvalues = np.linalg.eigvalsh(cov)
            positive = eigenvalues[eigenvalues > 1e-12]
            logdet = float(np.sum(np.log(positive)))
        quad = diff @ np.linalg.pinv(cov, hermitian=True) @ diff
        k = len(self.variables)
        return float(-0.5 * (k * np.log(2 * np.pi) + logdet + quad))

    def __repr__(self) -> str:
        return f"GaussianDistribution(variables={self.variables})"


class GaussianInference:
    """Posterior queries on a linear-Gaussian network.

    The network's joint Gaussian is materialized once at construction;
    queries are then O(n^3) conditioning operations.
    """

    def __init__(self, network: LinearGaussianBayesianNetwork):
        network.validate()
        self.network = network
        order, mean, cov = network.joint_parameters()
        self.joint = GaussianDistribution(order, mean, cov)

    def posterior(self, variables: Iterable[str],
                  evidence: Mapping[str, float] | None = None
                  ) -> GaussianDistribution:
        """P(variables | evidence) as a Gaussian."""
        conditioned = self.joint.condition(evidence or {})
        return conditioned.marginalize(list(variables))

    def affine_map(self, query: Sequence[str], evidence_vars: Sequence[str]
                   ) -> tuple[np.ndarray, np.ndarray]:
        """Posterior-mean map for a fixed evidence *set*: ``(gain, offset)``.

        The posterior mean of a Gaussian is affine in the evidence
        vector, so ``E[query | evidence_vars = e] = gain @ e + offset``.
        Computing the map once lets callers score arbitrarily many
        evidence vectors with one matmul instead of one O(n^3)
        conditioning each (the heart of batched counterfactual mining).
        """
        return self.joint.conditional_mean_map(list(query),
                                               list(evidence_vars))

    def map_query(self, variables: Iterable[str],
                  evidence: Mapping[str, float] | None = None
                  ) -> dict[str, float]:
        """MLE / MAP assignment: a Gaussian's mode is its mean."""
        posterior = self.posterior(variables, evidence)
        return {v: float(m)
                for v, m in zip(posterior.variables, posterior.mean)}
