"""Exact inference for linear-Gaussian Bayesian networks.

The joint over all nodes of a linear-Gaussian network is one multivariate
Gaussian, so posterior queries reduce to Gaussian conditioning:

    x = (x_a, x_b) ~ N(mu, Sigma)
    x_a | x_b = e  ~  N(mu_a + S_ab S_bb^-1 (e - mu_b),
                        S_aa - S_ab S_bb^-1 S_ba)

Degenerate (zero-variance) evidence blocks — produced by do() point
interventions — are handled with the Moore-Penrose pseudo-inverse.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np

from .network import LinearGaussianBayesianNetwork


class GaussianDistribution:
    """A multivariate Gaussian over named variables."""

    def __init__(self, variables: Iterable[str], mean: np.ndarray,
                 covariance: np.ndarray):
        self.variables = list(variables)
        self.mean = np.asarray(mean, dtype=float).reshape(len(self.variables))
        self.covariance = np.asarray(covariance, dtype=float).reshape(
            (len(self.variables), len(self.variables)))
        if not np.allclose(self.covariance, self.covariance.T, atol=1e-8):
            raise ValueError("covariance must be symmetric")

    def _indices(self, variables: Iterable[str]) -> list[int]:
        positions = {v: i for i, v in enumerate(self.variables)}
        try:
            return [positions[v] for v in variables]
        except KeyError as missing:
            raise KeyError(f"unknown variable {missing}") from None

    def mean_of(self, variable: str) -> float:
        """Marginal mean of one variable."""
        return float(self.mean[self._indices([variable])[0]])

    def variance_of(self, variable: str) -> float:
        """Marginal variance of one variable."""
        i = self._indices([variable])[0]
        return float(self.covariance[i, i])

    def marginalize(self, keep: Iterable[str]) -> "GaussianDistribution":
        """Marginal over ``keep`` (Gaussian marginals are submatrices)."""
        keep = list(keep)
        idx = self._indices(keep)
        return GaussianDistribution(
            keep, self.mean[idx], self.covariance[np.ix_(idx, idx)])

    def condition(self, evidence: Mapping[str, float]
                  ) -> "GaussianDistribution":
        """Condition on observed values, returning the posterior Gaussian."""
        observed = [v for v in self.variables if v in evidence]
        if not observed:
            return GaussianDistribution(self.variables, self.mean.copy(),
                                        self.covariance.copy())
        free = [v for v in self.variables if v not in evidence]
        a = self._indices(free)
        b = self._indices(observed)
        e = np.array([float(evidence[v]) for v in observed])
        s_aa = self.covariance[np.ix_(a, a)]
        s_ab = self.covariance[np.ix_(a, b)]
        s_bb = self.covariance[np.ix_(b, b)]
        # pinv handles singular evidence blocks from point interventions.
        s_bb_inv = np.linalg.pinv(s_bb, hermitian=True)
        gain = s_ab @ s_bb_inv
        new_mean = self.mean[a] + gain @ (e - self.mean[b])
        new_cov = s_aa - gain @ s_ab.T
        # Clamp tiny negative diagonal noise from the pinv round-trip.
        new_cov = (new_cov + new_cov.T) / 2.0
        diagonal = np.diag(new_cov).copy()
        diagonal[diagonal < 0] = 0.0
        np.fill_diagonal(new_cov, diagonal)
        return GaussianDistribution(free, new_mean, new_cov)

    def log_density(self, assignment: Mapping[str, float]) -> float:
        """Log density at a full assignment (pseudo-inverse for rank loss)."""
        x = np.array([float(assignment[v]) for v in self.variables])
        diff = x - self.mean
        cov = self.covariance
        sign, logdet = np.linalg.slogdet(cov)
        if sign <= 0:
            eigenvalues = np.linalg.eigvalsh(cov)
            positive = eigenvalues[eigenvalues > 1e-12]
            logdet = float(np.sum(np.log(positive)))
        quad = diff @ np.linalg.pinv(cov, hermitian=True) @ diff
        k = len(self.variables)
        return float(-0.5 * (k * np.log(2 * np.pi) + logdet + quad))

    def __repr__(self) -> str:
        return f"GaussianDistribution(variables={self.variables})"


class GaussianInference:
    """Posterior queries on a linear-Gaussian network.

    The network's joint Gaussian is materialized once at construction;
    queries are then O(n^3) conditioning operations.
    """

    def __init__(self, network: LinearGaussianBayesianNetwork):
        network.validate()
        self.network = network
        order, mean, cov = network.joint_parameters()
        self.joint = GaussianDistribution(order, mean, cov)

    def posterior(self, variables: Iterable[str],
                  evidence: Mapping[str, float] | None = None
                  ) -> GaussianDistribution:
        """P(variables | evidence) as a Gaussian."""
        conditioned = self.joint.condition(evidence or {})
        return conditioned.marginalize(list(variables))

    def map_query(self, variables: Iterable[str],
                  evidence: Mapping[str, float] | None = None
                  ) -> dict[str, float]:
        """MLE / MAP assignment: a Gaussian's mode is its mean."""
        posterior = self.posterior(variables, evidence)
        return {v: float(m)
                for v, m in zip(posterior.variables, posterior.mean)}
