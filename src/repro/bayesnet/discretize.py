"""Discretization of continuous signals for tabular-CPD models.

The discrete variant of the fault-selection model bins each kinematic
variable; :class:`Discretizer` owns the bin edges (uniform or quantile)
and maps both directions: value -> bin index and bin index -> midpoint.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np


class Discretizer:
    """Per-variable binning with invertible (midpoint) decoding."""

    def __init__(self, edges: Mapping[str, np.ndarray]):
        self.edges: dict[str, np.ndarray] = {}
        for variable, bin_edges in edges.items():
            array = np.asarray(bin_edges, dtype=float)
            if array.ndim != 1 or len(array) < 2:
                raise ValueError(
                    f"{variable!r} needs at least two bin edges")
            if (np.diff(array) <= 0).any():
                raise ValueError(
                    f"bin edges for {variable!r} must be increasing")
            self.edges[variable] = array

    @classmethod
    def uniform(cls, ranges: Mapping[str, tuple[float, float]],
                n_bins: int) -> "Discretizer":
        """Equal-width bins over explicit (low, high) ranges."""
        if n_bins < 1:
            raise ValueError("n_bins must be positive")
        edges = {}
        for variable, (low, high) in ranges.items():
            if not high > low:
                raise ValueError(f"empty range for {variable!r}")
            edges[variable] = np.linspace(low, high, n_bins + 1)
        return cls(edges)

    @classmethod
    def from_data(cls, data: Mapping[str, np.ndarray],
                  n_bins: int) -> "Discretizer":
        """Quantile bins estimated from data (duplicates nudged apart)."""
        if n_bins < 1:
            raise ValueError("n_bins must be positive")
        edges = {}
        quantiles = np.linspace(0.0, 1.0, n_bins + 1)
        for variable, values in data.items():
            array = np.asarray(values, dtype=float)
            raw = np.quantile(array, quantiles)
            # Constant or near-constant signals collapse quantiles; force
            # strictly increasing edges so binning stays well defined.  The
            # nudge must be scale-aware or it underflows against the edge
            # magnitude in float64.
            scale = max(raw[-1] - raw[0], float(np.abs(raw).max()), 1.0)
            step = 1e-9 * scale
            for i in range(1, len(raw)):
                minimum = raw[i - 1] + step
                if raw[i] <= minimum:
                    raw[i] = minimum
            edges[variable] = raw
        return cls(edges)

    def n_bins(self, variable: str) -> int:
        """Number of bins for ``variable``."""
        return len(self.edges[variable]) - 1

    def cardinalities(self) -> dict[str, int]:
        """Bin counts for every known variable."""
        return {v: self.n_bins(v) for v in self.edges}

    def transform_value(self, variable: str, value: float) -> int:
        """Bin index of ``value`` (values outside the range are clipped)."""
        bin_edges = self.edges[variable]
        index = int(np.searchsorted(bin_edges, value, side="right")) - 1
        return int(np.clip(index, 0, len(bin_edges) - 2))

    def transform(self, data: Mapping[str, np.ndarray]
                  ) -> dict[str, np.ndarray]:
        """Vectorized binning of every column present in the discretizer."""
        out = {}
        for variable, values in data.items():
            if variable not in self.edges:
                continue
            bin_edges = self.edges[variable]
            idx = np.searchsorted(bin_edges, np.asarray(values, dtype=float),
                                  side="right") - 1
            out[variable] = np.clip(idx, 0, len(bin_edges) - 2).astype(int)
        return out

    def midpoint(self, variable: str, index: int) -> float:
        """Center of bin ``index``, the canonical decoded value."""
        bin_edges = self.edges[variable]
        if not 0 <= index < len(bin_edges) - 1:
            raise IndexError(f"bin {index} out of range for {variable!r}")
        return float((bin_edges[index] + bin_edges[index + 1]) / 2.0)
