"""Bayesian network containers: a DAG plus one CPD per node."""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np

from .cpd import LinearGaussianCPD, TabularCPD
from .graph import DAG


class DiscreteBayesianNetwork:
    """A Bayesian network over discrete variables.

    Build by adding edges and then attaching one :class:`TabularCPD` per
    node whose parent list matches the graph.  ``validate`` checks the
    model is complete and consistent before inference.
    """

    def __init__(self, edges: Iterable[tuple[str, str]] = (),
                 nodes: Iterable[str] = ()):
        self.dag = DAG(edges=edges, nodes=nodes)
        self.cpds: dict[str, TabularCPD] = {}

    def add_edge(self, parent: str, child: str) -> None:
        """Add an edge to the skeleton (invalidates affected CPDs)."""
        self.dag.add_edge(parent, child)

    def add_cpd(self, cpd: TabularCPD) -> None:
        """Attach ``cpd`` to its node; parents must match the graph."""
        if cpd.variable not in self.dag:
            self.dag.add_node(cpd.variable)
        graph_parents = set(self.dag.parents(cpd.variable))
        if set(cpd.parents) != graph_parents:
            raise ValueError(
                f"CPD parents {cpd.parents} do not match graph parents "
                f"{sorted(graph_parents)} for node {cpd.variable!r}")
        self.cpds[cpd.variable] = cpd

    def cardinality(self, variable: str) -> int:
        """Number of states of ``variable``."""
        return self.cpds[variable].variable_card

    def validate(self) -> None:
        """Raise ``ValueError`` unless every node has a consistent CPD."""
        for node in self.dag.nodes():
            if node not in self.cpds:
                raise ValueError(f"node {node!r} has no CPD")
            cpd = self.cpds[node]
            for parent, card in zip(cpd.parents, cpd.parent_cards):
                if self.cpds[parent].variable_card != card:
                    raise ValueError(
                        f"CPD of {node!r} expects parent {parent!r} with "
                        f"{card} states, but {parent!r} has "
                        f"{self.cpds[parent].variable_card}")

    def copy(self) -> "DiscreteBayesianNetwork":
        """Structure-and-parameters copy (CPDs are immutable, shared)."""
        clone = DiscreteBayesianNetwork()
        clone.dag = self.dag.copy()
        clone.cpds = dict(self.cpds)
        return clone

    def sample(self, rng: np.random.Generator, n: int = 1,
               evidence: Mapping[str, int] | None = None) -> list[dict[str, int]]:
        """Ancestral sampling of ``n`` joint assignments.

        ``evidence`` clamps nodes to fixed states (forward sampling with
        clamping — valid when evidence nodes are ancestors of the nodes of
        interest, as in intervention sampling).
        """
        evidence = dict(evidence or {})
        order = self.dag.topological_order()
        draws = []
        for _ in range(n):
            assignment: dict[str, int] = {}
            for node in order:
                if node in evidence:
                    assignment[node] = int(evidence[node])
                else:
                    assignment[node] = self.cpds[node].sample(rng, assignment)
            draws.append(assignment)
        return draws

    def log_likelihood(self, assignment: Mapping[str, int]) -> float:
        """Log P(assignment) for a full joint assignment."""
        total = 0.0
        for node in self.dag.nodes():
            cpd = self.cpds[node]
            p = cpd.probability(int(assignment[node]), assignment)
            if p <= 0:
                return float("-inf")
            total += float(np.log(p))
        return total

    def __repr__(self) -> str:
        return (f"DiscreteBayesianNetwork(nodes={len(self.dag)}, "
                f"edges={len(self.dag.edges())})")


class LinearGaussianBayesianNetwork:
    """A Bayesian network whose nodes are all linear-Gaussian.

    The joint distribution is one multivariate Gaussian; see
    :meth:`joint_parameters` for the closed-form construction used by
    exact inference.
    """

    def __init__(self, edges: Iterable[tuple[str, str]] = (),
                 nodes: Iterable[str] = ()):
        self.dag = DAG(edges=edges, nodes=nodes)
        self.cpds: dict[str, LinearGaussianCPD] = {}

    def add_edge(self, parent: str, child: str) -> None:
        """Add an edge to the skeleton."""
        self.dag.add_edge(parent, child)

    def add_cpd(self, cpd: LinearGaussianCPD) -> None:
        """Attach ``cpd``; parents must match the graph."""
        if cpd.variable not in self.dag:
            self.dag.add_node(cpd.variable)
        graph_parents = set(self.dag.parents(cpd.variable))
        if set(cpd.parents) != graph_parents:
            raise ValueError(
                f"CPD parents {cpd.parents} do not match graph parents "
                f"{sorted(graph_parents)} for node {cpd.variable!r}")
        self.cpds[cpd.variable] = cpd

    def validate(self) -> None:
        """Raise ``ValueError`` unless every node has a CPD."""
        for node in self.dag.nodes():
            if node not in self.cpds:
                raise ValueError(f"node {node!r} has no CPD")

    def copy(self) -> "LinearGaussianBayesianNetwork":
        """Structure-and-parameters copy."""
        clone = LinearGaussianBayesianNetwork()
        clone.dag = self.dag.copy()
        clone.cpds = dict(self.cpds)
        return clone

    def joint_parameters(self) -> tuple[list[str], np.ndarray, np.ndarray]:
        """Return ``(order, mean, covariance)`` of the joint Gaussian.

        Uses the standard forward recursion over a topological order: with
        x = w . parents + b + noise,

        * ``mean[x]   = w . mean[parents] + b``
        * ``cov[x,y]  = w . cov[parents, y]`` for earlier y
        * ``cov[x,x]  = variance + w . cov[parents, parents] . w``
        """
        order = self.dag.topological_order()
        index = {node: i for i, node in enumerate(order)}
        n = len(order)
        mean = np.zeros(n)
        cov = np.zeros((n, n))
        for node in order:
            i = index[node]
            cpd = self.cpds[node]
            parent_idx = [index[p] for p in cpd.parents]
            w = cpd.weights
            mean[i] = cpd.intercept + w @ mean[parent_idx]
            if parent_idx:
                cross = w @ cov[parent_idx, :]
                cov[i, :] = cross
                cov[:, i] = cross
                cov[i, i] = cpd.variance + w @ cov[
                    np.ix_(parent_idx, parent_idx)] @ w
            else:
                cov[i, i] = cpd.variance
        return order, mean, cov

    def sample(self, rng: np.random.Generator, n: int = 1,
               evidence: Mapping[str, float] | None = None
               ) -> list[dict[str, float]]:
        """Ancestral sampling with optional clamping (see discrete twin)."""
        evidence = dict(evidence or {})
        order = self.dag.topological_order()
        draws = []
        for _ in range(n):
            assignment: dict[str, float] = {}
            for node in order:
                if node in evidence:
                    assignment[node] = float(evidence[node])
                else:
                    assignment[node] = self.cpds[node].sample(rng, assignment)
            draws.append(assignment)
        return draws

    def __repr__(self) -> str:
        return (f"LinearGaussianBayesianNetwork(nodes={len(self.dag)}, "
                f"edges={len(self.dag.edges())})")
