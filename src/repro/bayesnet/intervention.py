"""The do-operator: graph surgery for causal interventions.

``do(X = x)`` differs from conditioning on ``X = x``: an intervention cuts
the edges *into* X (nothing upstream caused the fault — we forced it), so
no belief flows backward from the corrupted node to its former parents,
while all forward causal paths stay intact.  This is exactly how the paper
models an injected fault (Section II-C, Eq. 2).

Both network families get the same treatment:

* the mutilated graph drops every edge into each intervened node, and
* the intervened node's CPD becomes a point mass at the forced value.
"""

from __future__ import annotations

from collections.abc import Mapping

from .cpd import LinearGaussianCPD, TabularCPD
from .network import DiscreteBayesianNetwork, LinearGaussianBayesianNetwork


def intervene_discrete(network: DiscreteBayesianNetwork,
                       interventions: Mapping[str, int]
                       ) -> DiscreteBayesianNetwork:
    """Return the mutilated network for ``do(var = state)`` assignments."""
    mutilated = network.copy()
    for variable, state in interventions.items():
        if variable not in mutilated.dag:
            raise KeyError(f"unknown intervention target {variable!r}")
        card = mutilated.cpds[variable].variable_card
        if not 0 <= int(state) < card:
            raise IndexError(
                f"state {state} out of range for {variable!r} (card {card})")
        mutilated.dag.remove_incoming_edges(variable)
        mutilated.cpds[variable] = TabularCPD.point_mass(
            variable, card, int(state))
    return mutilated


def intervene_gaussian(network: LinearGaussianBayesianNetwork,
                       interventions: Mapping[str, float]
                       ) -> LinearGaussianBayesianNetwork:
    """Return the mutilated network for ``do(var = value)`` assignments.

    The intervened node becomes a zero-variance root pinned at the forced
    value; downstream Gaussian inference handles the resulting singular
    covariance block through pseudo-inverse conditioning.
    """
    mutilated = network.copy()
    for variable, value in interventions.items():
        if variable not in mutilated.dag:
            raise KeyError(f"unknown intervention target {variable!r}")
        mutilated.dag.remove_incoming_edges(variable)
        mutilated.cpds[variable] = LinearGaussianCPD(
            variable, intercept=float(value), variance=0.0)
    return mutilated
