"""Conditional probability distributions attached to network nodes.

Two families are supported, matching the paper's needs:

* :class:`TabularCPD` for discretized variables (scene categories, fault
  indicators, binned kinematic state).
* :class:`LinearGaussianCPD` for continuous kinematic variables, where
  each node is Gaussian with a mean linear in its parents.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from .factors import DiscreteFactor


class TabularCPD:
    """P(variable | parents) as a conditional probability table.

    ``table`` has shape ``(variable_card, prod(parent_cards))`` with columns
    enumerating parent assignments in row-major (first parent slowest)
    order, the layout conventional for CPTs.  Every column must sum to 1.
    """

    def __init__(self, variable: str, variable_card: int,
                 table: np.ndarray | Sequence[Sequence[float]],
                 parents: Sequence[str] = (),
                 parent_cards: Sequence[int] = ()):
        self.variable = variable
        self.variable_card = int(variable_card)
        self.parents = tuple(parents)
        self.parent_cards = tuple(int(c) for c in parent_cards)
        if len(self.parents) != len(self.parent_cards):
            raise ValueError("parents and parent_cards length mismatch")
        expected_cols = int(np.prod(self.parent_cards)) if self.parents else 1
        array = np.asarray(table, dtype=float)
        if array.shape != (self.variable_card, expected_cols):
            raise ValueError(
                f"CPT for {variable!r} must have shape "
                f"({self.variable_card}, {expected_cols}); got {array.shape}")
        if (array < 0).any():
            raise ValueError(f"CPT for {variable!r} has negative entries")
        sums = array.sum(axis=0)
        if not np.allclose(sums, 1.0, atol=1e-6):
            raise ValueError(
                f"CPT columns for {variable!r} must each sum to 1")
        self.table = array

    @classmethod
    def point_mass(cls, variable: str, variable_card: int,
                   state: int) -> "TabularCPD":
        """A deterministic CPD: P(variable = state) = 1.

        Used by the do-operator to pin an intervened node.
        """
        column = np.zeros((variable_card, 1))
        column[state, 0] = 1.0
        return cls(variable, variable_card, column)

    @classmethod
    def uniform(cls, variable: str, variable_card: int,
                parents: Sequence[str] = (),
                parent_cards: Sequence[int] = ()) -> "TabularCPD":
        """A uniform CPD, handy as a prior or placeholder."""
        cols = int(np.prod(parent_cards)) if parents else 1
        table = np.full((variable_card, cols), 1.0 / variable_card)
        return cls(variable, variable_card, table, parents, parent_cards)

    def to_factor(self) -> DiscreteFactor:
        """View the CPT as a factor over (variable, *parents)."""
        scope = (self.variable,) + self.parents
        cards = (self.variable_card,) + self.parent_cards
        values = self.table.reshape(cards)
        return DiscreteFactor(scope, cards, values)

    def probability(self, state: int,
                    parent_states: Mapping[str, int] | None = None) -> float:
        """P(variable = state | parents = parent_states)."""
        column = self._column_index(parent_states or {})
        return float(self.table[state, column])

    def sample(self, rng: np.random.Generator,
               parent_states: Mapping[str, int] | None = None) -> int:
        """Draw a state given parent states."""
        column = self._column_index(parent_states or {})
        return int(rng.choice(self.variable_card,
                              p=self.table[:, column]))

    def _column_index(self, parent_states: Mapping[str, int]) -> int:
        index = 0
        for parent, card in zip(self.parents, self.parent_cards):
            state = int(parent_states[parent])
            if not 0 <= state < card:
                raise IndexError(f"state {state} out of range for {parent!r}")
            index = index * card + state
        return index

    def __repr__(self) -> str:
        return (f"TabularCPD({self.variable!r}, card={self.variable_card}, "
                f"parents={self.parents})")


class LinearGaussianCPD:
    """P(variable | parents) = Normal(intercept + weights . parents, variance).

    The ubiquitous conditional-linear-Gaussian parameterization: exact
    inference stays closed-form because the joint over all nodes is a
    single multivariate Gaussian.
    """

    def __init__(self, variable: str, intercept: float, variance: float,
                 parents: Sequence[str] = (),
                 weights: Iterable[float] = ()):
        self.variable = variable
        self.intercept = float(intercept)
        self.variance = float(variance)
        self.parents = tuple(parents)
        self.weights = np.asarray(list(weights), dtype=float)
        if self.weights.shape != (len(self.parents),):
            raise ValueError(
                f"need one weight per parent for {variable!r}; got "
                f"{self.weights.shape} for {len(self.parents)} parents")
        if self.variance < 0:
            raise ValueError(f"negative variance for {variable!r}")

    def mean(self, parent_values: Mapping[str, float] | None = None) -> float:
        """Conditional mean given parent values."""
        values = parent_values or {}
        total = self.intercept
        for parent, weight in zip(self.parents, self.weights):
            total += weight * float(values[parent])
        return total

    def sample(self, rng: np.random.Generator,
               parent_values: Mapping[str, float] | None = None) -> float:
        """Draw a value given parent values."""
        return float(rng.normal(self.mean(parent_values),
                                np.sqrt(self.variance)))

    def __repr__(self) -> str:
        return (f"LinearGaussianCPD({self.variable!r}, "
                f"parents={self.parents}, variance={self.variance:.4g})")
