"""Bayesian-network substrate: graphs, CPDs, exact inference, do-calculus.

Everything DriveFI's fault-selection engine needs, implemented from
scratch: discrete networks with variable elimination, linear-Gaussian
networks with closed-form inference, interventions, MLE learning, and
dynamic (temporal) unrolling.
"""

from .cpd import LinearGaussianCPD, TabularCPD
from .discretize import Discretizer
from .dynamic import DynamicBayesianNetwork, slice_node, split_slice_node
from .factors import DiscreteFactor, factor_product, identity_factor
from .gaussian import GaussianDistribution, GaussianInference
from .graph import DAG, CycleError
from .inference import VariableElimination
from .intervention import intervene_discrete, intervene_gaussian
from .learning import (LinearGaussianNetworkSuffStats,
                       LinearGaussianSuffStats, TabularSuffStats,
                       fit_discrete_network, fit_linear_gaussian_cpd,
                       fit_linear_gaussian_network, fit_tabular_cpd)
from .network import DiscreteBayesianNetwork, LinearGaussianBayesianNetwork
from .sampling import gaussian_likelihood_weighting, likelihood_weighting
from .score import (bic_score, empty_dag, fit_and_score,
                    gaussian_log_likelihood, n_parameters)

__all__ = [
    "DAG",
    "CycleError",
    "DiscreteFactor",
    "identity_factor",
    "factor_product",
    "TabularCPD",
    "LinearGaussianCPD",
    "DiscreteBayesianNetwork",
    "LinearGaussianBayesianNetwork",
    "VariableElimination",
    "GaussianDistribution",
    "GaussianInference",
    "intervene_discrete",
    "intervene_gaussian",
    "fit_tabular_cpd",
    "fit_discrete_network",
    "fit_linear_gaussian_cpd",
    "fit_linear_gaussian_network",
    "TabularSuffStats",
    "LinearGaussianSuffStats",
    "LinearGaussianNetworkSuffStats",
    "DynamicBayesianNetwork",
    "slice_node",
    "split_slice_node",
    "Discretizer",
    "likelihood_weighting",
    "gaussian_likelihood_weighting",
    "gaussian_log_likelihood",
    "n_parameters",
    "bic_score",
    "fit_and_score",
    "empty_dag",
]
