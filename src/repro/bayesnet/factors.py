"""Discrete factors: the workhorse of exact inference.

A :class:`DiscreteFactor` is a non-negative tensor indexed by a tuple of
named categorical variables.  Products, marginals, maximizations and
evidence reductions are all expressed as numpy tensor operations, so
variable elimination stays fast for the modest tree-widths of ADS models.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np


class DiscreteFactor:
    """A factor phi(X1, .., Xn) over named discrete variables.

    ``values`` has one axis per variable, in the order of ``variables``.
    """

    def __init__(self, variables: Iterable[str],
                 cardinalities: Iterable[int],
                 values: np.ndarray | Iterable[float]):
        self.variables = tuple(variables)
        self.cardinalities = tuple(int(c) for c in cardinalities)
        if len(self.variables) != len(set(self.variables)):
            raise ValueError(f"duplicate variables in {self.variables}")
        if len(self.variables) != len(self.cardinalities):
            raise ValueError("variables and cardinalities length mismatch")
        array = np.asarray(values, dtype=float).reshape(self.cardinalities)
        if (array < 0).any():
            raise ValueError("factor values must be non-negative")
        self.values = array

    # -- helpers -----------------------------------------------------------

    def _axis(self, variable: str) -> int:
        try:
            return self.variables.index(variable)
        except ValueError:
            raise KeyError(f"{variable!r} not in factor {self.variables}")

    def cardinality(self, variable: str) -> int:
        """Number of states of ``variable`` in this factor."""
        return self.cardinalities[self._axis(variable)]

    def copy(self) -> "DiscreteFactor":
        """Deep copy."""
        return DiscreteFactor(self.variables, self.cardinalities,
                              self.values.copy())

    # -- algebra -----------------------------------------------------------

    def product(self, other: "DiscreteFactor") -> "DiscreteFactor":
        """Pointwise factor product, aligning shared variables."""
        all_vars = list(self.variables)
        all_cards = list(self.cardinalities)
        for variable, card in zip(other.variables, other.cardinalities):
            if variable in all_vars:
                if all_cards[all_vars.index(variable)] != card:
                    raise ValueError(
                        f"cardinality mismatch for {variable!r}")
            else:
                all_vars.append(variable)
                all_cards.append(card)
        left = self._broadcast_to(all_vars, all_cards)
        right = other._broadcast_to(all_vars, all_cards)
        return DiscreteFactor(all_vars, all_cards, left * right)

    def _broadcast_to(self, all_vars: list[str],
                      all_cards: list[int]) -> np.ndarray:
        shape = [card if var in self.variables else 1
                 for var, card in zip(all_vars, all_cards)]
        source_order = [v for v in all_vars if v in self.variables]
        permutation = [self.variables.index(v) for v in source_order]
        return self.values.transpose(permutation).reshape(shape)

    def marginalize(self, variables: Iterable[str]) -> "DiscreteFactor":
        """Sum out ``variables``."""
        return self._eliminate(variables, np.sum)

    def maximize(self, variables: Iterable[str]) -> "DiscreteFactor":
        """Max out ``variables`` (max-product elimination)."""
        return self._eliminate(variables, np.max)

    def _eliminate(self, variables: Iterable[str], op) -> "DiscreteFactor":
        drop = list(variables)
        axes = tuple(sorted(self._axis(v) for v in drop))
        if not axes:
            return self.copy()
        keep = [v for v in self.variables if v not in drop]
        keep_cards = [self.cardinality(v) for v in keep]
        reduced = op(self.values, axis=axes)
        return DiscreteFactor(keep, keep_cards, reduced)

    def reduce(self, evidence: Mapping[str, int]) -> "DiscreteFactor":
        """Slice the factor at observed states, dropping those variables.

        Variables in ``evidence`` that do not appear in the factor are
        ignored, which lets callers pass one global evidence dict around.
        """
        indexer: list = [slice(None)] * len(self.variables)
        keep = []
        keep_cards = []
        for i, variable in enumerate(self.variables):
            if variable in evidence:
                state = int(evidence[variable])
                if not 0 <= state < self.cardinalities[i]:
                    raise IndexError(
                        f"state {state} out of range for {variable!r}")
                indexer[i] = state
            else:
                keep.append(variable)
                keep_cards.append(self.cardinalities[i])
        return DiscreteFactor(keep, keep_cards, self.values[tuple(indexer)])

    def normalize(self) -> "DiscreteFactor":
        """Scale values to sum to one (no-op direction if the sum is zero)."""
        total = self.values.sum()
        if total <= 0:
            raise ZeroDivisionError("cannot normalize an all-zero factor")
        return DiscreteFactor(self.variables, self.cardinalities,
                              self.values / total)

    # -- queries -----------------------------------------------------------

    def argmax(self) -> dict[str, int]:
        """The joint assignment with the highest value (first on ties)."""
        flat_index = int(np.argmax(self.values))
        states = np.unravel_index(flat_index, self.cardinalities)
        return dict(zip(self.variables, (int(s) for s in states)))

    def get(self, assignment: Mapping[str, int]) -> float:
        """Value at a full assignment of this factor's variables."""
        index = tuple(int(assignment[v]) for v in self.variables)
        return float(self.values[index])

    def __repr__(self) -> str:
        return (f"DiscreteFactor(variables={self.variables}, "
                f"cardinalities={self.cardinalities})")


def identity_factor() -> DiscreteFactor:
    """The multiplicative identity: a scalar factor with value 1."""
    return DiscreteFactor((), (), np.array(1.0))


def factor_product(factors: Iterable[DiscreteFactor]) -> DiscreteFactor:
    """Product of an iterable of factors (identity for the empty product)."""
    result = identity_factor()
    for factor in factors:
        result = result.product(factor)
    return result
