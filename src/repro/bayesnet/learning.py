"""Maximum-likelihood parameter learning from complete data.

The paper trains its temporal Bayesian network on golden (fault-free)
driving traces.  Structures are given (derived from the ADS architecture),
so learning reduces to per-node MLE:

* tabular nodes: smoothed frequency counts per parent configuration,
* linear-Gaussian nodes: ordinary least squares plus residual variance.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from .cpd import LinearGaussianCPD, TabularCPD
from .graph import DAG
from .network import DiscreteBayesianNetwork, LinearGaussianBayesianNetwork


def fit_tabular_cpd(variable: str, variable_card: int,
                    parents: Sequence[str], parent_cards: Sequence[int],
                    data: Mapping[str, np.ndarray],
                    pseudocount: float = 1.0) -> TabularCPD:
    """MLE (with Dirichlet smoothing) of one CPT from complete data.

    ``data`` maps variable name to an integer state array; all arrays must
    be the same length.  ``pseudocount`` > 0 keeps unseen configurations
    from producing zero columns.
    """
    if pseudocount < 0:
        raise ValueError("pseudocount must be non-negative")
    states = np.asarray(data[variable], dtype=int)
    n_cols = int(np.prod(parent_cards)) if parents else 1
    counts = np.full((variable_card, n_cols), float(pseudocount))
    columns = np.zeros(len(states), dtype=int)
    for parent, card in zip(parents, parent_cards):
        parent_states = np.asarray(data[parent], dtype=int)
        if parent_states.shape != states.shape:
            raise ValueError(f"column length mismatch for {parent!r}")
        columns = columns * card + parent_states
    np.add.at(counts, (states, columns), 1.0)
    totals = counts.sum(axis=0)
    empty = totals == 0
    if empty.any():
        # Zero pseudocount and unseen parent configuration: fall back to
        # uniform so the CPT stays a valid distribution.
        counts[:, empty] = 1.0
        totals = counts.sum(axis=0)
    return TabularCPD(variable, variable_card, counts / totals,
                      parents, parent_cards)


def fit_discrete_network(dag: DAG, cardinalities: Mapping[str, int],
                         data: Mapping[str, np.ndarray],
                         pseudocount: float = 1.0) -> DiscreteBayesianNetwork:
    """Fit every CPT of a discrete network with the structure of ``dag``."""
    network = DiscreteBayesianNetwork()
    network.dag = dag.copy()
    for node in dag.nodes():
        parents = dag.parents(node)
        cpd = fit_tabular_cpd(
            node, int(cardinalities[node]), parents,
            [int(cardinalities[p]) for p in parents], data, pseudocount)
        network.cpds[node] = cpd
    network.validate()
    return network


def fit_linear_gaussian_cpd(variable: str, parents: Sequence[str],
                            data: Mapping[str, np.ndarray],
                            min_variance: float = 1e-9
                            ) -> LinearGaussianCPD:
    """Least-squares fit of one linear-Gaussian CPD.

    ``min_variance`` floors the residual variance so later inference never
    divides by zero on deterministic relationships in the training data.
    """
    y = np.asarray(data[variable], dtype=float)
    n = len(y)
    if n == 0:
        raise ValueError(f"no data for {variable!r}")
    if parents:
        design = np.column_stack(
            [np.asarray(data[p], dtype=float) for p in parents]
            + [np.ones(n)])
        solution, *_ = np.linalg.lstsq(design, y, rcond=None)
        weights = solution[:-1]
        intercept = float(solution[-1])
        residuals = y - design @ solution
    else:
        weights = np.zeros(0)
        intercept = float(np.mean(y))
        residuals = y - intercept
    variance = float(np.mean(residuals ** 2)) if n else 0.0
    return LinearGaussianCPD(variable, intercept,
                             max(variance, min_variance), parents, weights)


def fit_linear_gaussian_network(dag: DAG, data: Mapping[str, np.ndarray],
                                min_variance: float = 1e-9
                                ) -> LinearGaussianBayesianNetwork:
    """Fit every node of a linear-Gaussian network with structure ``dag``."""
    network = LinearGaussianBayesianNetwork()
    network.dag = dag.copy()
    for node in dag.nodes():
        network.cpds[node] = fit_linear_gaussian_cpd(
            node, dag.parents(node), data, min_variance)
    network.validate()
    return network
