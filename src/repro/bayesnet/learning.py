"""Maximum-likelihood parameter learning from complete data.

The paper trains its temporal Bayesian network on golden (fault-free)
driving traces.  Structures are given (derived from the ADS architecture),
so learning reduces to per-node MLE:

* tabular nodes: smoothed frequency counts per parent configuration,
* linear-Gaussian nodes: ordinary least squares plus residual variance.

Both families factor through *sufficient statistics*, so next to the
batch ``fit_*`` functions (the reference oracles, which need the whole
dataset at once) this module provides streaming accumulators —
:class:`TabularSuffStats`, :class:`LinearGaussianSuffStats`, and the
network-level :class:`LinearGaussianNetworkSuffStats` — whose
``update(chunk)`` folds aligned column chunks in as they arrive and
whose ``finalize()`` reproduces the batch fit: exactly for tabular
counts (integer arithmetic), and to ~1e-12 relative for
linear-Gaussian weights/variance (centered chunk-merged moments kept in
extended precision, normal equations polished by iterative refinement).
Out-of-core training folds each golden trace the moment it completes
and never holds two traces' samples at once.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from .cpd import LinearGaussianCPD, TabularCPD
from .graph import DAG
from .network import DiscreteBayesianNetwork, LinearGaussianBayesianNetwork


def fit_tabular_cpd(variable: str, variable_card: int,
                    parents: Sequence[str], parent_cards: Sequence[int],
                    data: Mapping[str, np.ndarray],
                    pseudocount: float = 1.0) -> TabularCPD:
    """MLE (with Dirichlet smoothing) of one CPT from complete data.

    ``data`` maps variable name to an integer state array; all arrays must
    be the same length.  ``pseudocount`` > 0 keeps unseen configurations
    from producing zero columns.
    """
    if pseudocount < 0:
        raise ValueError("pseudocount must be non-negative")
    states = np.asarray(data[variable], dtype=int)
    n_cols = int(np.prod(parent_cards)) if parents else 1
    counts = np.full((variable_card, n_cols), float(pseudocount))
    columns = np.zeros(len(states), dtype=int)
    for parent, card in zip(parents, parent_cards):
        parent_states = np.asarray(data[parent], dtype=int)
        if parent_states.shape != states.shape:
            raise ValueError(f"column length mismatch for {parent!r}")
        columns = columns * card + parent_states
    np.add.at(counts, (states, columns), 1.0)
    totals = counts.sum(axis=0)
    empty = totals == 0
    if empty.any():
        # Zero pseudocount and unseen parent configuration: fall back to
        # uniform so the CPT stays a valid distribution.
        counts[:, empty] = 1.0
        totals = counts.sum(axis=0)
    return TabularCPD(variable, variable_card, counts / totals,
                      parents, parent_cards)


def fit_discrete_network(dag: DAG, cardinalities: Mapping[str, int],
                         data: Mapping[str, np.ndarray],
                         pseudocount: float = 1.0) -> DiscreteBayesianNetwork:
    """Fit every CPT of a discrete network with the structure of ``dag``."""
    network = DiscreteBayesianNetwork()
    network.dag = dag.copy()
    for node in dag.nodes():
        parents = dag.parents(node)
        cpd = fit_tabular_cpd(
            node, int(cardinalities[node]), parents,
            [int(cardinalities[p]) for p in parents], data, pseudocount)
        network.cpds[node] = cpd
    network.validate()
    return network


def fit_linear_gaussian_cpd(variable: str, parents: Sequence[str],
                            data: Mapping[str, np.ndarray],
                            min_variance: float = 1e-9
                            ) -> LinearGaussianCPD:
    """Least-squares fit of one linear-Gaussian CPD.

    ``min_variance`` floors the residual variance so later inference never
    divides by zero on deterministic relationships in the training data.
    """
    y = np.asarray(data[variable], dtype=float)
    n = len(y)
    if n == 0:
        raise ValueError(f"no data for {variable!r}")
    if parents:
        design = np.column_stack(
            [np.asarray(data[p], dtype=float) for p in parents]
            + [np.ones(n)])
        solution, *_ = np.linalg.lstsq(design, y, rcond=None)
        weights = solution[:-1]
        intercept = float(solution[-1])
        residuals = y - design @ solution
    else:
        weights = np.zeros(0)
        intercept = float(np.mean(y))
        residuals = y - intercept
    variance = float(np.mean(residuals ** 2)) if n else 0.0
    return LinearGaussianCPD(variable, intercept,
                             max(variance, min_variance), parents, weights)


def fit_linear_gaussian_network(dag: DAG, data: Mapping[str, np.ndarray],
                                min_variance: float = 1e-9
                                ) -> LinearGaussianBayesianNetwork:
    """Fit every node of a linear-Gaussian network with structure ``dag``."""
    network = LinearGaussianBayesianNetwork()
    network.dag = dag.copy()
    for node in dag.nodes():
        network.cpds[node] = fit_linear_gaussian_cpd(
            node, dag.parents(node), data, min_variance)
    network.validate()
    return network


# -- streaming sufficient statistics ------------------------------------------


class TabularSuffStats:
    """Streaming counterpart of :func:`fit_tabular_cpd`.

    Accumulates raw (unsmoothed) configuration counts chunk by chunk;
    :meth:`finalize` applies the Dirichlet smoothing and normalization
    of the batch fit.  Counts are integer-valued float sums, so the
    accumulation is exact in any fold order, and with an integer
    ``pseudocount`` (the campaign default) the finalized CPT equals the
    batch fit bit for bit.
    """

    def __init__(self, variable: str, variable_card: int,
                 parents: Sequence[str], parent_cards: Sequence[int],
                 pseudocount: float = 1.0):
        if pseudocount < 0:
            raise ValueError("pseudocount must be non-negative")
        self.variable = variable
        self.variable_card = int(variable_card)
        self.parents = list(parents)
        self.parent_cards = [int(card) for card in parent_cards]
        self.pseudocount = pseudocount
        n_cols = int(np.prod(self.parent_cards)) if self.parents else 1
        self._counts = np.zeros((self.variable_card, n_cols))
        self.n = 0

    def update(self, data: Mapping[str, np.ndarray]) -> None:
        """Fold one aligned chunk of integer state columns in."""
        states = np.asarray(data[self.variable], dtype=int)
        columns = np.zeros(len(states), dtype=int)
        for parent, card in zip(self.parents, self.parent_cards):
            parent_states = np.asarray(data[parent], dtype=int)
            if parent_states.shape != states.shape:
                raise ValueError(f"column length mismatch for {parent!r}")
            columns = columns * card + parent_states
        np.add.at(self._counts, (states, columns), 1.0)
        self.n += len(states)

    def finalize(self) -> TabularCPD:
        """The smoothed CPT of everything folded so far."""
        counts = self._counts + float(self.pseudocount)
        totals = counts.sum(axis=0)
        empty = totals == 0
        if empty.any():
            counts[:, empty] = 1.0
            totals = counts.sum(axis=0)
        return TabularCPD(self.variable, self.variable_card,
                          counts / totals, self.parents, self.parent_cards)


class LinearGaussianSuffStats:
    """Streaming counterpart of :func:`fit_linear_gaussian_cpd`.

    Maintains centered second moments (parent scatter, parent-child
    cross moments, child residual energy) via the chunk-merge form of
    Welford's algorithm, accumulated in extended precision
    (``np.longdouble``) so no large-magnitude cancellation ever reaches
    the result.  :meth:`finalize` solves the centered normal equations
    in float64 and polishes the solution with two extended-precision
    iterative-refinement steps, landing on the batch least-squares fit
    to ~1e-12 relative — far inside the 1e-9 equivalence bound the
    training pipeline is held to.
    """

    def __init__(self, variable: str, parents: Sequence[str],
                 min_variance: float = 1e-9):
        self.variable = variable
        self.parents = list(parents)
        self.min_variance = min_variance
        k = len(self.parents)
        self.n = 0
        self._mean_x = np.zeros(k, dtype=np.longdouble)
        self._mean_y = np.longdouble(0.0)
        self._cxx = np.zeros((k, k), dtype=np.longdouble)
        self._cxy = np.zeros(k, dtype=np.longdouble)
        self._cyy = np.longdouble(0.0)

    def update(self, data: Mapping[str, np.ndarray]) -> None:
        """Fold one aligned chunk of float columns in."""
        y = np.asarray(data[self.variable],
                       dtype=np.longdouble)
        chunk = len(y)
        if chunk == 0:
            return
        # The whole chunk pass runs in extended precision: the final
        # residual variance subtracts explained from total energy, so
        # float64 rounding in the moments themselves (not just in
        # their accumulation) would surface amplified by the
        # total/residual variance ratio of near-deterministic nodes.
        mean_y = y.sum() / chunk
        yc = y - mean_y
        if self.parents:
            design = np.column_stack([
                self._parent_column(data, parent, y.shape)
                for parent in self.parents])
            mean_x = design.sum(axis=0) / chunk
            xc = design - mean_x
            cxx = xc.T @ xc
            cxy = xc.T @ yc
        n_prev, n = self.n, self.n + chunk
        # Chunk-merge (parallel Welford): every term stays on the scale
        # of a centered moment, so the accumulators never subtract
        # large near-equal numbers.
        shrink = (np.longdouble(n_prev) * chunk) / n
        dy = mean_y - self._mean_y
        self._cyy += yc @ yc + shrink * dy * dy
        self._mean_y += dy * chunk / n
        if self.parents:
            dx = mean_x - self._mean_x
            self._cxx += cxx + shrink * np.outer(dx, dx)
            self._cxy += cxy + shrink * dx * dy
            self._mean_x += dx * chunk / n
        self.n = n

    def _parent_column(self, data, parent, shape) -> np.ndarray:
        column = np.asarray(data[parent], dtype=np.longdouble)
        if column.shape != shape:
            raise ValueError(f"column length mismatch for {parent!r}")
        return column

    def _solve_weights(self) -> np.ndarray:
        """Least-squares weights from the centered normal equations."""
        cxx = self._cxx.astype(float)
        cxy = self._cxy.astype(float)
        try:
            weights = np.linalg.solve(cxx, cxy)
        except np.linalg.LinAlgError:
            return self._solve_rank_deficient()
        for _ in range(2):
            residual = (self._cxy
                        - self._cxx @ weights.astype(np.longdouble))
            try:
                weights = weights + np.linalg.solve(
                    cxx, residual.astype(float))
            except np.linalg.LinAlgError:   # pragma: no cover - defensive
                break
        return weights

    def _solve_rank_deficient(self) -> np.ndarray:
        """Minimum-norm weights for degenerate (constant/collinear)
        parent scatter.

        The batch path's ``lstsq`` minimizes the norm of the *stacked*
        ``(weights, intercept)`` vector of the intercept-augmented
        design, so the fallback must too: with ``X+ = (X'X)+ X'``, the
        min-norm solution is the pseudo-inverse of the augmented
        normal matrix applied to the augmented moment vector.  Every
        exact minimizer satisfies ``intercept = mean_y - w @ mean_x``
        (the intercept normal equation), so :meth:`finalize` recovers
        the matching intercept and residual variance unchanged.
        """
        k = len(self.parents)
        n = np.longdouble(self.n)
        augmented = np.empty((k + 1, k + 1), dtype=np.longdouble)
        augmented[:k, :k] = self._cxx + n * np.outer(self._mean_x,
                                                     self._mean_x)
        augmented[:k, k] = augmented[k, :k] = n * self._mean_x
        augmented[k, k] = n
        moments = np.empty(k + 1, dtype=np.longdouble)
        moments[:k] = self._cxy + n * self._mean_x * self._mean_y
        moments[k] = n * self._mean_y
        solution = np.linalg.pinv(augmented.astype(float)) \
            @ moments.astype(float)
        return solution[:k]

    def finalize(self) -> LinearGaussianCPD:
        """The least-squares CPD of everything folded so far."""
        if self.n == 0:
            raise ValueError(f"no data for {self.variable!r}")
        n = np.longdouble(self.n)
        if self.parents:
            weights = self._solve_weights()
            w = weights.astype(np.longdouble)
            intercept = float(self._mean_y - w @ self._mean_x)
            residual_ss = (self._cyy - 2.0 * (w @ self._cxy)
                           + w @ self._cxx @ w)
            variance = max(float(residual_ss / n), 0.0)
        else:
            weights = np.zeros(0)
            intercept = float(self._mean_y)
            variance = max(float(self._cyy / n), 0.0)
        return LinearGaussianCPD(self.variable, intercept,
                                 max(variance, self.min_variance),
                                 self.parents, weights)


class LinearGaussianNetworkSuffStats:
    """Streaming counterpart of :func:`fit_linear_gaussian_network`.

    One :class:`LinearGaussianSuffStats` per node of ``dag``;
    ``update(chunk)`` folds an aligned column chunk into every node and
    ``finalize()`` assembles the fitted network.
    """

    def __init__(self, dag: DAG, min_variance: float = 1e-9):
        self.dag = dag.copy()
        # Parent order comes from the *original* dag: DAG.copy rebuilds
        # adjacency parent-major, and the batch fit reads parent lists
        # off the dag it was handed, so weights must align to that.
        self._stats = {
            node: LinearGaussianSuffStats(node, dag.parents(node),
                                          min_variance)
            for node in dag.nodes()}

    @property
    def n(self) -> int:
        """Samples folded in so far."""
        return next(iter(self._stats.values())).n if self._stats else 0

    def update(self, data: Mapping[str, np.ndarray]) -> None:
        """Fold one aligned chunk (all node columns) into every node.

        Columns are converted to extended precision once here — a
        column serves one node as child and several as parent, and
        ``np.asarray`` passes already-converted arrays through without
        copying in the per-node updates.
        """
        converted = {name: np.asarray(column, dtype=np.longdouble)
                     for name, column in data.items()}
        for stats in self._stats.values():
            stats.update(converted)

    def finalize(self) -> LinearGaussianBayesianNetwork:
        """The fitted network of everything folded so far."""
        network = LinearGaussianBayesianNetwork()
        network.dag = self.dag.copy()
        for node, stats in self._stats.items():
            network.cpds[node] = stats.finalize()
        network.validate()
        return network
