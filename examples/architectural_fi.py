"""Architectural fault injection: from a register bit to a driving hazard.

Walks fault model (a) end to end:

1. run real ADS kernels (GEMM, Kalman update, PID, IDM) on the tiny ISA
   and flip register bits at random dynamic instructions,
2. classify each flip (masked / SDC / crash / hang),
3. propagate the silent corruptions into the matching ADS variable and
   drive the closed-loop simulator,
4. observe that — as in the paper — *none* of it produces a hazard.

Run with::

    python examples/architectural_fi.py
"""

from collections import Counter

import numpy as np

from repro.analysis import ascii_table
from repro.arch import (ArchitecturalInjector, Outcome, default_kernels,
                        outcome_rates, run_campaign,
                        run_instruction_campaign)
from repro.core import Campaign


def main() -> None:
    kernels = default_kernels()

    print("== 1. Register-state campaign (1000 flips) ==")
    results = run_campaign(kernels, n_injections=1000, seed=0)
    rates = outcome_rates(results)
    print(ascii_table(["outcome", "rate", "paper"], [
        ["masked", f"{rates['masked']:.1%}", "~90%"],
        ["sdc", f"{rates['sdc']:.1%}", "1.93%"],
        ["crash+hang", f"{rates['crash'] + rates['hang']:.1%}", "7.35%"]]))

    print("== 2. Where do SDCs come from? ==")
    by_kernel: Counter = Counter()
    for result in results:
        if result.outcome is Outcome.SDC:
            by_kernel[result.kernel] += 1
    print(ascii_table(["kernel", "SDCs"], sorted(by_kernel.items())))

    print("== 3. How large are the silent corruptions? ==")
    errors = np.array([r.relative_error for r in results
                       if r.outcome is Outcome.SDC
                       and np.isfinite(r.relative_error)])
    print(f"median relative error {np.median(errors):.2e}; "
          f"90th percentile {np.percentile(errors, 90):.2e} — most SDCs "
          f"are numerically tiny, a few are catastrophic (exponent bits)\n")

    print("== 4. Instruction-memory campaign (300 flips) ==")
    instr_rates = outcome_rates(
        run_instruction_campaign(kernels, 300, seed=1))
    print(ascii_table(["outcome", "rate"], sorted(instr_rates.items())))
    print("Opcode corruption traps at decode, so instruction flips crash "
          "far more often than register flips.\n")

    print("== 5. Driving the SDCs through the full stack ==")
    campaign = Campaign()
    summary, outcomes = campaign.architectural_campaign(120, seed=0)
    print(f"outcome mix of 120 sampled faults: {outcomes}")
    print(f"SDC-driven closed-loop experiments: {summary.total}; "
          f"hazards: {summary.hazards} (paper: 0 in 5000)")


if __name__ == "__main__":
    main()
