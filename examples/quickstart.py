"""Quickstart: golden run, one injected fault, and Bayesian mining.

Run with::

    python examples/quickstart.py

Walks the full DriveFI loop on a reduced scenario set in under a minute:
collect fault-free traces, train the 3-TBN, mine critical faults, and
validate the top candidates in the closed-loop simulator.
"""

from dataclasses import replace

from repro.analysis import ascii_table
from repro.core import Campaign, CampaignConfig, FaultSpec
from repro.sim import (empty_road, highway_cruise, lead_vehicle_cutin,
                       stalled_vehicle)


def main() -> None:
    scenarios = [replace(empty_road(), duration=15.0),
                 replace(highway_cruise(), duration=20.0),
                 replace(lead_vehicle_cutin(), duration=15.0),
                 replace(stalled_vehicle(), duration=20.0)]
    campaign = Campaign(scenarios, CampaignConfig())

    print("== 1. Golden (fault-free) runs ==")
    rows = []
    for name, run in campaign.golden_runs().items():
        rows.append([name, run.hazard.value,
                     run.min_delta_long, run.min_delta_lat])
    print(ascii_table(["scenario", "hazard", "min delta_long (m)",
                       "min delta_lat (m)"], rows))

    print("== 2. One hand-picked fault (paper Example 1 shape) ==")
    fault = FaultSpec("throttle", 1.0, start_tick=96, duration_ticks=10)
    record = campaign.run_fault("lead_vehicle_cutin", fault)
    print(f"max throttle at the cut-in instant -> {record.hazard.value} "
          f"(min delta_long {record.min_delta_long:.2f} m)\n")

    print("== 3. Bayesian fault injection ==")
    result = campaign.bayesian_campaign(top_k=10)
    print(f"scored {result.mining.n_scored} candidate faults over "
          f"{result.mining.n_scenes} scenes "
          f"in {result.mining.wall_seconds:.2f}s")
    rows = []
    for candidate, record in zip(result.candidates,
                                 result.summary.records):
        rows.append([candidate.scenario, candidate.variable,
                     candidate.value, candidate.predicted_minimum,
                     record.hazard.value])
    print(ascii_table(["scenario", "variable", "value",
                       "predicted delta (m)", "validated outcome"], rows))
    print(f"precision: {result.summary.hazards}/{result.summary.total} "
          f"mined faults manifested as hazards")


if __name__ == "__main__":
    main()
