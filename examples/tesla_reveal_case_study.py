"""Paper Example 2: the Tesla Autopilot crash shape.

The ego follows a lead vehicle (TV1) that occludes a stopped car (TV2)
farther down the lane.  TV1 swerves away; the ego suddenly faces TV2 with
just enough room for a maximum-braking stop.  A world-model fault during
that braking — the tracker briefly believes the road is clear — delays
braking past the point of no return, reproducing the fatal outcome the
paper attributes to delayed perception.

Run with::

    python examples/tesla_reveal_case_study.py
"""

from repro.analysis import ascii_table
from repro.core import FaultSpec, run_scenario
from repro.sim import two_lead_reveal


def main() -> None:
    scenario = two_lead_reveal()

    golden = run_scenario(scenario, seed=0)
    print(f"golden run: {golden.hazard.value} "
          f"(min delta_long {golden.min_delta_long:.2f} m) — "
          f"the stack stops in time without faults\n")

    # Sweep the same tracked-gap corruption across the braking phase to
    # show the criticality window the Bayesian engine exploits.
    rows = []
    for start_tick in range(80, 280, 20):
        fault = FaultSpec("tracked_gap", 250.0, start_tick=start_tick,
                          duration_ticks=14)
        result = run_scenario(scenario, seed=0, faults=[fault],
                              horizon_after_fault=12.0)
        rows.append([start_tick, start_tick * 0.05,
                     result.hazard.value, result.min_delta_long])
    print(ascii_table(
        ["injection tick", "t (s)", "outcome", "min delta_long (m)"], rows))
    print("The same fault is masked early (plenty of distance) and "
          "catastrophic mid-braking — timing is everything, which is "
          "why random injection finds nothing.")


if __name__ == "__main__":
    main()
