"""Paper Example 1: a throttle fault at a lead-vehicle cut-in.

Reproduces Fig. 4 (top row) of the paper: a target vehicle cuts into the
ego lane, collapsing the safety potential; an injected max-throttle
command at that instant tips delta below zero, which braking at a_max can
no longer recover.  Prints the delta/speed time series for the fault-free
and faulted runs side by side.

Run with::

    python examples/cutin_case_study.py
"""

import numpy as np

from repro.analysis import csv_series
from repro.core import FaultSpec, run_scenario
from repro.sim import lead_vehicle_cutin

INJECTION_TICK = 104     # the cut-in instant found by Bayesian mining
FAULT = FaultSpec("throttle", 1.0, start_tick=INJECTION_TICK,
                  duration_ticks=4)


def main() -> None:
    scenario = lead_vehicle_cutin()
    golden = run_scenario(scenario, seed=0, duration=14.0)
    faulted = run_scenario(scenario, seed=0, faults=[FAULT],
                           horizon_after_fault=8.0)

    print(f"golden : {golden.hazard.value:18s} "
          f"min delta_long = {golden.min_delta_long:6.2f} m")
    print(f"faulted: {faulted.hazard.value:18s} "
          f"min delta_long = {faulted.min_delta_long:6.2f} m")
    print()

    golden_arrays = golden.trace.as_arrays()
    faulted_arrays = faulted.trace.as_arrays()
    n = min(len(golden_arrays["time"]), len(faulted_arrays["time"]))
    rows = []
    for i in range(n):
        rows.append([golden_arrays["time"][i],
                     golden_arrays["v"][i], faulted_arrays["v"][i],
                     golden_arrays["delta_long"][i],
                     faulted_arrays["delta_long"][i],
                     faulted_arrays["throttle"][i]])
    print("time series (CSV; plot delta_long_faulted to see the dip):")
    print(csv_series(["t", "v_golden", "v_faulted", "delta_long_golden",
                      "delta_long_faulted", "throttle_faulted"], rows))

    dip = float(np.min(faulted_arrays["delta_long"]))
    print(f"faulted delta_long dips to {dip:.2f} m "
          f"(golden stays at {golden.min_delta_long:.2f} m)")


if __name__ == "__main__":
    main()
