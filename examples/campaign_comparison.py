"""Random vs exhaustive vs Bayesian injection: the paper's headline.

Runs (scaled-down versions of) the paper's three campaigns on the same
scene population and prints the comparison table: hazard yields, costs,
and the acceleration factor of Bayesian FI over the exhaustive grid.

Run with::

    python examples/campaign_comparison.py
"""

from dataclasses import replace

from repro.analysis import acceleration_report, ascii_table, hazard_table
from repro.core import Campaign, CampaignConfig
from repro.sim import (braking_lead, empty_road, highway_cruise,
                       lead_vehicle_cutin, occluded_pedestrian,
                       overtake_cutin, queued_traffic, stalled_vehicle,
                       two_lead_reveal)


def main() -> None:
    scenarios = [replace(empty_road(), duration=15.0),
                 replace(highway_cruise(), duration=20.0),
                 replace(lead_vehicle_cutin(), duration=15.0),
                 replace(two_lead_reveal(), duration=20.0),
                 replace(braking_lead(), duration=20.0),
                 replace(stalled_vehicle(), duration=20.0),
                 replace(overtake_cutin(), duration=20.0),
                 replace(queued_traffic(), duration=20.0),
                 replace(occluded_pedestrian(), duration=20.0)]
    campaign = Campaign(scenarios, CampaignConfig())

    print("== Random architectural campaign (fault model a) ==")
    arch_summary, outcomes = campaign.architectural_campaign(150, seed=0)
    print(f"outcomes of 150 register flips: {outcomes}")
    print(f"SDCs driven through the simulator: {arch_summary.total}, "
          f"hazards: {arch_summary.hazards}\n")

    print("== Exhaustive min/max grid (fault model b, strided sample) ==")
    sample = campaign.exhaustive_campaign(tick_stride=25)
    grid = campaign.grid_size()
    print(f"full grid: {grid} faults; sampled {sample.total}; "
          f"sample hazard rate {sample.hazard_rate:.1%}")
    rows = [[v, n, h, f"{rate:.1%}"]
            for v, n, h, rate in hazard_table(sample)][:8]
    print(ascii_table(["variable", "experiments", "hazards", "rate"], rows))

    print("== Bayesian campaign (fault model c) ==")
    bayesian = campaign.bayesian_campaign()
    print(f"mined {len(bayesian.candidates)} critical faults in "
          f"{bayesian.mining.wall_seconds:.1f}s; "
          f"{bayesian.summary.hazards} validated as hazards "
          f"({bayesian.precision:.0%} precision)\n")

    report = acceleration_report(grid, sample, bayesian)
    print(ascii_table(["metric", "value"], [
        ["full exhaustive grid (faults)", report.grid_experiments],
        ["per-experiment cost (s)", report.per_experiment_seconds],
        ["extrapolated exhaustive cost (s)", report.exhaustive_seconds],
        ["Bayesian cost: train+mine+validate (s)",
         report.bayesian_seconds],
        ["acceleration factor",
         f"{report.acceleration_factor:,.0f}x"],
        ["mined-fault precision", f"{report.precision:.0%}"],
    ]))


if __name__ == "__main__":
    main()
