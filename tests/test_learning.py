"""Tests for MLE parameter learning: recover known generators from samples."""

import numpy as np
import pytest

from repro.bayesnet import (DAG, DiscreteBayesianNetwork, GaussianInference,
                            LinearGaussianBayesianNetwork, LinearGaussianCPD,
                            TabularCPD, fit_discrete_network,
                            fit_linear_gaussian_cpd,
                            fit_linear_gaussian_network, fit_tabular_cpd)


class TestTabularLearning:
    def test_recovers_root_distribution(self):
        rng = np.random.default_rng(0)
        states = rng.choice(3, size=5000, p=[0.2, 0.3, 0.5])
        cpd = fit_tabular_cpd("x", 3, [], [], {"x": states}, pseudocount=0)
        assert np.allclose(cpd.table[:, 0], [0.2, 0.3, 0.5], atol=0.03)

    def test_recovers_conditional(self):
        rng = np.random.default_rng(1)
        parent = rng.choice(2, size=8000)
        table = np.array([[0.9, 0.3], [0.1, 0.7]])
        child = np.array([rng.choice(2, p=table[:, p]) for p in parent])
        cpd = fit_tabular_cpd("c", 2, ["p"], [2],
                              {"c": child, "p": parent}, pseudocount=0)
        assert np.allclose(cpd.table, table, atol=0.03)

    def test_pseudocount_smooths_unseen(self):
        data = {"c": np.array([0, 0]), "p": np.array([0, 0])}
        cpd = fit_tabular_cpd("c", 2, ["p"], [2], data, pseudocount=1.0)
        # Parent state 1 never observed: should be uniform from smoothing.
        assert np.allclose(cpd.table[:, 1], [0.5, 0.5])

    def test_zero_pseudocount_unseen_column_uniform(self):
        data = {"c": np.array([0]), "p": np.array([0])}
        cpd = fit_tabular_cpd("c", 2, ["p"], [2], data, pseudocount=0.0)
        assert np.allclose(cpd.table[:, 1], [0.5, 0.5])

    def test_negative_pseudocount_rejected(self):
        with pytest.raises(ValueError):
            fit_tabular_cpd("x", 2, [], [], {"x": np.array([0])},
                            pseudocount=-1)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            fit_tabular_cpd("c", 2, ["p"], [2],
                            {"c": np.array([0, 1]), "p": np.array([0])})

    def test_fit_network_end_to_end(self):
        generator = DiscreteBayesianNetwork(edges=[("a", "b")])
        generator.add_cpd(TabularCPD("a", 2, [[0.7], [0.3]]))
        generator.add_cpd(TabularCPD("b", 2, [[0.8, 0.1], [0.2, 0.9]],
                                     parents=["a"], parent_cards=[2]))
        rng = np.random.default_rng(2)
        draws = generator.sample(rng, n=6000)
        data = {v: np.array([d[v] for d in draws]) for v in ("a", "b")}
        learned = fit_discrete_network(
            DAG(edges=[("a", "b")]), {"a": 2, "b": 2}, data, pseudocount=0)
        assert np.allclose(learned.cpds["a"].table[:, 0], [0.7, 0.3],
                           atol=0.03)
        assert np.allclose(learned.cpds["b"].table,
                           generator.cpds["b"].table, atol=0.04)


class TestLinearGaussianLearning:
    def test_recovers_regression(self):
        rng = np.random.default_rng(3)
        a = rng.normal(0, 2, size=6000)
        b = rng.normal(1, 1, size=6000)
        noise = rng.normal(0, 0.5, size=6000)
        y = 2.0 * a - 3.0 * b + 4.0 + noise
        cpd = fit_linear_gaussian_cpd("y", ["a", "b"],
                                      {"a": a, "b": b, "y": y})
        assert cpd.weights[0] == pytest.approx(2.0, abs=0.03)
        assert cpd.weights[1] == pytest.approx(-3.0, abs=0.03)
        assert cpd.intercept == pytest.approx(4.0, abs=0.1)
        assert cpd.variance == pytest.approx(0.25, rel=0.1)

    def test_root_node_fits_mean_variance(self):
        rng = np.random.default_rng(4)
        x = rng.normal(5.0, 3.0, size=5000)
        cpd = fit_linear_gaussian_cpd("x", [], {"x": x})
        assert cpd.intercept == pytest.approx(5.0, abs=0.15)
        assert cpd.variance == pytest.approx(9.0, rel=0.1)

    def test_variance_floor(self):
        x = np.linspace(0, 1, 100)
        cpd = fit_linear_gaussian_cpd("y", ["x"], {"x": x, "y": 2 * x},
                                      min_variance=1e-6)
        assert cpd.variance >= 1e-6

    def test_empty_data_rejected(self):
        with pytest.raises(ValueError):
            fit_linear_gaussian_cpd("x", [], {"x": np.array([])})

    def test_fit_network_round_trip(self):
        truth = LinearGaussianBayesianNetwork(edges=[("x", "y")])
        truth.add_cpd(LinearGaussianCPD("x", 1.0, 1.0))
        truth.add_cpd(LinearGaussianCPD("y", 0.5, 0.25, parents=["x"],
                                        weights=[1.5]))
        rng = np.random.default_rng(5)
        draws = truth.sample(rng, n=8000)
        data = {v: np.array([d[v] for d in draws]) for v in ("x", "y")}
        learned = fit_linear_gaussian_network(DAG(edges=[("x", "y")]), data)
        # Posterior inference on the learned model matches the generator.
        truth_engine = GaussianInference(truth)
        learned_engine = GaussianInference(learned)
        expected = truth_engine.posterior(["y"], {"x": 2.0}).mean_of("y")
        actual = learned_engine.posterior(["y"], {"x": 2.0}).mean_of("y")
        assert actual == pytest.approx(expected, abs=0.05)
