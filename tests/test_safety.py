"""Tests for the kinematic safety model (d_stop, d_safe, delta)."""

import numpy as np
import pytest

from repro.core import (SafetyConfig, SafetyPotential, longitudinal_envelope,
                        safety_potential, stopping_displacement,
                        world_safety_potential)
from repro.sim import SENSOR_RANGE, NPCVehicle, World


class TestStoppingDisplacement:
    def test_straight_line_matches_analytic(self):
        # Straight emergency stop: d = v^2 / (2 a).
        config = SafetyConfig(a_max=6.0)
        for v in (10.0, 20.0, 33.5):
            stop = stopping_displacement(v, theta=0.0, phi=0.0,
                                         config=config)
            assert stop.longitudinal == pytest.approx(v ** 2 / 12.0,
                                                      rel=0.01)
            assert stop.lateral == pytest.approx(0.0, abs=1e-9)

    def test_stop_time_matches_analytic(self):
        config = SafetyConfig(a_max=6.0)
        stop = stopping_displacement(30.0, 0.0, 0.0, config)
        assert stop.stop_time == pytest.approx(5.0, abs=0.1)

    def test_zero_speed_zero_displacement(self):
        stop = stopping_displacement(0.0, 0.0, 0.0)
        assert stop.longitudinal == 0.0
        assert stop.stop_time == 0.0

    def test_steering_produces_lateral_drift(self):
        straight = stopping_displacement(30.0, 0.0, 0.0)
        steered = stopping_displacement(30.0, 0.0, 0.1)
        assert abs(steered.lateral) > 1.0
        assert abs(straight.lateral) < 1e-6
        # Curved paths cover less longitudinal ground.
        assert steered.longitudinal < straight.longitudinal + 1e-6

    def test_lateral_sign_follows_steering(self):
        left = stopping_displacement(20.0, 0.0, 0.1)
        right = stopping_displacement(20.0, 0.0, -0.1)
        assert left.lateral > 0.0 > right.lateral

    def test_heading_rotates_displacement(self):
        config = SafetyConfig(a_max=6.0)
        angled = stopping_displacement(20.0, theta=0.1, phi=0.0,
                                       config=config)
        straight = stopping_displacement(20.0, theta=0.0, phi=0.0,
                                         config=config)
        assert angled.lateral > 0.0
        assert angled.longitudinal < straight.longitudinal

    def test_monotone_in_speed(self):
        distances = [stopping_displacement(v, 0.0, 0.0).longitudinal
                     for v in (5.0, 15.0, 25.0, 35.0)]
        assert distances == sorted(distances)

    def test_quantization_is_fine_grained(self):
        a = stopping_displacement(20.0, 0.0, 0.0).longitudinal
        b = stopping_displacement(20.049, 0.0, 0.0).longitudinal
        assert abs(a - b) < 0.5


class TestLongitudinalEnvelope:
    def test_clear_road_is_sensor_range(self):
        assert longitudinal_envelope(SENSOR_RANGE, None) == SENSOR_RANGE
        assert longitudinal_envelope(300.0, 20.0) == SENSOR_RANGE

    def test_stopped_lead_is_raw_gap(self):
        assert longitudinal_envelope(40.0, 0.0) == pytest.approx(40.0)

    def test_moving_lead_adds_its_stopping_distance(self):
        config = SafetyConfig(a_max=6.0)
        envelope = longitudinal_envelope(40.0, 24.0, config)
        assert envelope == pytest.approx(40.0 + 24.0 ** 2 / 12.0)

    def test_reversing_lead_contributes_nothing(self):
        assert longitudinal_envelope(40.0, -5.0) == pytest.approx(40.0)


class TestSafetyPotential:
    def test_same_speed_following_delta_is_gap(self):
        # The paper's Example 1 calibration: delta ~= gap when following
        # a same-speed lead (both charge the same stopping distance).
        potential = safety_potential(v=30.0, theta=0.0, phi=0.0, gap=20.0,
                                     lead_speed=30.0, lateral_free=4.0)
        assert potential.longitudinal == pytest.approx(20.0, abs=0.5)

    def test_stopped_lead_requires_full_stopping_distance(self):
        potential = safety_potential(v=30.0, theta=0.0, phi=0.0, gap=60.0,
                                     lead_speed=0.0, lateral_free=4.0)
        assert potential.longitudinal == pytest.approx(60.0 - 75.0, abs=0.5)
        assert not potential.safe

    def test_faster_lead_increases_delta(self):
        slow = safety_potential(30.0, 0.0, 0.0, 30.0, 25.0, 4.0)
        fast = safety_potential(30.0, 0.0, 0.0, 30.0, 35.0, 4.0)
        assert fast.longitudinal > slow.longitudinal

    def test_lateral_potential(self):
        potential = safety_potential(v=30.0, theta=0.0, phi=0.0, gap=250.0,
                                     lead_speed=None, lateral_free=2.0)
        assert potential.lateral == pytest.approx(2.0, abs=0.01)

    def test_steering_erodes_lateral_potential(self):
        straight = safety_potential(30.0, 0.0, 0.0, 250.0, None, 2.0)
        steered = safety_potential(30.0, 0.0, 0.15, 250.0, None, 2.0)
        assert steered.lateral < 0.0 < straight.lateral

    def test_minimum_and_safe(self):
        potential = SafetyPotential(longitudinal=5.0, lateral=-1.0)
        assert potential.minimum == -1.0
        assert not potential.safe
        assert SafetyPotential(1.0, 1.0).safe


class TestWorldSafetyPotential:
    def test_empty_world_is_safe(self):
        world = World.on_highway(ego_speed=30.0)
        potential = world_safety_potential(world)
        assert potential.safe
        assert potential.longitudinal > 100.0

    def test_stopped_lead_close_is_unsafe(self):
        world = World.on_highway(ego_speed=30.0)
        world.add_npc(NPCVehicle(npc_id=1, x=40.0,
                                 y=world.road.lane_center(1), v=0.0))
        potential = world_safety_potential(world)
        assert potential.longitudinal < 0.0

    def test_same_speed_lead_is_safe(self):
        world = World.on_highway(ego_speed=30.0)
        world.add_npc(NPCVehicle(npc_id=1, x=40.0,
                                 y=world.road.lane_center(1), v=30.0))
        potential = world_safety_potential(world)
        assert potential.longitudinal == pytest.approx(40.0 - 4.8, abs=0.5)
