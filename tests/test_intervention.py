"""Tests for the do-operator: interventions vs conditioning."""

import numpy as np
import pytest

from repro.bayesnet import (DiscreteBayesianNetwork, GaussianInference,
                            LinearGaussianBayesianNetwork, LinearGaussianCPD,
                            TabularCPD, VariableElimination,
                            intervene_discrete, intervene_gaussian)


def confounded_network():
    """u -> x, u -> y, x -> y: conditioning and do() on x must differ."""
    net = DiscreteBayesianNetwork(edges=[("u", "x"), ("u", "y"), ("x", "y")])
    net.add_cpd(TabularCPD("u", 2, [[0.5], [0.5]]))
    net.add_cpd(TabularCPD("x", 2, [[0.9, 0.1], [0.1, 0.9]],
                           parents=["u"], parent_cards=[2]))
    # y depends strongly on u, weakly on x.
    # columns (u, x) = (0,0),(0,1),(1,0),(1,1)
    net.add_cpd(TabularCPD("y", 2,
                           [[0.9, 0.8, 0.2, 0.1],
                            [0.1, 0.2, 0.8, 0.9]],
                           parents=["u", "x"], parent_cards=[2, 2]))
    return net


class TestDiscreteIntervention:
    def test_do_cuts_incoming_edges(self):
        mutilated = intervene_discrete(confounded_network(), {"x": 1})
        assert mutilated.dag.parents("x") == []
        assert mutilated.cpds["x"].probability(1) == 1.0

    def test_original_untouched(self):
        net = confounded_network()
        intervene_discrete(net, {"x": 1})
        assert net.dag.parents("x") == ["u"]

    def test_do_differs_from_conditioning(self):
        net = confounded_network()
        observe = VariableElimination(net).marginal(
            "y", evidence={"x": 1}).values[1]
        mutilated = intervene_discrete(net, {"x": 1})
        do = VariableElimination(mutilated).marginal(
            "y", evidence={"x": 1}).values[1]
        # Conditioning: x=1 implies u likely 1 implies y likely 1.
        # do(): u remains 50/50.
        # P(y=1|do(x=1)) = 0.5*0.2 + 0.5*0.9 = 0.55
        assert do == pytest.approx(0.55)
        assert observe > do + 0.1

    def test_do_matches_truncated_product_formula(self):
        net = confounded_network()
        mutilated = intervene_discrete(net, {"x": 1})
        engine = VariableElimination(mutilated)
        p_do = engine.marginal("y", evidence={"x": 1}).values[1]
        # Truncated factorization: sum_u P(u) P(y | u, x=1)
        manual = sum(
            net.cpds["u"].probability(u)
            * net.cpds["y"].probability(1, {"u": u, "x": 1})
            for u in range(2))
        assert p_do == pytest.approx(manual)

    def test_unknown_target(self):
        with pytest.raises(KeyError):
            intervene_discrete(confounded_network(), {"zz": 0})

    def test_state_out_of_range(self):
        with pytest.raises(IndexError):
            intervene_discrete(confounded_network(), {"x": 9})

    def test_upstream_belief_unchanged_by_do(self):
        net = confounded_network()
        mutilated = intervene_discrete(net, {"x": 1})
        posterior_u = VariableElimination(mutilated).marginal(
            "u", evidence={"x": 1})
        assert np.allclose(posterior_u.values, [0.5, 0.5])


class TestGaussianIntervention:
    def make_net(self):
        # u -> x -> y and u -> y (confounder), all linear-Gaussian.
        net = LinearGaussianBayesianNetwork(
            edges=[("u", "x"), ("u", "y"), ("x", "y")])
        net.add_cpd(LinearGaussianCPD("u", 0.0, 1.0))
        net.add_cpd(LinearGaussianCPD("x", 0.0, 0.5, parents=["u"],
                                      weights=[1.0]))
        net.add_cpd(LinearGaussianCPD("y", 0.0, 0.25, parents=["u", "x"],
                                      weights=[1.0, 1.0]))
        return net

    def test_do_value_pins_node(self):
        mutilated = intervene_gaussian(self.make_net(), {"x": 2.0})
        engine = GaussianInference(mutilated)
        posterior = engine.posterior(["x"])
        assert posterior.mean_of("x") == pytest.approx(2.0)
        assert posterior.variance_of("x") == pytest.approx(0.0)

    def test_do_differs_from_conditioning(self):
        net = self.make_net()
        observe = GaussianInference(net).posterior(
            ["y"], evidence={"x": 2.0}).mean_of("y")
        mutilated = intervene_gaussian(net, {"x": 2.0})
        do = GaussianInference(mutilated).posterior(["y"]).mean_of("y")
        # do: E[y | do(x=2)] = E[u] + 2 = 2.
        assert do == pytest.approx(2.0)
        # conditioning also updates u upward: E[u|x=2] = 2*2/3
        assert observe == pytest.approx(2.0 + 4.0 / 3.0, rel=1e-6)

    def test_downstream_variance_excludes_upstream(self):
        mutilated = intervene_gaussian(self.make_net(), {"x": 0.0})
        engine = GaussianInference(mutilated)
        # var(y | do(x)) = var(u) + 0.25 = 1.25
        assert engine.posterior(["y"]).variance_of("y") == pytest.approx(1.25)

    def test_unknown_target(self):
        with pytest.raises(KeyError):
            intervene_gaussian(self.make_net(), {"zz": 1.0})
