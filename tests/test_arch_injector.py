"""Tests for ADS kernels, the architectural injector, and the GPU model."""

import numpy as np
import pytest

from repro.arch import (ArchitecturalInjector, GPUExecutor, Outcome,
                        default_kernels, dot_kernel, idm_kernel,
                        kalman_kernel, matmul_kernel, outcome_rates,
                        pid_kernel, run_campaign)


class TestKernels:
    @pytest.mark.parametrize("kernel_factory", [
        lambda: dot_kernel(8), lambda: matmul_kernel(3), kalman_kernel,
        pid_kernel, idm_kernel])
    def test_kernel_matches_reference(self, kernel_factory):
        kernel = kernel_factory()
        injector = ArchitecturalInjector(kernel)
        rng = np.random.default_rng(0)
        for _ in range(5):
            inputs = kernel.make_inputs(rng)
            outputs, dynamic_count = injector.golden_run(inputs)
            assert np.allclose(outputs, kernel.reference(inputs),
                               rtol=1e-9)
            assert dynamic_count > 0

    def test_matmul_sizes(self):
        kernel = matmul_kernel(2)
        injector = ArchitecturalInjector(kernel)
        inputs = np.arange(8.0)
        outputs, _ = injector.golden_run(inputs)
        a = inputs[:4].reshape(2, 2)
        b = inputs[4:].reshape(2, 2)
        assert np.allclose(outputs.reshape(2, 2), a @ b)

    def test_default_kernels_unique_names(self):
        names = [k.name for k in default_kernels()]
        assert len(names) == len(set(names))


class TestInjector:
    def test_injection_deterministic_for_seed(self):
        kernel = dot_kernel(8)
        injector = ArchitecturalInjector(kernel)
        a = injector.inject(np.random.default_rng(7))
        b = injector.inject(np.random.default_rng(7))
        assert a.outcome == b.outcome
        assert a.register == b.register and a.bit == b.bit

    def test_outcomes_cover_masked_and_sdc(self):
        kernel = dot_kernel(8)
        injector = ArchitecturalInjector(kernel)
        rng = np.random.default_rng(0)
        outcomes = {injector.inject(rng).outcome for _ in range(300)}
        assert Outcome.MASKED in outcomes
        assert Outcome.SDC in outcomes

    def test_crashes_occur_in_loopy_kernels(self):
        kernel = matmul_kernel(4)
        injector = ArchitecturalInjector(kernel)
        rng = np.random.default_rng(1)
        outcomes = [injector.inject(rng).outcome for _ in range(300)]
        assert Outcome.CRASH in outcomes

    def test_sdc_has_relative_error(self):
        kernel = dot_kernel(8)
        injector = ArchitecturalInjector(kernel)
        rng = np.random.default_rng(2)
        for _ in range(300):
            result = injector.inject(rng)
            if result.outcome is Outcome.SDC:
                assert result.relative_error > 0.0
                assert result.silent
                break
        else:
            pytest.fail("no SDC found in 300 injections")

    def test_masked_has_zero_error(self):
        kernel = dot_kernel(8)
        injector = ArchitecturalInjector(kernel)
        rng = np.random.default_rng(3)
        for _ in range(100):
            result = injector.inject(rng)
            if result.outcome is Outcome.MASKED:
                assert result.relative_error == 0.0
                break
        else:
            pytest.fail("no masked injection found")

    def test_explicit_inputs_respected(self):
        kernel = kalman_kernel()
        injector = ArchitecturalInjector(kernel)
        inputs = np.array([50.0, 1.0, 52.0, 0.5])
        result = injector.inject(np.random.default_rng(4), inputs=inputs)
        assert np.allclose(result.golden_output,
                           kernel.reference(inputs))


class TestCampaign:
    def test_campaign_rates_sum_to_one(self):
        results = run_campaign(default_kernels(), n_injections=200, seed=0)
        rates = outcome_rates(results)
        assert sum(rates.values()) == pytest.approx(1.0)
        assert rates["masked"] > 0.3   # most flips are benign

    def test_campaign_deterministic(self):
        a = run_campaign([dot_kernel(8)], n_injections=50, seed=5)
        b = run_campaign([dot_kernel(8)], n_injections=50, seed=5)
        assert [r.outcome for r in a] == [r.outcome for r in b]

    def test_empty_campaign_rejected(self):
        with pytest.raises(ValueError):
            outcome_rates([])


class TestGPU:
    def test_batch_runs_all_lanes(self):
        executor = GPUExecutor(kalman_kernel(), n_lanes=4)
        outputs = executor.run_batch(np.random.default_rng(0))
        assert len(outputs) == 4

    def test_warp_injection_targets_one_lane(self):
        executor = GPUExecutor(dot_kernel(8), n_lanes=4)
        warp = executor.inject_warp(np.random.default_rng(1))
        injected = [r for r in warp.lane_results if r is not None]
        assert len(injected) == 1
        assert warp.lane_results[warp.faulty_lane] is not None

    def test_warp_outcome_matches_faulty_lane(self):
        executor = GPUExecutor(dot_kernel(8), n_lanes=4)
        warp = executor.inject_warp(np.random.default_rng(2))
        assert warp.warp_outcome is (
            warp.lane_results[warp.faulty_lane].outcome)

    def test_worst_outcome_ordering(self):
        assert GPUExecutor.worst_outcome(
            [Outcome.MASKED, Outcome.SDC]) is Outcome.SDC
        assert GPUExecutor.worst_outcome(
            [Outcome.SDC, Outcome.CRASH, Outcome.HANG]) is Outcome.CRASH

    def test_bad_lane_count(self):
        with pytest.raises(ValueError):
            GPUExecutor(dot_kernel(4), n_lanes=0)
