"""Tests for the three fault models."""

import numpy as np
import pytest

from repro.arch import Outcome
from repro.core import (DEFAULT_VARIABLES, ArchitecturalFaultModel,
                        minmax_fault_grid, random_fault)
from repro.core.fault_models import KERNEL_VARIABLE_MAP
from repro.ads import variable_by_name


class TestMinMaxGrid:
    def test_grid_size(self):
        grid = minmax_fault_grid([10, 20], ["throttle", "brake"])
        assert len(grid) == 2 * 2 * 2

    def test_grid_values_are_extremes(self):
        grid = minmax_fault_grid([10], ["throttle"])
        values = sorted(f.value for f in grid)
        assert values == [0.0, 1.0]

    def test_default_variables_exclude_gps_x(self):
        assert "gps_x" not in DEFAULT_VARIABLES
        grid = minmax_fault_grid([5])
        assert all(f.variable != "gps_x" for f in grid)

    def test_duration_propagates(self):
        grid = minmax_fault_grid([5], ["brake"], duration_ticks=7)
        assert all(f.duration_ticks == 7 for f in grid)


class TestRandomFault:
    def test_value_within_range(self):
        rng = np.random.default_rng(0)
        for _ in range(100):
            fault = random_fault(rng, [10, 20, 30])
            variable = variable_by_name(fault.variable)
            assert variable.min_value <= fault.value <= variable.max_value
            assert fault.start_tick in (10, 20, 30)

    def test_deterministic_for_seed(self):
        a = random_fault(np.random.default_rng(5), [10, 20])
        b = random_fault(np.random.default_rng(5), [10, 20])
        assert a == b

    def test_covers_variables(self):
        rng = np.random.default_rng(1)
        seen = {random_fault(rng, [10]).variable for _ in range(300)}
        assert len(seen) > 10


class TestArchitecturalFaultModel:
    def test_kernel_mapping_complete(self):
        model = ArchitecturalFaultModel()
        for kernel in model.kernels:
            assert kernel.name in KERNEL_VARIABLE_MAP

    def test_unmapped_kernel_rejected(self):
        from repro.arch import dot_kernel
        with pytest.raises(ValueError):
            ArchitecturalFaultModel(kernels=[dot_kernel(7)])

    def test_sample_outcomes(self):
        model = ArchitecturalFaultModel()
        rng = np.random.default_rng(0)
        outcomes = [model.sample(rng, [10, 20]) for _ in range(200)]
        kinds = {o.outcome for o in outcomes}
        assert Outcome.MASKED in kinds
        assert Outcome.SDC in kinds

    def test_only_sdc_produces_faults(self):
        model = ArchitecturalFaultModel()
        rng = np.random.default_rng(1)
        for _ in range(200):
            outcome = model.sample(rng, [10])
            if outcome.outcome is Outcome.SDC:
                assert outcome.fault is not None
            else:
                assert outcome.fault is None

    def test_fault_value_in_variable_range(self):
        model = ArchitecturalFaultModel()
        rng = np.random.default_rng(2)
        for _ in range(300):
            outcome = model.sample(rng, [10])
            if outcome.fault is not None:
                variable = variable_by_name(outcome.fault.variable)
                assert (variable.min_value <= outcome.fault.value
                        <= variable.max_value)

    def test_small_errors_stay_near_nominal(self):
        variable = variable_by_name("throttle")
        value = ArchitecturalFaultModel._map_error_to_value(
            variable, relative_error=1e-6, rng=np.random.default_rng(0))
        middle = (variable.min_value + variable.max_value) / 2
        assert value == pytest.approx(middle, abs=1e-3)

    def test_large_errors_saturate_at_extremes(self):
        variable = variable_by_name("throttle")
        rng = np.random.default_rng(0)
        values = {ArchitecturalFaultModel._map_error_to_value(
            variable, relative_error=1e9, rng=rng) for _ in range(50)}
        assert values <= {0.0, 1.0}
        assert len(values) == 2
